//! Integration tests pinning the prediction-accuracy claims (paper §5):
//! errors stay in the few-percent band across workloads and mappings, and
//! degrade as the paper describes when load changes under a prediction.

use cbes::prelude::*;

struct Bed {
    cluster: cbes::cluster::Cluster,
    model: LatencyModel,
}

fn bed() -> Bed {
    let cluster = cbes::cluster::presets::orange_grove();
    let model = Calibrator::default().calibrate(&cluster).model;
    Bed { cluster, model }
}

fn profile_of(bed: &Bed, w: &Workload, nodes: &[NodeId], seed: u64) -> AppProfile {
    let run = simulate(
        &bed.cluster,
        &w.program,
        nodes,
        &LoadState::idle(bed.cluster.len()),
        &SimConfig::default().with_seed(seed),
    )
    .expect("profiling run");
    cbes::trace::extract_profile(&w.name, &run.trace, &bed.cluster, nodes, &bed.model)
}

fn measure(bed: &Bed, w: &Workload, m: &[NodeId], load: &LoadState, seed: u64) -> f64 {
    simulate(
        &bed.cluster,
        &w.program,
        m,
        load,
        &SimConfig::default().with_seed(seed),
    )
    .expect("measured run")
    .wall_time
}

/// Prediction on the profiling mapping itself reproduces the measured time
/// almost exactly (only run noise differs).
#[test]
fn self_prediction_is_tight() {
    let bed = bed();
    let alphas = bed.cluster.nodes_by_arch(Architecture::Alpha);
    for (w, seed) in [
        (npb::lu(8, NpbClass::S), 11),
        (npb::mg(8, NpbClass::S), 12),
        (cbes::workloads::asci::aztec(8), 13),
    ] {
        let profile = profile_of(&bed, &w, &alphas, seed);
        let snap = SystemSnapshot::no_load(&bed.cluster, &bed.model);
        let predicted = Evaluator::new(&profile, &snap).predict_time(&Mapping::new(alphas.clone()));
        let measured = measure(
            &bed,
            &w,
            &alphas,
            &LoadState::idle(bed.cluster.len()),
            seed + 100,
        );
        let err = (predicted - measured).abs() / measured;
        assert!(err < 0.04, "{}: self-prediction error {err}", w.name);
    }
}

/// Cross-mapping prediction (the hard case) stays within ~10 % even when
/// moving from the Alpha group to slower, differently-wired nodes.
#[test]
fn cross_mapping_prediction_is_sane() {
    let bed = bed();
    let alphas = bed.cluster.nodes_by_arch(Architecture::Alpha);
    let sparcs = bed.cluster.nodes_by_arch(Architecture::Sparc);
    for (w, seed) in [(npb::lu(8, NpbClass::S), 21), (npb::sp(8, NpbClass::S), 22)] {
        let profile = profile_of(&bed, &w, &alphas, seed);
        let snap = SystemSnapshot::no_load(&bed.cluster, &bed.model);
        let predicted = Evaluator::new(&profile, &snap).predict_time(&Mapping::new(sparcs.clone()));
        let measured = measure(
            &bed,
            &w,
            &sparcs,
            &LoadState::idle(bed.cluster.len()),
            seed + 100,
        );
        let err = (predicted - measured).abs() / measured;
        assert!(err < 0.12, "{}: cross-mapping error {err}", w.name);
        // The speed change itself must be reflected: SPARCs are ~35% slower.
        let self_pred = Evaluator::new(&profile, &snap).predict_time(&Mapping::new(alphas.clone()));
        assert!(
            predicted > self_pred * 1.2,
            "{}: speed shift missing",
            w.name
        );
    }
}

/// The paper's phase-3 cliff: a stale (idle-load) prediction degrades past
/// the ~4 % band once a mapped node loses ≥10 % CPU, while a light 2 % loss
/// stays tolerable.
#[test]
fn stale_predictions_break_at_ten_percent_load() {
    let bed = bed();
    let alphas = bed.cluster.nodes_by_arch(Architecture::Alpha);
    let w = npb::lu(8, NpbClass::S);
    let profile = profile_of(&bed, &w, &alphas, 31);
    let snap = SystemSnapshot::no_load(&bed.cluster, &bed.model);
    let stale = Evaluator::new(&profile, &snap).predict_time(&Mapping::new(alphas.clone()));

    let err_at = |loss: f64| {
        let mut load = LoadState::idle(bed.cluster.len());
        load.set_cpu_avail(alphas[0], 1.0 - loss);
        let m = measure(&bed, &w, &alphas, &load, 400);
        (stale - m).abs() / m * 100.0
    };
    assert!(err_at(0.02) < 4.0, "2% loss should be tolerable");
    assert!(err_at(0.10) > 3.0, "10% loss must push the error up");
    assert!(err_at(0.30) > err_at(0.10), "error grows with load");
}

/// A load-aware prediction (fresh snapshot) stays accurate where the stale
/// one fails — the reason CBES monitors continuously.
#[test]
fn load_aware_prediction_recovers_accuracy() {
    let bed = bed();
    let alphas = bed.cluster.nodes_by_arch(Architecture::Alpha);
    let w = npb::lu(8, NpbClass::S);
    let profile = profile_of(&bed, &w, &alphas, 41);

    let mut load = LoadState::idle(bed.cluster.len());
    load.set_cpu_avail(alphas[0], 0.7);
    let mut snap = SystemSnapshot::no_load(&bed.cluster, &bed.model);
    snap.set_load(load.clone());
    let aware = Evaluator::new(&profile, &snap).predict_time(&Mapping::new(alphas.clone()));
    let measured = measure(&bed, &w, &alphas, &load, 500);
    let err = (aware - measured).abs() / measured * 100.0;
    assert!(err < 6.0, "load-aware prediction error {err}%");
}

/// Profiles survive a JSON round-trip and still predict identically (the
/// paper's database tables are durable).
#[test]
fn profile_persistence_roundtrip() {
    let bed = bed();
    let alphas = bed.cluster.nodes_by_arch(Architecture::Alpha);
    let w = npb::cg(8, NpbClass::S);
    let profile = profile_of(&bed, &w, &alphas, 51);
    let restored = AppProfile::from_json(&profile.to_json()).expect("roundtrip");
    // Float text formatting may shift the last ULP; a second round-trip must
    // be a fixpoint, and the structural content identical.
    assert_eq!(restored.to_json(), restored.clone().to_json());
    assert_eq!(restored.name, profile.name);
    assert_eq!(restored.num_procs(), profile.num_procs());
    for (a, b) in restored.procs.iter().zip(&profile.procs) {
        assert_eq!(a.sends, b.sends);
        assert_eq!(a.recvs, b.recvs);
        assert!((a.lambda - b.lambda).abs() < 1e-12);
        assert!((a.x - b.x).abs() < 1e-12);
    }
    let snap = SystemSnapshot::no_load(&bed.cluster, &bed.model);
    let m = Mapping::new(alphas);
    let p1 = Evaluator::new(&profile, &snap).predict_time(&m);
    let p2 = Evaluator::new(&restored, &snap).predict_time(&m);
    assert!((p1 - p2).abs() < 1e-9 * p1.max(1.0));
}
