//! Integration tests of the scheduling results the paper's evaluation rests
//! on: CS exploits both speed and topology; NCS only speed; RS neither.

use cbes::prelude::*;

struct Bed {
    cluster: cbes::cluster::Cluster,
    model: LatencyModel,
}

fn orange_grove() -> Bed {
    let cluster = cbes::cluster::presets::orange_grove();
    let model = Calibrator::default().calibrate(&cluster).model;
    Bed { cluster, model }
}

fn profile_on(bed: &Bed, w: &Workload, nodes: &[NodeId], seed: u64) -> AppProfile {
    let run = simulate(
        &bed.cluster,
        &w.program,
        nodes,
        &LoadState::idle(bed.cluster.len()),
        &SimConfig::default().with_seed(seed),
    )
    .expect("profiling run");
    cbes::trace::extract_profile(&w.name, &run.trace, &bed.cluster, nodes, &bed.model)
}

fn measure(bed: &Bed, w: &Workload, m: &Mapping, seed: u64) -> f64 {
    simulate(
        &bed.cluster,
        &w.program,
        m.as_slice(),
        &LoadState::idle(bed.cluster.len()),
        &SimConfig::default().with_seed(seed),
    )
    .expect("measured run")
    .wall_time
}

/// On the heterogeneous pool, CS beats the average of random mappings.
#[test]
fn cs_beats_random_on_heterogeneous_pool() {
    let bed = orange_grove();
    let w = npb::lu(8, NpbClass::S);
    let alphas = bed.cluster.nodes_by_arch(Architecture::Alpha);
    let profile = profile_on(&bed, &w, &alphas, 1);
    let snap = SystemSnapshot::no_load(&bed.cluster, &bed.model);
    let pool: Vec<NodeId> = bed.cluster.node_ids().collect();
    let req = ScheduleRequest::new(&profile, &snap, &pool);

    let cs = SaScheduler::new(SaConfig::fast(7)).schedule(&req).unwrap();
    let cs_time = measure(&bed, &w, &cs.mapping, 50);

    let mut rs = RandomScheduler::new(3);
    let rs_times: Vec<f64> = (0..8)
        .map(|i| {
            let r = rs.schedule(&req).unwrap();
            measure(&bed, &w, &r.mapping, 60 + i)
        })
        .collect();
    let rs_mean = rs_times.iter().sum::<f64>() / rs_times.len() as f64;
    assert!(
        cs_time < rs_mean * 0.95,
        "CS {cs_time} must beat random average {rs_mean} by >5%"
    );
}

/// Within a compute-homogeneous pool, only the communication term separates
/// CS from NCS — and CS must win on a communication-sensitive code.
#[test]
fn cs_beats_ncs_via_communication_alone() {
    let bed = orange_grove();
    let w = cbes::workloads::asci::aztec(8);
    let sparcs = bed.cluster.nodes_by_arch(Architecture::Sparc);
    let profile = profile_on(&bed, &w, &sparcs, 2);
    let snap = SystemSnapshot::no_load(&bed.cluster, &bed.model);
    let req = ScheduleRequest::new(&profile, &snap, &sparcs);

    let cs = SaScheduler::new(SaConfig::thorough(1))
        .schedule(&req)
        .unwrap();
    // NCS cannot separate the compute-identical mappings: average several.
    let ncs_times: Vec<f64> = (0..5)
        .map(|i| {
            let r = NcsScheduler::new(SaConfig::fast(100 + i))
                .schedule(&req)
                .unwrap();
            measure(&bed, &w, &r.mapping, 200 + i)
        })
        .collect();
    let ncs_mean = ncs_times.iter().sum::<f64>() / ncs_times.len() as f64;
    let cs_time = measure(&bed, &w, &cs.mapping, 300);
    assert!(
        cs_time < ncs_mean,
        "CS {cs_time} must beat NCS average {ncs_mean} on comm alone"
    );
}

/// The three LU speed zones are ordered: Alpha < Alpha+Intel < with-SPARC
/// (figure 6's structure).
#[test]
fn lu_zones_are_ordered_by_bottleneck_speed() {
    let bed = orange_grove();
    let w = npb::lu(8, NpbClass::S);
    let a = bed.cluster.nodes_by_arch(Architecture::Alpha);
    let i = bed.cluster.nodes_by_arch(Architecture::IntelPII);
    let s = bed.cluster.nodes_by_arch(Architecture::Sparc);

    let high = Mapping::new(a.clone());
    let mut mix_ai = a[..4].to_vec();
    mix_ai.extend_from_slice(&i[..4]);
    let medium = Mapping::new(mix_ai);
    let mut mix_ais = a[..2].to_vec();
    mix_ais.extend_from_slice(&i[..2]);
    mix_ais.extend_from_slice(&s[..4]);
    let low = Mapping::new(mix_ais);

    let th = measure(&bed, &w, &high, 10);
    let tm = measure(&bed, &w, &medium, 11);
    let tl = measure(&bed, &w, &low, 12);
    assert!(th < tm && tm < tl, "zones must order: {th} {tm} {tl}");
    // Zone ratios roughly track bottleneck speeds (damped by comm share).
    assert!(tm / th > 1.05 && tm / th < 1.25, "medium/high {}", tm / th);
    assert!(tl / th > 1.2 && tl / th < 1.7, "low/high {}", tl / th);
}

/// Genetic and greedy schedulers return valid, competitive mappings.
#[test]
fn alternative_schedulers_are_competitive() {
    let bed = orange_grove();
    let w = npb::cg(8, NpbClass::S);
    let alphas = bed.cluster.nodes_by_arch(Architecture::Alpha);
    let profile = profile_on(&bed, &w, &alphas, 3);
    let snap = SystemSnapshot::no_load(&bed.cluster, &bed.model);
    let pool: Vec<NodeId> = bed.cluster.node_ids().collect();
    let req = ScheduleRequest::new(&profile, &snap, &pool);

    let cs = SaScheduler::new(SaConfig::fast(5)).schedule(&req).unwrap();
    let ga = GeneticScheduler::new(cbes::sched::GaConfig::fast(5))
        .schedule(&req)
        .unwrap();
    let greedy = GreedyScheduler::new().schedule(&req).unwrap();
    let mut rs = RandomScheduler::new(5);
    let random = rs.schedule(&req).unwrap();

    for r in [&cs, &ga, &greedy, &random] {
        assert!(r.mapping.is_injective());
        assert_eq!(r.mapping.len(), 8);
    }
    // Search-based schedulers should not lose to a single random draw.
    assert!(cs.predicted_time <= random.predicted_time);
    assert!(ga.predicted_time <= random.predicted_time);
    // Greedy should be the cheapest search by evaluations.
    assert!(greedy.evaluations < cs.evaluations);
}
