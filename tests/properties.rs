//! Property-based tests of the core invariants, spanning crates.

use cbes::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn demo_profile(n: usize, compute: f64, msgs: u64, bytes: u64) -> AppProfile {
    let procs = (0..n)
        .map(|rank| ProcessProfile {
            rank,
            x: compute,
            o: 0.01,
            b: 0.1,
            sends: vec![cbes::trace::MessageGroup {
                peer: (rank + 1) % n,
                bytes,
                count: msgs,
            }],
            recvs: vec![cbes::trace::MessageGroup {
                peer: (rank + n - 1) % n,
                bytes,
                count: msgs,
            }],
            profile_speed: 1.0,
            lambda: 1.0,
        })
        .collect();
    AppProfile {
        name: "prop".into(),
        procs,
        arch_ratios: BTreeMap::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lowering any node's CPU availability never lowers a predicted time.
    #[test]
    fn prediction_is_monotone_in_load(
        victim in 0u32..8,
        avail in 0.05f64..1.0,
        compute in 0.1f64..20.0,
        msgs in 1u64..200,
    ) {
        let cluster = cbes::cluster::presets::two_switch_demo();
        let profile = demo_profile(4, compute, msgs, 2048);
        let mapping = Mapping::new(vec![NodeId(0), NodeId(1), NodeId(4), NodeId(5)]);

        let idle_snap = SystemSnapshot::no_load(&cluster, &cluster);
        let idle_time = Evaluator::new(&profile, &idle_snap).predict_time(&mapping);

        let mut load = LoadState::idle(cluster.len());
        load.set_cpu_avail(NodeId(victim), avail);
        let mut loaded_snap = SystemSnapshot::no_load(&cluster, &cluster);
        loaded_snap.set_load(load);
        let loaded_time = Evaluator::new(&profile, &loaded_snap).predict_time(&mapping);

        prop_assert!(loaded_time >= idle_time - 1e-12,
            "load must not speed things up: {idle_time} -> {loaded_time}");
    }

    /// Swapping a mapped node for a strictly slower one never lowers the
    /// predicted time.
    #[test]
    fn prediction_is_monotone_in_speed(
        rank in 0usize..4,
        compute in 0.1f64..20.0,
    ) {
        let cluster = cbes::cluster::presets::two_switch_demo();
        let profile = demo_profile(4, compute, 10, 2048);
        // All-Alpha mapping (speed 1.0) vs one Intel substitution (0.85)
        // on the same switch structure is impossible in the demo preset,
        // so compare all-on-switch-0 vs one rank moved to switch 1: use
        // zero communication to isolate the speed effect.
        let mut no_comm = profile.clone();
        for p in &mut no_comm.procs {
            p.sends.clear();
            p.recvs.clear();
            p.lambda = 0.0;
        }
        let fast = Mapping::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let mut slowed = fast.clone();
        slowed.set(rank, NodeId(4)); // Intel, speed 0.85
        let snap = SystemSnapshot::no_load(&cluster, &cluster);
        let ev = Evaluator::new(&no_comm, &snap);
        prop_assert!(ev.predict_time(&slowed) >= ev.predict_time(&fast));
    }

    /// The evaluator is a pure function: identical inputs, identical output.
    #[test]
    fn prediction_is_deterministic(seed in 0u64..1000) {
        let cluster = cbes::cluster::presets::two_switch_demo();
        let profile = demo_profile(4, 1.0, 20, 1024 + seed % 4096);
        let mapping = Mapping::new(vec![NodeId(0), NodeId(4), NodeId(2), NodeId(6)]);
        let snap = SystemSnapshot::no_load(&cluster, &cluster);
        let ev = Evaluator::new(&profile, &snap);
        prop_assert_eq!(ev.predict_time(&mapping), ev.predict_time(&mapping));
    }

    /// The calibrated model stays within a tight band of topological truth
    /// for arbitrary pairs and sizes.
    #[test]
    fn calibrated_model_tracks_truth(
        a in 0u32..28,
        b in 0u32..28,
        bytes in 1u64..500_000,
    ) {
        prop_assume!(a != b);
        let cluster = cbes::cluster::presets::orange_grove();
        let model = Calibrator::default().calibrate(&cluster).model;
        let truth = cluster.no_load_latency(NodeId(a), NodeId(b), bytes);
        let est = model.no_load(NodeId(a), NodeId(b), bytes);
        let rel = (est - truth).abs() / truth;
        prop_assert!(rel < 0.06, "pair {a}->{b} @{bytes}B: rel err {rel}");
    }

    /// Latency is symmetric and monotone in message size, in both the
    /// topology and the calibrated model.
    #[test]
    fn latency_symmetry_and_monotonicity(
        a in 0u32..28,
        b in 0u32..28,
        s1 in 1u64..100_000,
        extra in 1u64..100_000,
    ) {
        prop_assume!(a != b);
        let cluster = cbes::cluster::presets::orange_grove();
        let l_ab = cluster.no_load_latency(NodeId(a), NodeId(b), s1);
        let l_ba = cluster.no_load_latency(NodeId(b), NodeId(a), s1);
        prop_assert!((l_ab - l_ba).abs() < 1e-12);
        let l_big = cluster.no_load_latency(NodeId(a), NodeId(b), s1 + extra);
        prop_assert!(l_big > l_ab);
    }
}

proptest! {
    // Simulation-backed properties are more expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Simulator accounting conservation: X + O + B equals each rank's
    /// completion time (up to fp error), for random ring programs.
    #[test]
    fn sim_accounting_is_conservative(
        iters in 1u32..8,
        bytes in 64u64..32_768,
        comp in 0.0005f64..0.01,
        seed in 0u64..500,
    ) {
        let cluster = cbes::cluster::presets::two_switch_demo();
        let spec = cbes::workloads::SyntheticSpec {
            procs: 4,
            iters,
            comp_per_iter: comp,
            msgs_per_iter: 2,
            msg_bytes: bytes,
            overlap: 0.0,
            pattern: cbes::workloads::SynthPattern::Ring,
        };
        let w = spec.build();
        let mapping: Vec<NodeId> = (0..4).map(NodeId).collect();
        let r = simulate(
            &cluster,
            &w.program,
            &mapping,
            &LoadState::idle(cluster.len()),
            &SimConfig::default().with_seed(seed),
        ).unwrap();
        for s in &r.stats {
            let total = s.x + s.o + s.b;
            prop_assert!((total - s.end).abs() < 1e-9 * (1.0 + s.end),
                "X+O+B = {total} but end = {}", s.end);
        }
        prop_assert!((r.wall_time - r.stats.iter().map(|s| s.end).fold(0.0, f64::max)).abs() < 1e-12);
    }

    /// The same seed gives bitwise identical results; different seeds give
    /// different (noisy) results.
    #[test]
    fn sim_is_reproducible(seed in 0u64..1000) {
        let cluster = cbes::cluster::presets::two_switch_demo();
        let w = npb::cg(4, NpbClass::S);
        let mapping: Vec<NodeId> = (0..4).map(NodeId).collect();
        let cfg = SimConfig::default().with_seed(seed);
        let load = LoadState::idle(cluster.len());
        let r1 = simulate(&cluster, &w.program, &mapping, &load, &cfg).unwrap();
        let r2 = simulate(&cluster, &w.program, &mapping, &load, &cfg).unwrap();
        prop_assert_eq!(r1.wall_time, r2.wall_time);
        let r3 = simulate(&cluster, &w.program, &mapping, &load,
                          &SimConfig::default().with_seed(seed + 1)).unwrap();
        prop_assert!(r1.wall_time != r3.wall_time);
    }

    /// Schedulers always return injective mappings inside the pool, for
    /// arbitrary pool subsets.
    #[test]
    fn schedulers_respect_the_pool(
        pool_seed in 0u64..100,
        pool_size in 8usize..20,
        sched_seed in 0u64..100,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let cluster = cbes::cluster::presets::orange_grove();
        let mut rng = rand::rngs::StdRng::seed_from_u64(pool_seed);
        let mut all: Vec<NodeId> = cluster.node_ids().collect();
        all.shuffle(&mut rng);
        let pool = &all[..pool_size];

        let profile = demo_profile(8, 1.0, 20, 2048);
        let snap = SystemSnapshot::no_load(&cluster, &cluster);
        let req = ScheduleRequest::new(&profile, &snap, pool);
        let fast = SaConfig { iters: 200, ..SaConfig::fast(sched_seed) };
        for result in [
            SaScheduler::new(fast).schedule(&req).unwrap(),
            NcsScheduler::new(fast).schedule(&req).unwrap(),
            RandomScheduler::new(sched_seed).schedule(&req).unwrap(),
            GreedyScheduler::new().schedule(&req).unwrap(),
        ] {
            prop_assert!(result.mapping.is_injective());
            for (_, node) in result.mapping.iter() {
                prop_assert!(pool.contains(&node), "node {node} outside pool");
            }
        }
    }
}
