//! Integration test of the run-time orchestration loop through the facade:
//! phase execution, monitoring, remap decisions and migration accounting.

use cbes::cluster::load::{LoadPattern, LoadTimeline};
use cbes::core::remap::{MigrationCost, RemapAnalysis};
use cbes::prelude::*;

fn cheap_runtime() -> RuntimeConfig {
    RuntimeConfig {
        sa: SaConfig::fast(5),
        remap: RemapAnalysis {
            cost: MigrationCost {
                image_bytes: 1 << 20,
                transfer_bw: 12.5e6,
                restart_cost: 0.05,
                coordination_cost: 0.05,
            },
            threshold: 0.2,
        },
        ..RuntimeConfig::default()
    }
}

#[test]
fn orchestrator_completes_multi_phase_apps() {
    let cluster = cbes::cluster::presets::orange_grove();
    let calib = Calibrator::default().calibrate(&cluster);
    let phase = npb::cg(8, NpbClass::S).program;
    let app = PhasedApp::new("cg3", vec![phase.clone(), phase.clone(), phase]);
    let pool = cluster.nodes_by_arch(Architecture::Alpha);
    let orch = Orchestrator::new(&cluster, &calib.model, cheap_runtime());
    let report = orch
        .run(&app, &pool, &LoadTimeline::idle(cluster.len()))
        .expect("orchestrated run");
    assert_eq!(report.phases.len(), 3);
    // Total equals the sum of phase walls plus migrations.
    let sum: f64 = report.phases.iter().map(|p| p.wall + p.migration).sum();
    assert!((report.total - sum).abs() < 1e-9);
}

#[test]
fn remap_only_happens_when_it_pays() {
    let cluster = cbes::cluster::presets::orange_grove();
    let calib = Calibrator::default().calibrate(&cluster);
    let phase = npb::lu(8, NpbClass::S).program;
    let app = PhasedApp::new("lu2", vec![phase.clone(), phase]);
    let alphas = cluster.nodes_by_arch(Architecture::Alpha);
    let mut pool = alphas.clone();
    pool.extend(cluster.nodes_by_arch(Architecture::IntelPII));

    // Load arrives on every Alpha after phase 0.
    let mut timeline = LoadTimeline::idle(cluster.len());
    for &node in &alphas {
        timeline = timeline.with(
            node,
            LoadPattern::Step {
                at: 1.0,
                before: 1.0,
                after: 0.3,
            },
        );
    }

    // With cheap migration: remap.
    let orch = Orchestrator::new(&cluster, &calib.model, cheap_runtime());
    let cheap = orch.run(&app, &pool, &timeline).expect("cheap run");
    assert_eq!(cheap.remaps, 1, "{cheap:?}");

    // With prohibitively expensive migration: stay put.
    let mut expensive = cheap_runtime();
    expensive.remap.cost.restart_cost = 1e6;
    let orch = Orchestrator::new(&cluster, &calib.model, expensive);
    let stay = orch.run(&app, &pool, &timeline).expect("expensive run");
    assert_eq!(stay.remaps, 0, "{stay:?}");
    // And staying under load is slower end to end.
    assert!(stay.total > cheap.total);
}

#[test]
fn phased_app_from_segment_markers_runs() {
    let cluster = cbes::cluster::presets::two_switch_demo();
    let calib = Calibrator::default().calibrate(&cluster);
    let mut program = Program::new(4);
    program.push_all(Op::Compute { seconds: 0.05 });
    program.push_all(Op::Segment(1));
    program.push_all(Op::Compute { seconds: 0.05 });
    let app = PhasedApp::from_segmented("seg", &program);
    assert_eq!(app.num_phases(), 2);
    let pool: Vec<NodeId> = cluster.node_ids().collect();
    let orch = Orchestrator::new(&cluster, &calib.model, cheap_runtime());
    let report = orch
        .run(&app, &pool, &LoadTimeline::idle(cluster.len()))
        .expect("segmented run");
    assert_eq!(report.phases.len(), 2);
}
