//! End-to-end integration: the full CBES pipeline — calibrate → profile →
//! snapshot → schedule → validate — on both modelled clusters.

use cbes::prelude::*;

/// The complete life-cycle on Orange Grove with a real workload generator.
#[test]
fn full_pipeline_on_orange_grove() {
    let cluster = cbes::cluster::presets::orange_grove();
    let calib = Calibrator::default().calibrate(&cluster);
    assert_eq!(calib.model.num_nodes(), 28);

    let app = npb::lu(8, NpbClass::S);
    let alphas = cluster.nodes_by_arch(Architecture::Alpha);
    let run = simulate(
        &cluster,
        &app.program,
        &alphas,
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(1),
    )
    .expect("profiling run");
    let profile =
        cbes::trace::extract_profile(&app.name, &run.trace, &cluster, &alphas, &calib.model);
    assert_eq!(profile.num_procs(), 8);
    assert!(profile.compute_fraction() > 0.3);

    let snapshot = SystemSnapshot::no_load(&cluster, &calib.model);
    let pool: Vec<NodeId> = cluster.node_ids().collect();
    let request = ScheduleRequest::new(&profile, &snapshot, &pool);
    let result = SaScheduler::new(SaConfig::fast(5))
        .schedule(&request)
        .expect("scheduling");
    assert!(result.mapping.is_injective());
    assert!(result.predicted_time > 0.0);

    // The prediction must be close to a fresh measured run.
    let measured = simulate(
        &cluster,
        &app.program,
        result.mapping.as_slice(),
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(99),
    )
    .expect("measured run")
    .wall_time;
    let err = (result.predicted_time - measured).abs() / measured;
    assert!(err < 0.10, "end-to-end prediction error {err}");
}

/// On Centurion (128 nodes) the pipeline scales and CS prefers the faster
/// Alpha nodes for a compute-bound job.
#[test]
fn pipeline_scales_to_centurion() {
    let cluster = cbes::cluster::presets::centurion();
    let calib = Calibrator::default().calibrate(&cluster);

    let app = npb::ep(8, NpbClass::S);
    let prof: Vec<NodeId> = cluster.node_ids().take(8).collect();
    let run = simulate(
        &cluster,
        &app.program,
        &prof,
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(2),
    )
    .expect("profiling run");
    let profile =
        cbes::trace::extract_profile(&app.name, &run.trace, &cluster, &prof, &calib.model);
    let snapshot = SystemSnapshot::no_load(&cluster, &calib.model);
    let pool: Vec<NodeId> = cluster.node_ids().collect();
    let result = SaScheduler::new(SaConfig::fast(3))
        .schedule(&ScheduleRequest::new(&profile, &snapshot, &pool))
        .expect("scheduling");
    for (_, node) in result.mapping.iter() {
        assert_eq!(
            cluster.node(node).arch,
            Architecture::Alpha,
            "EP must land on the fast architecture, got {}",
            result.mapping
        );
    }
}

/// The service façade ties registry, monitor and evaluation together.
#[test]
fn service_request_flow() {
    let cluster = std::sync::Arc::new(cbes::cluster::presets::two_switch_demo());
    let calib = Calibrator::default().calibrate(&cluster);
    let service = CbesService::new(
        cluster.clone(),
        std::sync::Arc::new(calib.model.clone()),
        cbes::core::monitor::ForecastKind::Adaptive(4),
    );

    let app = npb::cg(4, NpbClass::S);
    let prof: Vec<NodeId> = (0..4).map(NodeId).collect();
    let run = simulate(
        &cluster,
        &app.program,
        &prof,
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(4),
    )
    .expect("profiling run");
    service.registry().insert(cbes::trace::extract_profile(
        &app.name,
        &run.trace,
        &cluster,
        &prof,
        &calib.model,
    ));

    let near = Mapping::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    let far = Mapping::new(vec![NodeId(0), NodeId(4), NodeId(1), NodeId(5)]);
    let (best, _) = service
        .best_of(&app.name, &[far.clone(), near.clone()])
        .expect("comparison");
    assert_eq!(best, 1, "same-switch mapping must win for CG");

    // Loading a node steers the service away from it.
    let mut measured = LoadState::idle(cluster.len());
    measured.set_cpu_avail(NodeId(0), 0.3);
    service.observe_load(&measured).expect("full-arity sweep");
    let alt = Mapping::new(vec![NodeId(1), NodeId(2), NodeId(3), NodeId(0)]);
    let preds = service.compare(&app.name, &[near, alt]).expect("compare");
    assert!(
        preds[0].time > preds[1].time * 0.9,
        "load must be reflected in predictions"
    );
}

/// Remapping cost/benefit integrates with the evaluator.
#[test]
fn remap_analysis_flow() {
    let cluster = cbes::cluster::presets::two_switch_demo();
    let calib = Calibrator::default().calibrate(&cluster);
    let app = npb::lu(4, NpbClass::S);
    let prof: Vec<NodeId> = (0..4).map(NodeId).collect();
    let run = simulate(
        &cluster,
        &app.program,
        &prof,
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(5),
    )
    .expect("profiling run");
    let profile =
        cbes::trace::extract_profile(&app.name, &run.trace, &cluster, &prof, &calib.model);

    // Saturate the current mapping's nodes.
    let mut load = LoadState::idle(cluster.len());
    load.set_cpu_avail(NodeId(0), 0.2);
    load.set_cpu_avail(NodeId(1), 0.2);
    let mut snap = SystemSnapshot::no_load(&cluster, &calib.model);
    snap.set_load(load);
    let ev = Evaluator::new(&profile, &snap);

    let current = Mapping::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    let candidate = Mapping::new(vec![NodeId(4), NodeId(5), NodeId(2), NodeId(3)]);
    let analysis = RemapAnalysis {
        cost: cbes::core::remap::MigrationCost {
            image_bytes: 1 << 20,
            transfer_bw: 12.5e6,
            restart_cost: 0.05,
            coordination_cost: 0.05,
        },
        threshold: 0.05,
    };
    let early = analysis.decide(&ev, &current, &candidate, 0.05);
    assert!(early.should_remap(), "{early:?}");
    let late = analysis.decide(&ev, &current, &candidate, 0.999);
    assert!(!late.should_remap(), "{late:?}");
}
