//! Run-time remapping: the cost/benefit decision CBES was designed around
//! (paper §2 — "if system conditions, with regard to a running application,
//! change, there should be the capability of generating a new mapping ...
//! taking into account the task remapping costs").
//!
//! A long LU run is scheduled on an idle cluster; midway through, a heavy
//! background job lands on two of its nodes. The monitor picks the change
//! up, a fresh mapping is computed, and [`RemapAnalysis`] decides whether
//! migrating pays off at several progress points.
//!
//! ```text
//! cargo run --release --example remap_on_load
//! ```

use cbes::core::monitor::ForecastKind;
use cbes::prelude::*;

fn main() {
    let cluster = cbes::cluster::presets::orange_grove();
    let calib = Calibrator::default().calibrate(&cluster);
    let alphas = cluster.nodes_by_arch(Architecture::Alpha);
    let intels = cluster.nodes_by_arch(Architecture::IntelPII);
    let mut pool = alphas.clone();
    pool.extend_from_slice(&intels);

    // Profile and schedule on the idle system.
    let app = npb::lu(8, NpbClass::B);
    let run = simulate(
        &cluster,
        &app.program,
        &alphas,
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(5),
    )
    .expect("profiling run");
    let profile =
        cbes::trace::extract_profile(&app.name, &run.trace, &cluster, &alphas, &calib.model);
    let idle_snap = SystemSnapshot::no_load(&cluster, &calib.model);
    let initial = SaScheduler::new(SaConfig::thorough(2))
        .schedule(&ScheduleRequest::new(&profile, &idle_snap, &pool))
        .expect("initial schedule");
    println!(
        "initial mapping {} — predicted {:.2}s on the idle system",
        initial.mapping, initial.predicted_time
    );

    // Mid-run, a background job eats 60% of two mapped nodes' CPU.
    let mut monitor = Monitor::new(cluster.len(), ForecastKind::Adaptive(8));
    let mut measured = LoadState::idle(cluster.len());
    measured.set_cpu_avail(initial.mapping.node(0), 0.4);
    measured.set_cpu_avail(initial.mapping.node(1), 0.4);
    for _ in 0..10 {
        monitor.observe(&measured); // several monitoring sweeps see it
    }
    let mut loaded_snap = SystemSnapshot::no_load(&cluster, &calib.model);
    loaded_snap.set_load(monitor.forecast());

    // Re-schedule under the new conditions.
    let fresh = SaScheduler::new(SaConfig::thorough(3))
        .schedule(&ScheduleRequest::new(&profile, &loaded_snap, &pool))
        .expect("re-schedule");
    let ev = Evaluator::new(&profile, &loaded_snap);
    println!(
        "after the load hit: staying predicts {:.2}s, candidate {} predicts {:.2}s",
        ev.predict_time(&initial.mapping),
        fresh.mapping,
        fresh.predicted_time
    );

    // Decide at several progress points.
    let analysis = RemapAnalysis::default();
    println!(
        "\nremap decision vs progress (migration cost model: {:?}):",
        analysis.cost
    );
    for progress in [0.1, 0.5, 0.9, 0.99] {
        let decision = analysis.decide(&ev, &initial.mapping, &fresh.mapping, progress);
        let verdict = match &decision {
            RemapDecision::Remap { saving } => format!("REMAP  (saves {saving:.2}s net)"),
            RemapDecision::Stay { deficit } => format!("stay   (would lose {deficit:.2}s)"),
        };
        println!("  {:>3.0}% done -> {verdict}", progress * 100.0);
    }
    println!(
        "\nmoved processes if remapped: {:?}",
        initial.mapping.moved_ranks(&fresh.mapping)
    );
}
