//! The full run-time loop: a phase-structured application executes under an
//! evolving background load while the orchestrator monitors, re-schedules
//! and (when it pays) migrates — the paper's §2 vision end to end.
//!
//! ```text
//! cargo run --release --example orchestrated_run
//! ```

use cbes::cluster::load::{LoadPattern, LoadTimeline};
use cbes::prelude::*;

fn main() {
    let cluster = cbes::cluster::presets::orange_grove();
    let calib = Calibrator::default().calibrate(&cluster);

    // A four-phase LU-like application (remap points between phases).
    let phase = npb::lu(8, NpbClass::S).program;
    let app = PhasedApp::new(
        "lu.4phase",
        vec![phase.clone(), phase.clone(), phase.clone(), phase],
    );

    // Candidate pool: Alphas + Intels.
    let alphas = cluster.nodes_by_arch(Architecture::Alpha);
    let mut pool = alphas.clone();
    pool.extend(cluster.nodes_by_arch(Architecture::IntelPII));

    // Background load: a co-scheduled job lands on every Alpha shortly
    // after the run starts and stays for the rest of it.
    let mut timeline = LoadTimeline::idle(cluster.len());
    for &node in &alphas {
        timeline = timeline.with(
            node,
            LoadPattern::Step {
                at: 2.5,
                before: 1.0,
                after: 0.3,
            },
        );
    }

    // This application checkpoints small state, so migration is cheap
    // (with the default 64 MiB images + 2 s restarts the orchestrator
    // correctly decides the move does NOT pay — try it).
    let config = RuntimeConfig {
        remap: cbes::core::remap::RemapAnalysis {
            cost: cbes::core::remap::MigrationCost {
                image_bytes: 8 << 20,
                transfer_bw: 12.5e6,
                restart_cost: 0.1,
                coordination_cost: 0.2,
            },
            threshold: 0.5,
        },
        ..RuntimeConfig::default()
    };
    let orch = Orchestrator::new(&cluster, &calib.model, config);
    let report = orch.run(&app, &pool, &timeline).expect("orchestrated run");

    println!("phase | remap | migration | predicted | wall  | mapping");
    for p in &report.phases {
        println!(
            "  {:>3} | {:>5} | {:>8.2}s | {:>8.2}s | {:>5.2}s | {}",
            p.phase,
            if p.remapped { "yes" } else { "-" },
            p.migration,
            p.predicted,
            p.wall,
            p.mapping
        );
    }
    println!(
        "\ntotal {:.2}s with {} remap(s), {:.2}s spent migrating",
        report.total,
        report.remaps,
        report.migration_total()
    );

    // Counterfactual: what would sticking to the initial mapping have cost?
    let stay = {
        let initial = &report.phases[0].mapping;
        let mut t = 0.0f64;
        for (k, program) in app.phases.iter().enumerate() {
            let load = timeline.sample(t);
            let wall = simulate(
                &cluster,
                program,
                initial.as_slice(),
                &load,
                &SimConfig::default().with_seed(900 + k as u64),
            )
            .expect("counterfactual run")
            .wall_time;
            t += wall;
        }
        t
    };
    println!(
        "without remapping the same run takes {:.2}s — the remap saved {:.1}%",
        stay,
        (stay - report.total) / stay * 100.0
    );
}
