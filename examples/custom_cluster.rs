//! Define your own federated cluster as a [`ClusterSpec`], calibrate it,
//! and schedule a workload on it — the path a downstream user takes for a
//! cluster that is not one of the paper presets.
//!
//! ```text
//! cargo run --release --example custom_cluster
//! ```

use cbes::cluster::spec::{ClusterSpec, LinkSpec, NodeGroupSpec, SwitchSpec};
use cbes::prelude::*;

fn main() {
    // A small two-site federation: a fast site with 6 modern nodes and a
    // slow site with 6 older nodes, joined by a thin WAN-ish link.
    let spec = ClusterSpec {
        name: "two-site".into(),
        switches: vec![
            SwitchSpec {
                ports: 24,
                hop_latency: 300e-6,
                label: "site-A core".into(),
            },
            SwitchSpec {
                ports: 24,
                hop_latency: 450e-6,
                label: "site-B core".into(),
            },
        ],
        links: vec![LinkSpec {
            a: 0,
            b: 1,
            bandwidth: 6e6,
            latency: 900e-6,
        }],
        groups: vec![
            NodeGroupSpec {
                count: 6,
                arch: Architecture::Other(1),
                clock_mhz: 2000,
                cpus: 2,
                speed: 1.2,
                switch: 0,
                nic_bandwidth: 25e6,
                nic_latency: 1.2e-3,
            },
            NodeGroupSpec {
                count: 6,
                arch: Architecture::Other(2),
                clock_mhz: 800,
                cpus: 1,
                speed: 0.6,
                switch: 1,
                nic_bandwidth: 12.5e6,
                nic_latency: 1.8e-3,
            },
        ],
    };
    // The JSON form is what `cbes <command> my-cluster.json` consumes.
    println!("spec JSON is {} bytes; building...", spec.to_json().len());
    let cluster = spec.build().expect("valid spec");
    println!(
        "built `{}`: {} nodes, latency spread {:.0}%",
        cluster.name(),
        cluster.len(),
        cluster.latency_spread(1024) * 100.0
    );

    // Calibrate, profile an Aztec-style solver, schedule.
    let calib = Calibrator::default().calibrate(&cluster);
    let app = cbes::workloads::asci::aztec(6);
    let fast_site: Vec<NodeId> = (0..6).map(NodeId).collect();
    let run = simulate(
        &cluster,
        &app.program,
        &fast_site,
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(2),
    )
    .expect("profiling run");
    let profile =
        cbes::trace::extract_profile(&app.name, &run.trace, &cluster, &fast_site, &calib.model);
    let snapshot = SystemSnapshot::no_load(&cluster, &calib.model);
    let pool: Vec<NodeId> = cluster.node_ids().collect();
    let result = SaScheduler::new(SaConfig::thorough(9))
        .schedule(&ScheduleRequest::new(&profile, &snapshot, &pool))
        .expect("schedule");
    println!(
        "CS keeps the halo solver on one site: {} (predicted {:.3}s)",
        result.mapping, result.predicted_time
    );
    let sites: Vec<u32> = result
        .mapping
        .iter()
        .map(|(_, n)| cluster.node(n).switch.0)
        .collect();
    println!(
        "switches used: {:?} — {}",
        sites,
        if sites.iter().all(|&s| s == sites[0]) {
            "single-site placement, thin link avoided"
        } else {
            "placement straddles the federation"
        }
    );
}
