//! Quickstart: the full CBES life-cycle on the Orange Grove model in ~60
//! lines — calibrate, profile, schedule, validate.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cbes::prelude::*;

fn main() {
    // ── 1. Off-line phase: model the cluster and calibrate its latency
    //       model (the one-time O(N²) campaign, run as O(N) clique rounds).
    let cluster = cbes::cluster::presets::orange_grove();
    let calib = Calibrator::default().calibrate(&cluster);
    println!(
        "calibrated `{}`: {} nodes, {} measurements in {} clique rounds \
         ({:.1}x speedup over serial)",
        cluster.name(),
        cluster.len(),
        calib.measurements,
        calib.rounds,
        calib.clique_speedup()
    );

    // ── 2. Profile the application: trace one run on a profiling mapping
    //       and reduce the trace to X/O/B + message groups + λ.
    let app = npb::lu(8, NpbClass::A);
    let alphas = cluster.nodes_by_arch(Architecture::Alpha);
    let run = simulate(
        &cluster,
        &app.program,
        &alphas,
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(7),
    )
    .expect("profiling run");
    let profile =
        cbes::trace::extract_profile(&app.name, &run.trace, &cluster, &alphas, &calib.model);
    println!(
        "profiled `{}`: {} processes, {:.0}% compute / {:.0}% communication, wall {:.2}s",
        profile.name,
        profile.num_procs(),
        profile.compute_fraction() * 100.0,
        (1.0 - profile.compute_fraction()) * 100.0,
        run.wall_time
    );

    // ── 3. Schedule: ask the CS (simulated annealing) scheduler for a good
    //       8-node mapping out of a 16-node candidate pool.
    let mut pool = alphas[..4].to_vec();
    pool.extend(cluster.nodes_by_arch(Architecture::IntelPII));
    let snapshot = SystemSnapshot::no_load(&cluster, &calib.model);
    let request = ScheduleRequest::new(&profile, &snapshot, &pool);
    let result = SaScheduler::new(SaConfig::thorough(42))
        .schedule(&request)
        .expect("scheduling");
    println!(
        "CS selected {} — predicted {:.3}s after {} evaluations in {:?}",
        result.mapping, result.predicted_time, result.evaluations, result.elapsed
    );

    // ── 4. Validate: "run" the application on the selected mapping and on
    //       a random baseline, and compare.
    let mut rs = RandomScheduler::new(1);
    let random = rs.schedule(&request).expect("random mapping");
    let idle = LoadState::idle(cluster.len());
    let measure = |m: &Mapping, seed| {
        simulate(
            &cluster,
            &app.program,
            m.as_slice(),
            &idle,
            &SimConfig::default().with_seed(seed),
        )
        .expect("measured run")
        .wall_time
    };
    let cs_time = measure(&result.mapping, 100);
    let rs_time = measure(&random.mapping, 101);
    println!(
        "measured: CS mapping {:.3}s vs random mapping {:.3}s ({:+.1}% speedup)\n\
         prediction error on the CS mapping: {:.2}%",
        cs_time,
        rs_time,
        (rs_time - cs_time) / rs_time * 100.0,
        (result.predicted_time - cs_time).abs() / cs_time * 100.0
    );
}
