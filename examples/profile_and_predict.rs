//! Inside the mapping-evaluation operation: profile an application, show
//! the per-process quantities of paper §3.1 (X, O, B, message groups, λ),
//! then walk one prediction (eq. 4–8) term by term and check it against a
//! "measured" run — including per-segment profiles for phase-structured
//! programs.
//!
//! ```text
//! cargo run --release --example profile_and_predict
//! ```

use cbes::prelude::*;
use cbes::trace::extract_segment_profiles;

fn main() {
    let cluster = cbes::cluster::presets::two_switch_demo();
    let calib = Calibrator::default().calibrate(&cluster);

    // A two-phase program: a chatty ring phase, then a compute phase.
    let mut program = Program::new(4);
    program.push_all(Op::Segment(1));
    for _ in 0..40 {
        for r in 0..4usize {
            program.push(
                r,
                Op::SendRecv {
                    to: (r + 1) % 4,
                    bytes: 8 * 1024,
                    from: (r + 3) % 4,
                },
            );
        }
        program.push_all(Op::Compute { seconds: 0.002 });
    }
    program.push_all(Op::Segment(2));
    program.push_all(Op::Compute { seconds: 0.5 });

    let prof_nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
    let run = simulate(
        &cluster,
        &program,
        &prof_nodes,
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(9),
    )
    .expect("profiling run");
    let profile =
        cbes::trace::extract_profile("two-phase", &run.trace, &cluster, &prof_nodes, &calib.model);

    println!("per-process profile (paper §3.1):");
    println!("  rank |    X_i |    O_i |    B_i |    λ_i | send groups");
    for p in &profile.procs {
        println!(
            "  {:>4} | {:>6.3} | {:>6.3} | {:>6.3} | {:>6.2} | {:?}",
            p.rank,
            p.x,
            p.o,
            p.b,
            p.lambda,
            p.sends
                .iter()
                .map(|g| format!("{}x{}B->r{}", g.count, g.bytes, g.peer))
                .collect::<Vec<_>>()
        );
    }

    // Per-segment profiles (LAM/MPI phase markers).
    let segments =
        extract_segment_profiles("two-phase", &run.trace, &cluster, &prof_nodes, &calib.model);
    println!("\nper-segment character:");
    for (id, seg) in &segments {
        println!(
            "  segment {id}: {:.0}% compute / {:.0}% communication",
            seg.compute_fraction() * 100.0,
            (1.0 - seg.compute_fraction()) * 100.0
        );
    }

    // Predict a cross-switch mapping term by term.
    let mapping = Mapping::new(vec![NodeId(0), NodeId(4), NodeId(1), NodeId(5)]);
    let snapshot = SystemSnapshot::no_load(&cluster, &calib.model);
    let ev = Evaluator::new(&profile, &snapshot);
    let pred = ev.predict(&mapping);
    println!("\nprediction for {mapping} (eq. 4-8):");
    for (rank, cost) in pred.per_proc.iter().enumerate() {
        println!(
            "  rank {rank}: R = {:.3}s, C = λ·Θ = {:.3}s, total {:.3}s{}",
            cost.r,
            cost.c,
            cost.total(),
            if rank == pred.bottleneck {
                "   <- bottleneck i_M"
            } else {
                ""
            }
        );
    }
    let measured = simulate(
        &cluster,
        &program,
        mapping.as_slice(),
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(77),
    )
    .expect("measured run")
    .wall_time;
    println!(
        "\nS_M = {:.3}s predicted vs {:.3}s measured ({:+.2}% error)",
        pred.time,
        measured,
        (pred.time - measured) / measured * 100.0
    );
}
