//! Scheduling across a federated cluster: why the communication term
//! matters when a thin inter-cluster link is in play.
//!
//! A communication-bound integer sort (NPB IS) is scheduled over a pool
//! that straddles the Orange Grove federation link: 4 fast Intel nodes in
//! sub-cluster 1 plus the 8 slower SPARCs in sub-cluster 2. NCS chases the
//! faster CPUs and splits the job across the thin link; CS sees that the
//! all-to-all traffic makes link avoidance worth more than CPU speed and
//! keeps the job on one side. The example prints both schedules and the
//! measured difference.
//!
//! ```text
//! cargo run --release --example federation_scheduling
//! ```

use cbes::prelude::*;

fn main() {
    let cluster = cbes::cluster::presets::orange_grove();
    let calib = Calibrator::default().calibrate(&cluster);

    // A pool straddling the federation: 4 Intels (sub-cluster 1) + all 8
    // SPARCs (sub-cluster 2). Every 8-process mapping may, but does not
    // have to, cross the thin link for its hottest edges.
    let intels = cluster.nodes_by_arch(Architecture::IntelPII);
    let sparcs = cluster.nodes_by_arch(Architecture::Sparc);
    let mut pool = intels[..4].to_vec();
    pool.extend_from_slice(&sparcs);

    let app = cbes::workloads::npb::is(8, NpbClass::A);
    let prof_nodes = &sparcs[..8];
    let run = simulate(
        &cluster,
        &app.program,
        prof_nodes,
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(3),
    )
    .expect("profiling run");
    let profile =
        cbes::trace::extract_profile(&app.name, &run.trace, &cluster, prof_nodes, &calib.model);

    let snapshot = SystemSnapshot::no_load(&cluster, &calib.model);
    let request = ScheduleRequest::new(&profile, &snapshot, &pool);

    let cs = SaScheduler::new(SaConfig::thorough(11))
        .schedule(&request)
        .expect("CS");
    let ncs = NcsScheduler::new(SaConfig::thorough(11))
        .schedule(&request)
        .expect("NCS");

    // The federation link joins switches 0 and 3 in the preset.
    let fed_link = cluster
        .links()
        .iter()
        .position(|l| {
            (l.a == SwitchId(0) && l.b == SwitchId(3)) || (l.a == SwitchId(3) && l.b == SwitchId(0))
        })
        .expect("preset has a federation link") as u32;
    let describe = |name: &str, m: &Mapping| {
        let crossings: usize = (0..m.len())
            .flat_map(|a| (0..m.len()).map(move |b| (a, b)))
            .filter(|&(a, b)| a < b)
            .filter(|&(a, b)| {
                cluster
                    .path(m.node(a), m.node(b))
                    .link_indices
                    .contains(&fed_link)
            })
            .count();
        println!("{name}: {m}\n    process pairs routed over the thin link: {crossings}/28");
    };
    describe("CS ", &cs.mapping);
    describe("NCS", &ncs.mapping);

    let idle = LoadState::idle(cluster.len());
    let measure = |m: &Mapping, seed| {
        simulate(
            &cluster,
            &app.program,
            m.as_slice(),
            &idle,
            &SimConfig::default().with_seed(seed),
        )
        .expect("measured run")
        .wall_time
    };
    let cs_t = measure(&cs.mapping, 500);
    let ncs_t = measure(&ncs.mapping, 501);
    println!(
        "\nmeasured: CS {:.3}s vs NCS {:.3}s — exploiting the topology saves {:.1}%",
        cs_t,
        ncs_t,
        (ncs_t - cs_t) / ncs_t * 100.0
    );
}
