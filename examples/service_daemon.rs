//! The serving layer end to end, in one process: start the daemon, feed
//! it a real LU profile, fire 100 concurrent `Compare` requests over
//! loopback sockets, and read the counters back.
//!
//! ```text
//! cargo run --release --example service_daemon
//! ```

use std::sync::Arc;

use cbes::prelude::*;
use cbes::server::{Client, Server, ServerConfig};

fn main() {
    // ── 1. Stand up the service: demo cluster, calibrated latency model,
    //       adaptive load forecasting — shared behind an Arc.
    let cluster = Arc::new(presets::two_switch_demo());
    let calib = Calibrator::default().calibrate(&cluster);
    let service = Arc::new(CbesService::new(
        cluster.clone(),
        Arc::new(calib.model.clone()),
        cbes::core::monitor::ForecastKind::Adaptive(4),
    ));
    let handle = Server::start(
        service,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    println!("daemon on {addr} over `{}`", cluster.name());

    // ── 2. Profile LU once and register it over the wire, exactly as an
    //       external profiling agent would.
    let app = npb::lu(4, NpbClass::S);
    let prof: Vec<NodeId> = (0..4).map(NodeId).collect();
    let run = simulate(
        &cluster,
        &app.program,
        &prof,
        &LoadState::idle(cluster.len()),
        &SimConfig::default().with_seed(11),
    )
    .expect("profiling run");
    let profile = extract_profile(&app.name, &run.trace, &cluster, &prof, &calib.model);
    let mut client = Client::connect(addr).expect("connect");
    client.register_profile(profile).expect("register");
    println!("registered `{}`", app.name);

    // ── 3. 100 concurrent Compare requests from 10 client threads, all
    //       against the same snapshot epoch.
    let candidates = [
        Mapping::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]),
        Mapping::new(vec![NodeId(0), NodeId(4), NodeId(1), NodeId(5)]),
        Mapping::new(vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)]),
    ];
    let name = &app.name;
    let best_counts: Vec<usize> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..10)
            .map(|_| {
                let candidates = &candidates;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut best = 0usize;
                    for _ in 0..10 {
                        let (_, index, _) = client.best_of(name, candidates).expect("best_of");
                        best = index;
                    }
                    best
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    assert!(
        best_counts.iter().all(|&b| b == best_counts[0]),
        "one epoch, one winner"
    );
    println!(
        "100 concurrent comparisons agree: candidate #{} ({}) is fastest",
        best_counts[0], candidates[best_counts[0]]
    );

    // ── 4. Counters, then a clean drain.
    let stats = client.stats().expect("stats");
    println!(
        "server counters: {} served, {} errors, {} connections, epoch {}",
        stats.served, stats.errors, stats.connections, stats.epoch
    );
    client.shutdown().expect("shutdown ack");
    let (served, errors) = handle.join();
    println!("drained: {served} requests served, {errors} errors");
}
