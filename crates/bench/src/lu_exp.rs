//! Shared machinery for the LU scheduling experiments (figure 6, tables
//! 1–2, figure 7) and the table 3/4 program suite.

use crate::harness::{parallel_map, Testbed};
use crate::zones::Zone;
use cbes_cluster::load::LoadState;
use cbes_cluster::NodeId;
use cbes_core::mapping::Mapping;
use cbes_sched::{
    NcsScheduler, RandomScheduler, SaConfig, SaScheduler, ScheduleRequest, Scheduler,
};
use cbes_trace::AppProfile;
use cbes_workloads::Workload;
use std::time::Duration;

/// Outcome of one scheduling run followed by one measured execution of the
/// selected mapping.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The selected mapping.
    pub mapping: Mapping,
    /// Full CBES prediction for the selection (for NCS: the normalised
    /// prediction — paper table 2 note).
    pub predicted: f64,
    /// Measured ("actual") execution time of the selection.
    pub measured: f64,
    /// Scheduler wall-clock time.
    pub elapsed: Duration,
}

/// Which scheduler to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// The CBES scheduler (full evaluation energy).
    Cs,
    /// The no-communication baseline.
    Ncs,
    /// Uniform random selection.
    Rs,
}

impl Driver {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Driver::Cs => "CS",
            Driver::Ncs => "NCS",
            Driver::Rs => "RS",
        }
    }
}

/// Run `runs` independent scheduling requests with `driver` over `pool`,
/// measuring each selected mapping once. Runs fan out across threads.
pub fn run_scheduler(
    tb: &Testbed,
    profile: &AppProfile,
    w: &Workload,
    pool: &[NodeId],
    driver: Driver,
    runs: usize,
    base_seed: u64,
) -> Vec<RunOutcome> {
    let idle = LoadState::idle(tb.cluster.len());
    parallel_map((0..runs as u64).collect(), |i| {
        let seed = base_seed.wrapping_add(i).wrapping_mul(2654435761);
        let snap = tb.snapshot();
        let req = ScheduleRequest::new(profile, &snap, pool);
        let result = match driver {
            Driver::Cs => SaScheduler::new(SaConfig::thorough(seed)).schedule(&req),
            Driver::Ncs => NcsScheduler::new(SaConfig::thorough(seed)).schedule(&req),
            Driver::Rs => RandomScheduler::new(seed).schedule(&req),
        }
        .expect("scheduling over validated pool cannot fail");
        let measured = tb.measure(w, &result.mapping, &idle, base_seed ^ (i << 16) ^ 0xF00D);
        RunOutcome {
            mapping: result.mapping,
            predicted: result.predicted_time,
            measured,
            elapsed: result.elapsed,
        }
    })
}

/// Measure every mapping in `mappings` once (parallel). Returns measured
/// times in order.
pub fn measure_all(tb: &Testbed, w: &Workload, mappings: &[Mapping], base_seed: u64) -> Vec<f64> {
    let idle = LoadState::idle(tb.cluster.len());
    parallel_map(mappings.to_vec(), |m| {
        // Hash the mapping into the seed so distinct mappings get distinct
        // (but reproducible) noise streams.
        let mut h = base_seed;
        for (_, n) in m.iter() {
            h = h.wrapping_mul(31).wrapping_add(n.0 as u64 + 1);
        }
        tb.measure(w, &m, &idle, h)
    })
}

/// Fraction of outcomes whose *predicted* time is within `tol` (relative)
/// of the best prediction seen — the paper's "hit" percentage (selections
/// of mappings with minimum execution time). Judged on predictions rather
/// than single measurements so run-to-run measurement noise does not
/// misclassify a correct selection.
pub fn hit_rate(outcomes: &[RunOutcome], best_predicted: f64, tol: f64) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    let hits = outcomes
        .iter()
        .filter(|o| o.predicted <= best_predicted * (1.0 + tol))
        .count();
    hits as f64 / outcomes.len() as f64 * 100.0
}

/// Mean scheduler wall time in seconds.
pub fn mean_sched_secs(outcomes: &[RunOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes
        .iter()
        .map(|o| o.elapsed.as_secs_f64())
        .sum::<f64>()
        / outcomes.len() as f64
}

/// The LU workload and its profile on a zone testbed, profiled once on the
/// high-speed (Alpha) group, as the paper profiles on a reference set.
pub struct LuSetup {
    /// The LU workload (8 processes, class A by default).
    pub workload: Workload,
    /// Its profile, taken on the 8 Alphas.
    pub profile: AppProfile,
}

/// Prepare the LU workload + profile used by figures 6–7 and tables 1–2.
pub fn prepare_lu(tb: &Testbed, zones: &[Zone]) -> LuSetup {
    let workload = cbes_workloads::npb::lu(8, cbes_workloads::npb::NpbClass::A);
    let alphas = &zones[0].pool;
    let profile = tb.profile(&workload, alphas, 0x1111);
    LuSetup { workload, profile }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zones::{lu_zones, sample_mappings};

    #[test]
    fn scheduler_runs_produce_measured_outcomes() {
        let tb = Testbed::orange_grove(5);
        let zones = lu_zones(&tb.cluster);
        // Tiny LU for test speed.
        let w = cbes_workloads::npb::lu(8, cbes_workloads::npb::NpbClass::S);
        let profile = tb.profile(&w, &zones[0].pool, 3);
        let out = run_scheduler(&tb, &profile, &w, &zones[0].pool, Driver::Rs, 4, 1);
        assert_eq!(out.len(), 4);
        for o in &out {
            assert!(o.predicted > 0.0 && o.measured > 0.0);
            assert!(o.mapping.is_injective());
        }
    }

    #[test]
    fn hit_rate_counts_near_best() {
        let mk = |m: f64| RunOutcome {
            mapping: Mapping::new(vec![]),
            predicted: m,
            measured: m,
            elapsed: Duration::ZERO,
        };
        let outs = vec![mk(1.0), mk(1.005), mk(1.2)];
        assert!((hit_rate(&outs, 1.0, 0.01) - 66.6667).abs() < 0.01);
        assert_eq!(hit_rate(&[], 1.0, 0.01), 0.0);
    }

    #[test]
    fn measure_all_is_deterministic_per_mapping() {
        let tb = Testbed::orange_grove(5);
        let zones = lu_zones(&tb.cluster);
        let w = cbes_workloads::npb::lu(8, cbes_workloads::npb::NpbClass::S);
        let ms = sample_mappings(&zones[0].pool, 8, 3, 77);
        let a = measure_all(&tb, &w, &ms, 9);
        let b = measure_all(&tb, &w, &ms, 9);
        assert_eq!(a, b);
    }
}
