//! Ablation: the simulated-annealing neighbourhood. Rank-swap moves
//! rearrange which process sits where (communication matching); node-replace
//! moves change the node set itself (speed matching). The mixed
//! neighbourhood should dominate either pure strategy.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin ablation_moves [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::lu_exp::prepare_lu;
use cbes_bench::zones::lu_zones;
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_sched::{SaConfig, SaScheduler, ScheduleRequest, Scheduler};

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(20, 60);
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    let setup = prepare_lu(&tb, &zones);
    let pool = &zones[1].pool; // medium group: both speed and topology matter

    println!(
        "Ablation — SA neighbourhood mix on the LU(2) case ({} runs per \
         configuration)",
        runs
    );

    let mut t = Table::new(&[
        "neighbourhood",
        "mean predicted (s)",
        "best predicted (s)",
        "stddev",
    ]);
    let mut rows_json = Vec::new();
    for (name, swap_prob) in [
        ("replace only (p_swap = 0)", 0.0),
        ("mixed (p_swap = 0.5)", 0.5),
        ("swap only (p_swap = 1)", 1.0),
    ] {
        let preds: Vec<f64> = (0..runs)
            .map(|i| {
                let mut cfg = SaConfig::fast(args.seed + i as u64 * 7919);
                cfg.swap_prob = swap_prob;
                let snap = tb.snapshot();
                let req = ScheduleRequest::new(&setup.profile, &snap, pool);
                SaScheduler::new(cfg)
                    .schedule(&req)
                    .expect("valid request")
                    .predicted_time
            })
            .collect();
        t.row(vec![
            name.to_string(),
            format!("{:.4}", stats::mean(&preds)),
            format!("{:.4}", stats::min(&preds)),
            format!("{:.4}", stats::stddev(&preds)),
        ]);
        rows_json.push(serde_json::json!({
            "neighbourhood": name, "swap_prob": swap_prob,
            "mean": stats::mean(&preds), "best": stats::min(&preds),
            "stddev": stats::stddev(&preds),
        }));
    }
    t.print("SA neighbourhood ablation (LU(2), medium speed group)");
    println!(
        "note: a pure-swap neighbourhood freezes the node *set* at the random \
         initial choice,\nso speed matching fails. Pure-replace is a complete \
         neighbourhood (any assignment is\nreachable through the spare pool) \
         and performs on par with the mix; swaps act as a\nshortcut that \
         reshuffles communication structure in one step."
    );

    save_json("ablation_moves", &serde_json::json!({ "rows": rows_json }));
}
