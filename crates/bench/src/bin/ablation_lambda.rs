//! Ablation: the λ correction factor (paper eq. 7–8).
//!
//! λ rescales the theoretical communication time by the ratio observed
//! during profiling, absorbing overlap and overhead effects. This ablation
//! predicts with the profiled λ vs. with λ forced to 1, across several
//! workloads and mappings — showing λ is what keeps errors in the few-%
//! band.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin ablation_lambda [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::zones::{lu_zones, sample_mappings};
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_cluster::load::LoadState;
use cbes_core::eval::Evaluator;
use cbes_workloads::npb::{cg, is, lu, sp, NpbClass};
use cbes_workloads::Workload;

fn main() {
    let args = ExpArgs::parse();
    let mappings_per_case = args.reps(6, 20);
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    // Profile on the homogeneous Alpha group (as the scheduling experiments
    // do); predict mappings drawn from the mixed medium-speed pool.
    let profiling_pool = &zones[0].pool;
    let pool = &zones[1].pool;
    let idle = LoadState::idle(tb.cluster.len());

    let cases: Vec<Workload> = vec![
        lu(8, NpbClass::A),
        sp(8, NpbClass::A),
        cg(8, NpbClass::A),
        is(8, NpbClass::A),
    ];

    println!(
        "Ablation — λ correction factor: prediction error with profiled λ \
         vs λ := 1 ({} mappings per workload)",
        mappings_per_case
    );

    let mut t = Table::new(&["workload", "mean λ", "err with λ %", "err with λ=1 %"]);
    let mut rows_json = Vec::new();
    for w in &cases {
        let profile = tb.profile(w, &profiling_pool[..8], args.seed + 3);
        let mut no_lambda = profile.clone();
        for p in &mut no_lambda.procs {
            p.lambda = 1.0;
        }
        let mean_lambda =
            profile.procs.iter().map(|p| p.lambda).sum::<f64>() / profile.procs.len() as f64;
        let mappings = sample_mappings(pool, 8, mappings_per_case, args.seed + 40);
        let snap = tb.snapshot();
        let ev = Evaluator::new(&profile, &snap);
        let ev1 = Evaluator::new(&no_lambda, &snap);
        let mut err_with = Vec::new();
        let mut err_without = Vec::new();
        for m in &mappings {
            let measured = tb.measure(w, m, &idle, args.seed + 77);
            err_with.push(stats::pct_error(ev.predict_time(m), measured).abs());
            err_without.push(stats::pct_error(ev1.predict_time(m), measured).abs());
        }
        t.row(vec![
            w.name.clone(),
            format!("{mean_lambda:.2}"),
            format!("{:.2}", stats::mean(&err_with)),
            format!("{:.2}", stats::mean(&err_without)),
        ]);
        rows_json.push(serde_json::json!({
            "workload": w.name, "mean_lambda": mean_lambda,
            "err_with_lambda_pct": stats::mean(&err_with),
            "err_without_lambda_pct": stats::mean(&err_without),
        }));
    }
    t.print("λ ablation: prediction error with and without the correction factor");
    println!(
        "expected: errors grow substantially with λ forced to 1 whenever the \
         profiled λ deviates from 1"
    );

    save_json("ablation_lambda", &serde_json::json!({ "rows": rows_json }));
}
