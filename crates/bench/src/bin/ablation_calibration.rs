//! Ablation: the calibrated latency model vs. topological ground truth.
//!
//! The paper's infrastructure trades a one-time noisy measurement campaign
//! for an `O(N)`-maintainable latency picture. This ablation quantifies what
//! the empirical model costs in prediction quality: the same profile and
//! mappings are predicted against (a) the calibrated model and (b) the
//! simulator's exact topological latencies, and both are compared to
//! measured runs. It also shows calibration noise sensitivity.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin ablation_calibration [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::zones::{lu_zones, sample_mappings};
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_cluster::load::LoadState;
use cbes_core::eval::Evaluator;
use cbes_core::snapshot::SystemSnapshot;
use cbes_netmodel::Calibrator;
use cbes_trace::extract_profile;
use cbes_workloads::npb::{lu, NpbClass};

fn main() {
    let args = ExpArgs::parse();
    let mappings_n = args.reps(8, 25);
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    let idle = LoadState::idle(tb.cluster.len());
    let w = lu(8, NpbClass::A);

    println!(
        "Ablation — calibrated model vs topological ground truth \
         ({} mappings, LU class A)",
        mappings_n
    );

    let mut t = Table::new(&[
        "latency source",
        "calib noise",
        "mean |err| %",
        "max |err| %",
    ]);
    let mut rows_json = Vec::new();
    let mappings = sample_mappings(&zones[1].pool, 8, mappings_n, args.seed + 4);

    // Measured times are the same for every variant.
    let measured: Vec<f64> = mappings
        .iter()
        .enumerate()
        .map(|(i, m)| tb.measure(&w, m, &idle, args.seed + 900 + i as u64))
        .collect();

    let eval_with = |label: &str,
                     noise_label: &str,
                     snap: &SystemSnapshot<'_>,
                     profile: &cbes_trace::AppProfile,
                     rows: &mut Vec<serde_json::Value>,
                     table: &mut Table| {
        let ev = Evaluator::new(profile, snap);
        let errs: Vec<f64> = mappings
            .iter()
            .zip(&measured)
            .map(|(m, &meas)| stats::pct_error(ev.predict_time(m), meas).abs())
            .collect();
        table.row(vec![
            label.to_string(),
            noise_label.to_string(),
            format!("{:.2}", stats::mean(&errs)),
            format!("{:.2}", stats::max(&errs)),
        ]);
        rows.push(serde_json::json!({
            "source": label, "noise": noise_label,
            "mean_err_pct": stats::mean(&errs), "max_err_pct": stats::max(&errs),
        }));
    };

    // (a) Ground truth: profile and predict against the topology itself.
    {
        let run = cbes_mpisim::simulate(
            &tb.cluster,
            &w.program,
            &zones[0].pool,
            &idle,
            &cbes_mpisim::SimConfig::default().with_seed(0x1111),
        )
        .expect("profiling run");
        let profile = extract_profile(
            &w.name,
            &run.trace,
            &tb.cluster,
            &zones[0].pool,
            &tb.cluster,
        );
        let snap = SystemSnapshot::no_load(&tb.cluster, &tb.cluster);
        eval_with(
            "topology (exact)",
            "-",
            &snap,
            &profile,
            &mut rows_json,
            &mut t,
        );
    }

    // (b) Calibrated models at increasing measurement noise.
    for noise in [0.01, 0.05, 0.15] {
        let cal = Calibrator {
            noise,
            ..Calibrator::default()
        }
        .with_seed(args.seed + (noise * 1000.0) as u64);
        let outcome = cal.calibrate(&tb.cluster);
        let run = cbes_mpisim::simulate(
            &tb.cluster,
            &w.program,
            &zones[0].pool,
            &idle,
            &cbes_mpisim::SimConfig::default().with_seed(0x1111),
        )
        .expect("profiling run");
        let profile = extract_profile(
            &w.name,
            &run.trace,
            &tb.cluster,
            &zones[0].pool,
            &outcome.model,
        );
        let snap = SystemSnapshot::no_load(&tb.cluster, &outcome.model);
        eval_with(
            "calibrated model",
            &format!("{:.0}%", noise * 100.0),
            &snap,
            &profile,
            &mut rows_json,
            &mut t,
        );
    }

    t.print("Calibration ablation: prediction error by latency source");
    println!(
        "expected: the default 1% calibration campaign is indistinguishable \
         from exact topology\nknowledge; prediction quality only degrades \
         once per-measurement noise grows to ~15%."
    );
    save_json(
        "ablation_calibration",
        &serde_json::json!({ "rows": rows_json }),
    );
}
