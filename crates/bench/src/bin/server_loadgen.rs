//! Load generator for the CBES daemon: concurrent pipelined clients
//! hammering a Centurion-preset server with `Compare` requests over
//! real loopback sockets, reporting sustained throughput and latency
//! percentiles.
//!
//! Each client keeps a window of requests in flight on one connection
//! (NDJSON pipelining — the shape of a scheduler consulting the
//! estimating service on every placement decision), which exercises the
//! event loop's frame reassembly and batched reply flushing rather than
//! blocking lock-step round trips. Per-request work is unchanged from
//! the pre-event-loop baseline: one `Compare` of three 8-rank
//! candidates.
//!
//! Acceptance: ≥10k Compare req/s with 8 workers, zero dropped replies,
//! non-empty daemon-side latency histograms, and a clean drain on
//! `Shutdown`. Artifacts: `results/server_loadgen.json` and the headline
//! `BENCH_server_loadgen.json` at the repo root.
//!
//! ```text
//! cargo run --release --bin server_loadgen \
//!     [--full] [--runs REQS_PER_CLIENT] [--seed S] [--check] [--tolerance PCT]
//! ```
//!
//! `--check` turns the run into a CI regression gate: the fresh
//! throughput is compared against the committed
//! `BENCH_server_loadgen.json` (which is left untouched) and the
//! process exits non-zero if it regressed more than the tolerance
//! (`--tolerance`, else `CBES_PERF_GATE_TOLERANCE_PCT`, else 15%).
//!
//! Env: `CBES_LOADGEN_CLIENTS` (default 1), `CBES_LOADGEN_DEPTH`
//! (pipeline window per client, default 16), `CBES_LOADGEN_P99_BUDGET_MS`
//! (default 15.0), `CBES_LOADGEN_TRACE` (`1` stamps a trace context on
//! every request so the gate measures the traced wire path).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cbes_bench::args::ExpArgs;
use cbes_bench::{perf_gate, save_json};
use cbes_cluster::{presets, NodeId};
use cbes_core::mapping::Mapping;
use cbes_core::monitor::ForecastKind;
use cbes_core::CbesService;
use cbes_server::{
    Client, Request, RequestEnvelope, Response, ResponseEnvelope, Server, ServerConfig,
};
use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};

const WORKERS: usize = 8;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// An 8-rank ring exchange, the shape of the paper's communication-bound
/// kernels.
fn ring_profile(procs: usize) -> AppProfile {
    let mk = |rank: usize| ProcessProfile {
        rank,
        x: 5.0,
        o: 0.2,
        b: 0.5,
        sends: vec![MessageGroup {
            peer: (rank + 1) % procs,
            bytes: 8192,
            count: 50,
        }],
        recvs: vec![MessageGroup {
            peer: (rank + procs - 1) % procs,
            bytes: 8192,
            count: 50,
        }],
        profile_speed: 1.0,
        lambda: 1.0,
    };
    AppProfile {
        name: "ring".to_string(),
        procs: (0..procs).map(mk).collect(),
        arch_ratios: BTreeMap::new(),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = ExpArgs::parse();
    // One pipelined client is the sweet spot on small (1–2 core) CI
    // boxes: more client threads just preempt the reactor and blow up
    // tail latency without adding throughput.
    let clients = env_usize("CBES_LOADGEN_CLIENTS", 1);
    let depth = env_usize("CBES_LOADGEN_DEPTH", 16);
    let requested = args.runs.unwrap_or(if args.full { 10_000 } else { 2_500 });
    // Window-synchronous pipelining: round the per-client count to whole
    // windows so every request id in flight is unique.
    let windows = (requested / depth).max(1);
    let per_client = windows * depth;
    let total = per_client * clients;

    let service = Arc::new(CbesService::self_calibrated(
        Arc::new(presets::centurion()),
        ForecastKind::Adaptive(8),
    ));
    service.registry().insert(ring_profile(8));
    let handle = Server::start(
        service,
        ServerConfig {
            workers: WORKERS,
            queue_capacity: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    println!(
        "server_loadgen: centurion daemon on {addr}, {WORKERS} workers, \
         {clients} clients x {per_client} Compare requests (pipeline depth {depth})"
    );

    // Each client compares three 8-rank candidates: same-switch, split,
    // and scattered — the paper's typical mapping-comparison request.
    let candidates = vec![
        Mapping::new((0..8).map(NodeId).collect()),
        Mapping::new((60..68).map(NodeId).collect()),
        Mapping::new((0..8).map(|i| NodeId(i * 16)).collect()),
    ];

    // One pipeline window is a constant byte blob: `depth` envelopes
    // with ids 1..=depth, reused every window (window-synchronous, so
    // no id is ever in flight twice). One write syscall issues the
    // whole window; replies stream back through a buffered reader.
    //
    // `CBES_LOADGEN_TRACE=1` stamps every envelope with a trace
    // context, so the run (and the `--check` gate) measures the traced
    // wire path: decode of the trace suffix plus a rooted server span
    // per request.
    let traced = std::env::var("CBES_LOADGEN_TRACE").ok().as_deref() == Some("1");
    if traced {
        println!("server_loadgen: trace context stamped on every request");
    }
    let window_blob: Vec<u8> = {
        let mut blob = Vec::new();
        for id in 1..=depth as u64 {
            let request = Request::Compare {
                app: "ring".to_string(),
                mappings: candidates.clone(),
            };
            let envelope = if traced {
                RequestEnvelope::traced(id, request, cbes_obs::mint_trace_id(), 0)
            } else {
                RequestEnvelope::new(id, request)
            };
            blob.extend_from_slice(
                serde_json::to_string(&envelope)
                    .expect("serialise request")
                    .as_bytes(),
            );
            blob.push(b'\n');
        }
        blob
    };

    let start = Instant::now();
    let per_client_results: Vec<(Vec<Duration>, usize)> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..clients)
            .map(|_| {
                let window_blob = &window_blob;
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let mut writer = stream;
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut errors = 0usize;
                    let mut line = String::new();
                    for window in 0..windows {
                        let t0 = Instant::now();
                        writer.write_all(window_blob).expect("write window");
                        for reply in 0..depth {
                            line.clear();
                            if reader.read_line(&mut line).expect("read reply") == 0 {
                                return (latencies, errors + (depth - reply));
                            }
                            // Spot-check one reply per window with a full
                            // typed parse; scan-verify the rest so client
                            // CPU does not drown out the server under test.
                            if reply == 0 {
                                match serde_json::from_str::<ResponseEnvelope>(&line) {
                                    Ok(ResponseEnvelope {
                                        response: Response::Predictions { predictions, .. },
                                        ..
                                    }) if predictions.len() == 3 => {}
                                    _ => {
                                        errors += 1;
                                        if window == 0 {
                                            eprintln!("bad reply: {}", line.trim());
                                        }
                                    }
                                }
                            } else if !line.contains("\"Predictions\"") {
                                errors += 1;
                            }
                            latencies.push(t0.elapsed());
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let mut errors = 0usize;
    for (lat, err) in per_client_results {
        latencies.extend(lat);
        errors += err;
    }
    let dropped = total - latencies.len();
    latencies.sort_unstable();
    let req_per_s = total as f64 / elapsed.as_secs_f64();
    let p50 = percentile(&latencies, 0.50);
    let p90 = percentile(&latencies, 0.90);
    let p95 = percentile(&latencies, 0.95);
    let p99 = percentile(&latencies, 0.99);
    let max = *latencies.last().expect("at least one request");

    // Clean drain: every admitted request must be answered before join
    // returns. On the way out, pull the server's own observability
    // snapshot and check it saw the load we generated.
    let mut control = Client::connect(addr).expect("connect control");
    let stats = control.stats().expect("stats");
    let snap = control.metrics().expect("metrics");
    let queue_wait = snap
        .histograms
        .get("server.queue_wait_us")
        .expect("queue-wait histogram");
    let service_time = snap
        .histograms
        .get("server.service_time_us")
        .expect("service-time histogram");
    assert!(
        !queue_wait.is_empty() && !service_time.is_empty(),
        "daemon histograms must not be empty after {total} requests"
    );
    assert!(
        service_time.count >= total as u64,
        "service-time samples ({}) must cover the generated load ({total})",
        service_time.count
    );
    assert!(
        queue_wait.p50() <= queue_wait.p99() && service_time.p50() <= service_time.p99(),
        "histogram percentiles must be monotone"
    );
    control.shutdown().expect("shutdown ack");
    let (served, served_errors) = handle.join();

    println!("\n  elapsed          {:>10.3} s", elapsed.as_secs_f64());
    println!("  throughput       {req_per_s:>10.0} req/s");
    println!("  latency p50      {:>10.1} us", p50.as_secs_f64() * 1e6);
    println!("  latency p90      {:>10.1} us", p90.as_secs_f64() * 1e6);
    println!("  latency p95      {:>10.1} us", p95.as_secs_f64() * 1e6);
    println!("  latency p99      {:>10.1} us", p99.as_secs_f64() * 1e6);
    println!("  latency max      {:>10.1} us", max.as_secs_f64() * 1e6);
    println!(
        "  server svc p50   {:>10} us ({} samples)",
        service_time.p50(),
        service_time.count
    );
    println!(
        "  server queue p50 {:>10} us ({} samples)",
        queue_wait.p50(),
        queue_wait.count
    );
    println!("  dropped replies  {dropped:>10}");
    println!("  client errors    {errors:>10}");
    println!(
        "  server           {} served, {} errors, drained cleanly",
        served, served_errors
    );

    // Tail-latency budget: a loopback Compare must come back within the
    // p99 budget even at full load. CI hosts vary, so the budget is
    // env-overridable without a rebuild.
    let p99_budget_ms: f64 = std::env::var("CBES_LOADGEN_P99_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15.0);
    let p99_ms = p99.as_secs_f64() * 1e3;
    let p99_ok = p99_ms <= p99_budget_ms;
    if !p99_ok {
        eprintln!("FAIL: p99 {p99_ms:.2} ms exceeds the {p99_budget_ms:.1} ms budget");
    }

    let ok = dropped == 0 && errors == 0 && req_per_s >= 10_000.0 && p99_ok;
    save_json(
        "server_loadgen",
        &serde_json::json!({
            "cluster": "centurion",
            "workers": WORKERS,
            "clients": clients,
            "pipeline_depth": depth,
            "requests": total,
            "mappings_per_request": candidates.len(),
            "elapsed_s": elapsed.as_secs_f64(),
            "req_per_s": req_per_s,
            "latency_us": {
                "p50": p50.as_secs_f64() * 1e6,
                "p90": p90.as_secs_f64() * 1e6,
                "p95": p95.as_secs_f64() * 1e6,
                "p99": p99.as_secs_f64() * 1e6,
                "max": max.as_secs_f64() * 1e6,
            },
            "server_histograms_us": {
                "queue_wait": {
                    "count": queue_wait.count,
                    "p50": queue_wait.p50(),
                    "p99": queue_wait.p99(),
                },
                "service_time": {
                    "count": service_time.count,
                    "p50": service_time.p50(),
                    "p99": service_time.p99(),
                },
            },
            "dropped_replies": dropped,
            "client_errors": errors,
            "served": served,
            "server_errors": served_errors,
            "queue_depth_at_stats": stats.queue_depth,
            "clean_drain": true,
            "target_req_per_s": 10_000.0,
            "p99_budget_ms": p99_budget_ms,
            "pass": ok,
        }),
    );
    // Headline numbers at the repo root, where CI publishes them. In
    // `--check` mode the committed file IS the baseline under test, so
    // it is read-only there.
    if !args.check {
        let bench = serde_json::json!({
            "bench": "server_loadgen",
            "req_per_s": req_per_s,
            "latency_us": {
                "p50": p50.as_secs_f64() * 1e6,
                "p95": p95.as_secs_f64() * 1e6,
                "p99": p99.as_secs_f64() * 1e6,
            },
        });
        match serde_json::to_string_pretty(&bench) {
            Ok(s) => {
                if let Err(e) = std::fs::write("BENCH_server_loadgen.json", s) {
                    eprintln!("warning: cannot write BENCH_server_loadgen.json: {e}");
                } else {
                    println!("[artifact] BENCH_server_loadgen.json");
                }
            }
            Err(e) => eprintln!("warning: cannot serialise bench summary: {e}"),
        }
    }

    if !ok {
        eprintln!(
            "FAIL: target is >=10k req/s with zero dropped replies and \
             p99 <= {p99_budget_ms:.1} ms"
        );
        std::process::exit(1);
    }
    println!(
        "\nPASS: sustained {req_per_s:.0} req/s with zero dropped replies, \
         p99 {p99_ms:.2} ms within the {p99_budget_ms:.1} ms budget"
    );

    // Regression gate (`--check`): the fresh run must hold the line
    // against the committed baseline.
    if args.check {
        let baseline_path = "BENCH_server_loadgen.json";
        let tolerance = perf_gate::tolerance_pct(args.tolerance);
        match perf_gate::check_throughput(baseline_path, req_per_s, tolerance) {
            Ok(verdict) => println!("CHECK OK: {verdict}"),
            Err(msg) => {
                // A bare "regressed by N%" hides the numbers the fix
                // needs; print both sides of the comparison in full.
                eprintln!("CHECK FAIL: {msg}");
                let p99_us = p99.as_secs_f64() * 1e6;
                match perf_gate::read_baseline(baseline_path) {
                    Ok(baseline) => {
                        let baseline_p99 = baseline
                            .p99_us
                            .map(|v| format!("{v:.1} us"))
                            .unwrap_or_else(|| "n/a".to_string());
                        eprintln!(
                            "  committed baseline: {:>10.0} req/s, p99 {baseline_p99}",
                            baseline.req_per_s
                        );
                        eprintln!(
                            "  measured:           {req_per_s:>10.0} req/s, p99 {p99_us:.1} us"
                        );
                    }
                    Err(e) => eprintln!(
                        "  measured {req_per_s:.0} req/s, p99 {p99_us:.1} us \
                         (baseline unreadable: {e})"
                    ),
                }
                std::process::exit(1);
            }
        }
    }
}
