//! Load generator for the CBES daemon: concurrent clients hammering a
//! Centurion-preset server with `Compare` requests over real loopback
//! sockets, reporting sustained throughput and latency percentiles.
//!
//! Acceptance: ≥10k Compare req/s with 8 workers, zero dropped replies,
//! non-empty daemon-side latency histograms, and a clean drain on
//! `Shutdown`. Artifacts: `results/server_loadgen.json` and the headline
//! `BENCH_server_loadgen.json` at the repo root.
//!
//! ```text
//! cargo run --release --bin server_loadgen [--full] [--runs REQS_PER_CLIENT] [--seed S]
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cbes_bench::args::ExpArgs;
use cbes_bench::save_json;
use cbes_cluster::{presets, NodeId};
use cbes_core::mapping::Mapping;
use cbes_core::monitor::ForecastKind;
use cbes_core::CbesService;
use cbes_server::{Client, Server, ServerConfig};
use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};

const WORKERS: usize = 8;
const CLIENTS: usize = 8;

/// An 8-rank ring exchange, the shape of the paper's communication-bound
/// kernels.
fn ring_profile(procs: usize) -> AppProfile {
    let mk = |rank: usize| ProcessProfile {
        rank,
        x: 5.0,
        o: 0.2,
        b: 0.5,
        sends: vec![MessageGroup {
            peer: (rank + 1) % procs,
            bytes: 8192,
            count: 50,
        }],
        recvs: vec![MessageGroup {
            peer: (rank + procs - 1) % procs,
            bytes: 8192,
            count: 50,
        }],
        profile_speed: 1.0,
        lambda: 1.0,
    };
    AppProfile {
        name: "ring".to_string(),
        procs: (0..procs).map(mk).collect(),
        arch_ratios: BTreeMap::new(),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = ExpArgs::parse();
    let per_client = args.runs.unwrap_or(if args.full { 10_000 } else { 2_500 });
    let total = per_client * CLIENTS;

    let service = Arc::new(CbesService::self_calibrated(
        Arc::new(presets::centurion()),
        ForecastKind::Adaptive(8),
    ));
    service.registry().insert(ring_profile(8));
    let handle = Server::start(
        service,
        ServerConfig {
            workers: WORKERS,
            queue_capacity: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    println!(
        "server_loadgen: centurion daemon on {addr}, {WORKERS} workers, \
         {CLIENTS} clients x {per_client} Compare requests"
    );

    // Each client compares three 8-rank candidates: same-switch, split,
    // and scattered — the paper's typical mapping-comparison request.
    let candidates = vec![
        Mapping::new((0..8).map(NodeId).collect()),
        Mapping::new((60..68).map(NodeId).collect()),
        Mapping::new((0..8).map(|i| NodeId(i * 16)).collect()),
    ];

    let start = Instant::now();
    let per_client_results: Vec<(Vec<Duration>, usize)> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let candidates = &candidates;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut errors = 0usize;
                    for _ in 0..per_client {
                        let t0 = Instant::now();
                        match client.compare("ring", candidates) {
                            Ok((_, preds)) => assert_eq!(preds.len(), 3),
                            Err(e) => {
                                errors += 1;
                                eprintln!("request failed: {e}");
                            }
                        }
                        latencies.push(t0.elapsed());
                    }
                    (latencies, errors)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let mut errors = 0usize;
    for (lat, err) in per_client_results {
        latencies.extend(lat);
        errors += err;
    }
    let dropped = total - latencies.len();
    latencies.sort_unstable();
    let req_per_s = total as f64 / elapsed.as_secs_f64();
    let p50 = percentile(&latencies, 0.50);
    let p90 = percentile(&latencies, 0.90);
    let p95 = percentile(&latencies, 0.95);
    let p99 = percentile(&latencies, 0.99);
    let max = *latencies.last().expect("at least one request");

    // Clean drain: every admitted request must be answered before join
    // returns. On the way out, pull the server's own observability
    // snapshot and check it saw the load we generated.
    let mut control = Client::connect(addr).expect("connect control");
    let stats = control.stats().expect("stats");
    let snap = control.metrics().expect("metrics");
    let queue_wait = snap
        .histograms
        .get("server.queue_wait_us")
        .expect("queue-wait histogram");
    let service_time = snap
        .histograms
        .get("server.service_time_us")
        .expect("service-time histogram");
    assert!(
        !queue_wait.is_empty() && !service_time.is_empty(),
        "daemon histograms must not be empty after {total} requests"
    );
    assert!(
        service_time.count >= total as u64,
        "service-time samples ({}) must cover the generated load ({total})",
        service_time.count
    );
    assert!(
        queue_wait.p50() <= queue_wait.p99() && service_time.p50() <= service_time.p99(),
        "histogram percentiles must be monotone"
    );
    control.shutdown().expect("shutdown ack");
    let (served, served_errors) = handle.join();

    println!("\n  elapsed          {:>10.3} s", elapsed.as_secs_f64());
    println!("  throughput       {req_per_s:>10.0} req/s");
    println!("  latency p50      {:>10.1} us", p50.as_secs_f64() * 1e6);
    println!("  latency p90      {:>10.1} us", p90.as_secs_f64() * 1e6);
    println!("  latency p95      {:>10.1} us", p95.as_secs_f64() * 1e6);
    println!("  latency p99      {:>10.1} us", p99.as_secs_f64() * 1e6);
    println!("  latency max      {:>10.1} us", max.as_secs_f64() * 1e6);
    println!(
        "  server svc p50   {:>10} us ({} samples)",
        service_time.p50(),
        service_time.count
    );
    println!(
        "  server queue p50 {:>10} us ({} samples)",
        queue_wait.p50(),
        queue_wait.count
    );
    println!("  dropped replies  {dropped:>10}");
    println!("  client errors    {errors:>10}");
    println!(
        "  server           {} served, {} errors, drained cleanly",
        served, served_errors
    );

    // Tail-latency budget: a loopback Compare must come back within the
    // p99 budget even at full load. CI hosts vary, so the budget is
    // env-overridable without a rebuild.
    let p99_budget_ms: f64 = std::env::var("CBES_LOADGEN_P99_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15.0);
    let p99_ms = p99.as_secs_f64() * 1e3;
    let p99_ok = p99_ms <= p99_budget_ms;
    if !p99_ok {
        eprintln!("FAIL: p99 {p99_ms:.2} ms exceeds the {p99_budget_ms:.1} ms budget");
    }

    let ok = dropped == 0 && errors == 0 && req_per_s >= 10_000.0 && p99_ok;
    save_json(
        "server_loadgen",
        &serde_json::json!({
            "cluster": "centurion",
            "workers": WORKERS,
            "clients": CLIENTS,
            "requests": total,
            "mappings_per_request": candidates.len(),
            "elapsed_s": elapsed.as_secs_f64(),
            "req_per_s": req_per_s,
            "latency_us": {
                "p50": p50.as_secs_f64() * 1e6,
                "p90": p90.as_secs_f64() * 1e6,
                "p95": p95.as_secs_f64() * 1e6,
                "p99": p99.as_secs_f64() * 1e6,
                "max": max.as_secs_f64() * 1e6,
            },
            "server_histograms_us": {
                "queue_wait": {
                    "count": queue_wait.count,
                    "p50": queue_wait.p50(),
                    "p99": queue_wait.p99(),
                },
                "service_time": {
                    "count": service_time.count,
                    "p50": service_time.p50(),
                    "p99": service_time.p99(),
                },
            },
            "dropped_replies": dropped,
            "client_errors": errors,
            "served": served,
            "server_errors": served_errors,
            "queue_depth_at_stats": stats.queue_depth,
            "clean_drain": true,
            "target_req_per_s": 10_000.0,
            "p99_budget_ms": p99_budget_ms,
            "pass": ok,
        }),
    );
    // Headline numbers at the repo root, where CI publishes them.
    let bench = serde_json::json!({
        "bench": "server_loadgen",
        "req_per_s": req_per_s,
        "latency_us": {
            "p50": p50.as_secs_f64() * 1e6,
            "p95": p95.as_secs_f64() * 1e6,
            "p99": p99.as_secs_f64() * 1e6,
        },
    });
    match serde_json::to_string_pretty(&bench) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_server_loadgen.json", s) {
                eprintln!("warning: cannot write BENCH_server_loadgen.json: {e}");
            } else {
                println!("[artifact] BENCH_server_loadgen.json");
            }
        }
        Err(e) => eprintln!("warning: cannot serialise bench summary: {e}"),
    }

    if !ok {
        eprintln!(
            "FAIL: target is >=10k req/s with zero dropped replies and \
             p99 <= {p99_budget_ms:.1} ms"
        );
        std::process::exit(1);
    }
    println!(
        "\nPASS: sustained {req_per_s:.0} req/s with zero dropped replies, \
         p99 {p99_ms:.2} ms within the {p99_budget_ms:.1} ms budget"
    );
}
