//! Run every experiment binary in sequence, writing logs to
//! `results/logs/` and finishing with the collected `results/REPORT.md`.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin run_all [-- --full]
//! ```
//!
//! Flags after `--` are forwarded to every experiment.

#![forbid(unsafe_code)]

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "e10_latency_spread",
    "phase1_sweep",
    "fig5_prediction_error",
    "phase3_load_sensitivity",
    "fig6_lu_zones",
    "table1_lu_worst_best",
    "table2_lu_average",
    "fig7_distributions",
    "table3_other_worst_best",
    "table4_other_average",
    "ablation_lambda",
    "ablation_forecast",
    "ablation_moves",
    "ablation_sched",
    "ablation_calibration",
    "ext_irregular",
];

fn main() {
    let forward: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .to_path_buf();
    std::fs::create_dir_all("results/logs").expect("create results/logs");

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        print!("running {name} ... ");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        let started = std::time::Instant::now();
        let output = Command::new(exe_dir.join(name))
            .args(&forward)
            .output()
            .unwrap_or_else(|e| panic!("cannot spawn {name}: {e} (build with `cargo build --release -p cbes-bench` first)"));
        let log = format!(
            "{}{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::write(format!("results/logs/{name}.txt"), &log).expect("write log");
        if output.status.success() {
            println!("ok ({:.1}s)", started.elapsed().as_secs_f64());
        } else {
            println!("FAILED ({})", output.status);
            failures.push(*name);
        }
    }

    let report = Command::new(exe_dir.join("make_report"))
        .status()
        .expect("run make_report");
    if !report.success() {
        failures.push("make_report");
    }
    if failures.is_empty() {
        println!(
            "all {} experiments complete; see results/REPORT.md",
            EXPERIMENTS.len()
        );
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
