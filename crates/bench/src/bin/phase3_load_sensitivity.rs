//! §5 phase 3: tolerance of predictions to background-load changes.
//!
//! LU, SP and BT are profiled and predicted on an idle system; the actual
//! execution then runs with CPU availability reduced on one mapped node.
//! The paper found predictions "highly sensitive": losing just 10 % of one
//! node's CPU pushes the error past the ~4 % band, while light (<10 %)
//! loads stay tolerable. We also show the flip side the paper's design
//! relies on: when the monitor *knows* the load, the load-aware prediction
//! stays accurate.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin phase3_load_sensitivity [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::zones::lu_zones;
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_cluster::load::LoadState;
use cbes_core::eval::Evaluator;
use cbes_core::mapping::Mapping;
use cbes_workloads::npb::{bt, lu, sp, NpbClass};
use cbes_workloads::Workload;

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(3, 5);
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    let pool = &zones[0].pool; // 8 Alphas
    let losses = [0.0, 0.05, 0.10, 0.20, 0.30];

    println!(
        "Phase 3 — prediction tolerance to background load changes\n\
         (one mapped node loses CPU availability after the prediction; {} runs)",
        runs
    );

    let cases: Vec<Workload> = vec![lu(8, NpbClass::A), sp(8, NpbClass::A), bt(8, NpbClass::A)];

    let mut t = Table::new(&[
        "benchmark",
        "CPU loss %",
        "stale pred err %",
        "load-aware err %",
    ]);
    let mut rows_json = Vec::new();
    for w in &cases {
        let profile = tb.profile(w, pool, args.seed + 3);
        let mapping = Mapping::new(pool.clone());
        // Prediction made on the idle snapshot ("stale" once load appears).
        let stale_pred = tb.predict(&profile, &mapping);
        let victim = pool[0];
        for &loss in &losses {
            let mut load = LoadState::idle(tb.cluster.len());
            load.set_cpu_avail(victim, 1.0 - loss);
            let measured: Vec<f64> = (0..runs as u64)
                .map(|i| tb.measure(w, &mapping, &load, args.seed + 91 + i))
                .collect();
            let m = stats::mean(&measured);
            let stale_err = stats::pct_error(stale_pred, m).abs();
            // Load-aware prediction: the monitor has seen the new load.
            let snap = tb.snapshot_with(load.clone());
            let aware_pred = Evaluator::new(&profile, &snap).predict_time(&mapping);
            let aware_err = stats::pct_error(aware_pred, m).abs();
            t.row(vec![
                w.name.clone(),
                format!("{:.0}", loss * 100.0),
                format!("{stale_err:.2}"),
                format!("{aware_err:.2}"),
            ]);
            rows_json.push(serde_json::json!({
                "benchmark": w.name, "cpu_loss_pct": loss * 100.0,
                "stale_error_pct": stale_err, "aware_error_pct": aware_err,
            }));
        }
    }
    t.print("Prediction error under post-prediction load change (paper §5 phase 3)");
    println!(
        "paper reference: a single node losing 10% CPU pushes the (stale) \
         error past ~4%;\nloads under 10% were found tolerable. The load-aware \
         column shows why CBES\nre-snapshots load before every evaluation."
    );

    save_json(
        "phase3_load_sensitivity",
        &serde_json::json!({ "rows": rows_json }),
    );
}
