//! Figure 7: distributions of predicted execution times for the mappings
//! selected by CS and by NCS on the LU(3) (low-speed group) case — showing
//! CS results skewed towards the minimum-time mappings and NCS towards the
//! worst.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin fig7_distributions [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::lu_exp::{prepare_lu, run_scheduler, Driver};
use cbes_bench::zones::lu_zones;
use cbes_bench::{args::ExpArgs, save_json, stats};

fn ascii_hist(label: &str, xs: &[f64], lo: f64, hi: f64, bins: usize) {
    let (counts, width) = stats::histogram(xs, lo, hi, bins);
    let maxc = counts.iter().copied().max().unwrap_or(1).max(1);
    println!("\n{label} (n = {}):", xs.len());
    for (i, &c) in counts.iter().enumerate() {
        let from = lo + i as f64 * width;
        let bar = "#".repeat(c * 50 / maxc);
        println!("  {from:8.3}s | {bar} {c}");
    }
}

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(40, 100);
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    let setup = prepare_lu(&tb, &zones);
    let low = &zones[2];

    println!(
        "Figure 7 — predicted time distributions for the LU(3) case\n\
         ({} runs per scheduler over '{}')",
        runs, low.name
    );

    let cs = run_scheduler(
        &tb,
        &setup.profile,
        &setup.workload,
        &low.pool,
        Driver::Cs,
        runs,
        args.seed,
    );
    let ncs = run_scheduler(
        &tb,
        &setup.profile,
        &setup.workload,
        &low.pool,
        Driver::Ncs,
        runs,
        args.seed + 1000,
    );
    let cs_pred: Vec<f64> = cs.iter().map(|o| o.predicted).collect();
    let ncs_pred: Vec<f64> = ncs.iter().map(|o| o.predicted).collect();

    let lo = stats::min(&cs_pred).min(stats::min(&ncs_pred));
    let hi = stats::max(&cs_pred).max(stats::max(&ncs_pred));
    let span = (hi - lo).max(1e-9);
    let (lo, hi) = (lo - 0.02 * span, hi + 0.02 * span);
    ascii_hist("CS predicted times", &cs_pred, lo, hi, 14);
    ascii_hist("NCS predicted times (normalised)", &ncs_pred, lo, hi, 14);

    println!(
        "\nCS mean {:.3}s vs NCS mean {:.3}s — CS skews to the fast end \
         (paper figure 7 shape)",
        stats::mean(&cs_pred),
        stats::mean(&ncs_pred)
    );

    save_json(
        "fig7_distributions",
        &serde_json::json!({
            "cs_predicted": cs_pred,
            "ncs_predicted": ncs_pred,
        }),
    );
}
