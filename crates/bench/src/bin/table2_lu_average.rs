//! Table 2: LU average-case scenario — what a scheduling request yields in
//! practice. 100 CS and 100 NCS runs per zone (scaled down by default);
//! reports average predicted time, hit rate (selections achieving the
//! minimum execution time), average measured time, and expected/measured/
//! maximum speedups of CS over NCS.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin table2_lu_average [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::lu_exp::{hit_rate, prepare_lu, run_scheduler, Driver, RunOutcome};
use cbes_bench::zones::lu_zones;
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};

fn collect(outs: &[RunOutcome]) -> (Vec<f64>, Vec<f64>) {
    (
        outs.iter().map(|o| o.predicted).collect(),
        outs.iter().map(|o| o.measured).collect(),
    )
}

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(30, 100);
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    let setup = prepare_lu(&tb, &zones);

    println!(
        "Table 2 — LU average case ({} CS + {} NCS runs per zone, {})",
        runs, runs, setup.workload.name
    );

    let mut t = Table::new(&[
        "test case",
        "NCS pred (s)",
        "NCS hits %",
        "NCS meas (s)",
        "CS pred (s)",
        "CS hits %",
        "CS meas (s)",
        "exp sp %",
        "meas sp %",
        "max sp %",
    ]);
    let mut rows_json = Vec::new();
    for zone in &zones {
        let ncs = run_scheduler(
            &tb,
            &setup.profile,
            &setup.workload,
            &zone.pool,
            Driver::Ncs,
            runs,
            args.seed,
        );
        let cs = run_scheduler(
            &tb,
            &setup.profile,
            &setup.workload,
            &zone.pool,
            Driver::Cs,
            runs,
            args.seed + 1000,
        );
        let (ncs_pred, ncs_meas) = collect(&ncs);
        let (cs_pred, cs_meas) = collect(&cs);
        // Best prediction and worst measurement seen in this zone.
        let zone_best_pred = stats::min(&cs_pred).min(stats::min(&ncs_pred));
        let zone_best = stats::min(&cs_meas).min(stats::min(&ncs_meas));
        let zone_worst = stats::max(&ncs_meas).max(stats::max(&cs_meas));
        let expected = stats::speedup_pct(stats::mean(&ncs_pred), stats::mean(&cs_pred));
        let measured = stats::speedup_pct(stats::mean(&ncs_meas), stats::mean(&cs_meas));
        let max_sp = stats::speedup_pct(zone_worst, zone_best);
        t.row(vec![
            format!("LU ({})", zone.id),
            format!("{:.3}", stats::mean(&ncs_pred)),
            format!("{:.0}", hit_rate(&ncs, zone_best_pred, 0.005)),
            format!("{:.3}", stats::mean(&ncs_meas)),
            format!("{:.3}", stats::mean(&cs_pred)),
            format!("{:.0}", hit_rate(&cs, zone_best_pred, 0.005)),
            format!("{:.3}", stats::mean(&cs_meas)),
            format!("{expected:.1}"),
            format!("{measured:.1}"),
            format!("{max_sp:.1}"),
        ]);
        rows_json.push(serde_json::json!({
            "case": format!("LU ({})", zone.id),
            "ncs": {"pred": stats::mean(&ncs_pred), "meas": stats::mean(&ncs_meas),
                     "hits_pct": hit_rate(&ncs, zone_best_pred, 0.005)},
            "cs": {"pred": stats::mean(&cs_pred), "meas": stats::mean(&cs_meas),
                    "hits_pct": hit_rate(&cs, zone_best_pred, 0.005)},
            "expected_speedup_pct": expected,
            "measured_speedup_pct": measured,
            "max_speedup_pct": max_sp,
        }));
    }
    t.print("LU: average case scenario (paper table 2)");
    println!("paper reference: CS ≈ 90% hits / NCS < 3% hits; measured speedups 4.8 / 8.7 / 5.5 %");

    save_json(
        "table2_lu_average",
        &serde_json::json!({ "rows": rows_json }),
    );
}
