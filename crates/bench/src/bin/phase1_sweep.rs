//! §5 phase 1: synthetic-benchmark parameter sweep validating the
//! prediction formulation across computation/communication overlap,
//! communication granularity, duration, and mapping mixes on both clusters.
//!
//! The paper swept >16,000 cases (5 runs each) and found >90 % of cases
//! within 4 % error, mean ≈2 % ± 0.75. The default here is a scaled-down
//! grid; `--full` expands it.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin phase1_sweep [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::{parallel_map, Testbed};
use cbes_bench::{args::ExpArgs, save_json, stats};
use cbes_cluster::load::LoadState;
use cbes_cluster::{Cluster, NodeId};
use cbes_core::mapping::Mapping;
use cbes_workloads::{SynthPattern, SyntheticSpec};

/// Three mapping mixes per cluster: co-located, spread over switches, and
/// maximally heterogeneous (cross-architecture / cross-federation).
fn mapping_mixes(cluster: &Cluster, n: usize) -> Vec<(&'static str, Mapping)> {
    let ids: Vec<NodeId> = cluster.node_ids().collect();
    let colocated = Mapping::new(ids[..n].to_vec());
    // Spread: stride so consecutive ranks land on different switches.
    let stride = (cluster.len() / n).max(1);
    let spread = Mapping::new((0..n).map(|i| ids[(i * stride) % ids.len()]).collect());
    // Heterogeneous: half the processes at the front of the id space, half
    // at the back (different architectures in both presets; on Orange Grove
    // the job straddles the federation link, as a real co-allocation would,
    // without routing every neighbour edge across it).
    let hetero = Mapping::new(
        (0..n)
            .map(|i| {
                if i < n / 2 {
                    ids[i]
                } else {
                    ids[ids.len() - 1 - (i - n / 2)]
                }
            })
            .collect(),
    );
    vec![
        ("colocated", colocated),
        ("spread", spread),
        ("hetero", hetero),
    ]
}

struct CaseResult {
    cluster: &'static str,
    err_pct: f64,
}

#[allow(clippy::type_complexity)]
fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(3, 5);
    let procs = 8;

    let (overlaps, comps, msgs, bytes, iters, patterns): (
        Vec<f64>,
        Vec<f64>,
        Vec<u32>,
        Vec<u64>,
        Vec<u32>,
        Vec<SynthPattern>,
    ) = if args.full {
        (
            vec![0.0, 0.25, 0.5, 0.75, 1.0],
            vec![0.002, 0.01, 0.05],
            vec![1, 4, 12],
            vec![512, 4 * 1024, 32 * 1024],
            vec![5, 15, 40],
            vec![
                SynthPattern::Ring,
                SynthPattern::Pairs,
                SynthPattern::AllToAll,
            ],
        )
    } else {
        (
            vec![0.0, 0.5, 1.0],
            vec![0.005, 0.03],
            vec![2, 8],
            vec![2 * 1024, 16 * 1024],
            vec![8, 24],
            vec![SynthPattern::Ring, SynthPattern::AllToAll],
        )
    };

    let mut specs = Vec::new();
    for &overlap in &overlaps {
        for &comp_per_iter in &comps {
            for &msgs_per_iter in &msgs {
                for &msg_bytes in &bytes {
                    // Stay out of the link-saturation regime: once a shared
                    // link's offered load exceeds its capacity, execution
                    // time is set by queueing, which eq. 4-8 does not model
                    // (and which the paper's testbed sweep did not enter).
                    if msg_bytes * msgs_per_iter as u64 > 32 * 1024 {
                        continue;
                    }
                    for &it in &iters {
                        for &pattern in &patterns {
                            specs.push(SyntheticSpec {
                                procs,
                                iters: it,
                                comp_per_iter,
                                msgs_per_iter,
                                msg_bytes,
                                overlap,
                                pattern,
                            });
                        }
                    }
                }
            }
        }
    }

    let testbeds = [
        ("centurion", Testbed::centurion(args.seed)),
        ("orange-grove", Testbed::orange_grove(args.seed)),
    ];
    let total_cases: usize = specs.len() * testbeds.len() * 3;
    println!(
        "Phase 1 — synthetic parameter sweep: {} specs × 2 clusters × 3 \
         mapping mixes = {} cases, {} runs each (paper: >16,000 cases)",
        specs.len(),
        total_cases,
        runs
    );

    let mut results: Vec<CaseResult> = Vec::new();
    for (name, tb) in &testbeds {
        let idle = LoadState::idle(tb.cluster.len());
        let mixes = mapping_mixes(&tb.cluster, procs);
        // One profiling mapping per cluster: the co-located one.
        let outcomes = parallel_map(specs.clone(), |spec| {
            let w = spec.build();
            let prof_map = mixes[0].1.as_slice().to_vec();
            let profile = tb.profile(&w, &prof_map, args.seed + 17);
            mixes
                .iter()
                .map(|(_, m)| {
                    let predicted = tb.predict(&profile, m);
                    let measured: Vec<f64> = (0..runs as u64)
                        .map(|i| tb.measure(&w, m, &idle, args.seed + 31 + i))
                        .collect();
                    stats::pct_error(predicted, stats::mean(&measured)).abs()
                })
                .collect::<Vec<f64>>()
        });
        for errs in outcomes {
            for err_pct in errs {
                results.push(CaseResult {
                    cluster: name,
                    err_pct,
                });
            }
        }
    }

    let errors: Vec<f64> = results.iter().map(|r| r.err_pct).collect();
    let within4 = errors.iter().filter(|&&e| e <= 4.0).count() as f64 / errors.len() as f64;
    println!(
        "\ncases: {}\nwithin 4% error: {:.1}% of cases (paper: >90%)\n\
         mean |error|: {:.2}% ± {:.2} (95% CI)  (paper: ≈2% ± 0.75)\n\
         max |error|: {:.2}%",
        errors.len(),
        within4 * 100.0,
        stats::mean(&errors),
        stats::ci95(&errors),
        stats::max(&errors)
    );
    for cl in ["centurion", "orange-grove"] {
        let e: Vec<f64> = results
            .iter()
            .filter(|r| r.cluster == cl)
            .map(|r| r.err_pct)
            .collect();
        println!(
            "  {cl}: mean {:.2}%, max {:.2}%",
            stats::mean(&e),
            stats::max(&e)
        );
    }

    save_json(
        "phase1_sweep",
        &serde_json::json!({
            "cases": errors.len(),
            "within_4pct": within4,
            "mean_error_pct": stats::mean(&errors),
            "ci95": stats::ci95(&errors),
            "max_error_pct": stats::max(&errors),
        }),
    );
}
