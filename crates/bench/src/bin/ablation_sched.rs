//! Ablation: scheduling algorithms. The paper's future work asks about
//! "the suitability of other scheduling algorithms, e.g. genetic
//! algorithms" (§8). This ablation races CS (simulated annealing), the
//! genetic scheduler, the greedy list scheduler, and RS on the LU(2) and
//! Aztec cases, reporting solution quality and scheduler cost.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin ablation_sched [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::zones::{homogeneous_pool, lu_zones};
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_cluster::load::LoadState;
use cbes_sched::{
    GaConfig, GeneticScheduler, GreedyScheduler, RandomScheduler, SaConfig, SaScheduler,
    ScheduleRequest, Scheduler,
};
use cbes_workloads::{asci, npb, Workload};

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(10, 30);
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    let idle = LoadState::idle(tb.cluster.len());

    let cases: Vec<(Workload, Vec<cbes_cluster::NodeId>, &'static str)> = vec![
        (
            npb::lu(8, npb::NpbClass::A),
            zones[1].pool.clone(),
            "LU(2) medium group",
        ),
        (
            asci::aztec(8),
            homogeneous_pool(&tb.cluster),
            "Aztec, SPARC pool",
        ),
    ];

    println!(
        "Ablation — scheduling algorithms ({} runs per scheduler per case)",
        runs
    );

    for (w, pool, label) in &cases {
        // Profile on the homogeneous Alpha group (mixed-architecture
        // profiling runs inflate λ with imbalance waits).
        let profile = tb.profile(w, &zones[0].pool, args.seed + 3);
        let mut t = Table::new(&[
            "scheduler",
            "mean pred (s)",
            "best pred (s)",
            "mean measured (s)",
            "mean sched time (s)",
            "evals",
        ]);
        let mut rows_json = Vec::new();
        type Mk = Box<dyn Fn(u64) -> Box<dyn Scheduler>>;
        let mks: Vec<(&str, Mk)> = vec![
            (
                "CS (SA)",
                Box::new(|s| Box::new(SaScheduler::new(SaConfig::fast(s)))),
            ),
            (
                "GA",
                Box::new(|s| Box::new(GeneticScheduler::new(GaConfig::fast(s)))),
            ),
            ("Greedy", Box::new(|_| Box::new(GreedyScheduler::new()))),
            ("RS", Box::new(|s| Box::new(RandomScheduler::new(s)))),
        ];
        for (name, mk) in &mks {
            let mut preds = Vec::new();
            let mut meas = Vec::new();
            let mut times = Vec::new();
            let mut evals = Vec::new();
            for i in 0..runs {
                let snap = tb.snapshot();
                let req = ScheduleRequest::new(&profile, &snap, pool);
                let r = mk(args.seed + i as u64 * 6007)
                    .schedule(&req)
                    .expect("valid request");
                preds.push(r.predicted_time);
                meas.push(tb.measure(w, &r.mapping, &idle, args.seed + 123 + i as u64));
                times.push(r.elapsed.as_secs_f64());
                evals.push(r.evaluations as f64);
            }
            t.row(vec![
                name.to_string(),
                format!("{:.4}", stats::mean(&preds)),
                format!("{:.4}", stats::min(&preds)),
                format!("{:.4}", stats::mean(&meas)),
                format!("{:.5}", stats::mean(&times)),
                format!("{:.0}", stats::mean(&evals)),
            ]);
            rows_json.push(serde_json::json!({
                "case": label, "scheduler": name,
                "mean_pred": stats::mean(&preds), "best_pred": stats::min(&preds),
                "mean_measured": stats::mean(&meas),
                "mean_sched_time_s": stats::mean(&times),
                "mean_evals": stats::mean(&evals),
            }));
        }
        t.print(&format!("Scheduler ablation — {label}"));
        save_json(
            &format!("ablation_sched_{}", w.name.replace('.', "_")),
            &serde_json::json!({ "rows": rows_json }),
        );
    }
    println!(
        "expected: CS and GA reach comparable quality (GA at higher cost); \
         greedy is cheap but\nloses on communication-bound cases; RS trails \
         everyone — supporting the paper's choice of SA\nand its future-work \
         interest in genetic algorithms."
    );
}
