//! Figure 6: LU on 8 Orange Grove nodes — measured execution-time ranges of
//! representative mappings, showing three distinct speed zones.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin fig6_lu_zones [--full] [--runs N]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::lu_exp::{measure_all, prepare_lu};
use cbes_bench::zones::{lu_zones, sample_mappings};
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};

fn main() {
    let args = ExpArgs::parse();
    // The paper samples ~100 representative mappings across the zones.
    let per_zone = args.reps(20, 34);
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    let setup = prepare_lu(&tb, &zones);

    println!(
        "Figure 6 — LU on 8 Orange Grove nodes: measured execution time ranges\n\
         ({} representative mappings per zone, workload {})",
        per_zone, setup.workload.name
    );

    let mut t = Table::new(&[
        "architecture mix",
        "min (s)",
        "mean (s)",
        "max (s)",
        "range %",
    ]);
    let mut all_times: Vec<f64> = Vec::new();
    let mut zone_json = Vec::new();
    for zone in &zones {
        let mappings = sample_mappings(&zone.pool, 8, per_zone, args.seed + zone.id as u64);
        let times = measure_all(&tb, &setup.workload, &mappings, args.seed);
        let (lo, hi, mu) = (stats::min(&times), stats::max(&times), stats::mean(&times));
        t.row(vec![
            zone.name.to_string(),
            format!("{lo:.3}"),
            format!("{mu:.3}"),
            format!("{hi:.3}"),
            format!("{:.1}", (hi / lo - 1.0) * 100.0),
        ]);
        zone_json.push(serde_json::json!({
            "zone": zone.name, "min": lo, "mean": mu, "max": hi, "samples": times,
        }));
        all_times.extend(times);
    }
    t.print("LU execution time zones (paper figure 6)");

    let best = stats::min(&all_times);
    let worst = stats::max(&all_times);
    let avg = stats::mean(&all_times);
    println!(
        "overall: best {:.3} s, worst {:.3} s, average {:.3} s\n\
         max speedup vs a random scheduler over the full space: {:.1}% \
         (paper: 36.6%)\n\
         best vs overall-average speedup: {:.1}% (paper: ~30%)",
        best,
        worst,
        avg,
        stats::speedup_pct(worst, best),
        stats::speedup_pct(avg, best),
    );

    save_json(
        "fig6_lu_zones",
        &serde_json::json!({
            "zones": zone_json,
            "overall": {"best": best, "worst": worst, "mean": avg,
                         "max_speedup_vs_rs_pct": stats::speedup_pct(worst, best)},
        }),
    );
}
