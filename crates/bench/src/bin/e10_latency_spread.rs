//! E10 (§6 text): the cluster latency spreads CBES exploits, and the
//! fraction of the theoretically available speedup it captures.
//!
//! The paper reports inter-node latency differences up to ~13 % on
//! Centurion and ~54 % on Orange Grove; for the LU(2) case (80/20
//! comp:comm) CBES reduced communication time by 46.4 %, i.e. captured up
//! to ~85 % of the theoretically available speedup.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin e10_latency_spread [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::lu_exp::{prepare_lu, run_scheduler, Driver};
use cbes_bench::zones::lu_zones;
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_cluster::load::LoadState;
use cbes_mpisim::{simulate, SimConfig};

fn comm_time(
    tb: &Testbed,
    w: &cbes_workloads::Workload,
    m: &cbes_core::mapping::Mapping,
) -> (f64, f64) {
    let cfg = SimConfig::default().with_seed(0xE10);
    let r = simulate(
        &tb.cluster,
        &w.program,
        m.as_slice(),
        &LoadState::idle(tb.cluster.len()),
        &cfg,
    )
    .expect("run");
    let b: f64 = r.stats.iter().map(|s| s.b).sum();
    let busy: f64 = r.stats.iter().map(|s| s.x + s.o).sum();
    (b, b / (b + busy))
}

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(15, 50);

    // Part 1: latency spreads.
    let mut t = Table::new(&["cluster", "probe size (B)", "latency spread %"]);
    let mut spreads_json = Vec::new();
    for (name, cluster) in [
        ("centurion", cbes_cluster::presets::centurion()),
        ("orange-grove", cbes_cluster::presets::orange_grove()),
    ] {
        for probe in [256u64, 1024, 16 * 1024] {
            let s = cluster.latency_spread(probe) * 100.0;
            t.row(vec![name.into(), probe.to_string(), format!("{s:.1}")]);
            spreads_json.push(serde_json::json!({
                "cluster": name, "probe": probe, "spread_pct": s,
            }));
        }
    }
    t.print("Inter-node latency spreads (paper §6: ~13% Centurion, ~54% Orange Grove)");

    // Part 2: fraction of available speedup captured on the LU(2) case.
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    let setup = prepare_lu(&tb, &zones);
    let medium = &zones[1];
    let cs = run_scheduler(
        &tb,
        &setup.profile,
        &setup.workload,
        &medium.pool,
        Driver::Cs,
        runs,
        args.seed,
    );
    let ncs = run_scheduler(
        &tb,
        &setup.profile,
        &setup.workload,
        &medium.pool,
        Driver::Ncs,
        runs,
        args.seed + 500,
    );
    let best = cs
        .iter()
        .min_by(|a, b| a.measured.partial_cmp(&b.measured).unwrap())
        .expect("runs > 0");
    let worst = ncs
        .iter()
        .max_by(|a, b| a.measured.partial_cmp(&b.measured).unwrap())
        .expect("runs > 0");
    let (b_best, share_best) = comm_time(&tb, &setup.workload, &best.mapping);
    let (b_worst, _) = comm_time(&tb, &setup.workload, &worst.mapping);
    let comm_reduction = stats::speedup_pct(b_worst, b_best);
    // Theoretical availability: the latency spread among the nodes this
    // pool can actually use (mappings never leave the medium group).
    let mut lat_min = f64::INFINITY;
    let mut lat_max = 0.0f64;
    for &a in &medium.pool {
        for &b in &medium.pool {
            if a == b {
                continue;
            }
            let l = tb.cluster.no_load_latency(a, b, 1024);
            lat_min = lat_min.min(l);
            lat_max = lat_max.max(l);
        }
    }
    let available = (lat_max / lat_min - 1.0) * 100.0;
    println!(
        "\nLU(2) case — medium speed group:\n\
         comp:comm ratio of the best mapping: {:.0}/{:.0}\n\
         communication time: worst {:.3}s -> best {:.3}s  (reduction {:.1}%)\n\
         theoretically available reduction (max latency spread): {:.1}%\n\
         captured fraction: {:.0}%  (paper: 46.4% reduction, up to 85% captured)",
        (1.0 - share_best) * 100.0,
        share_best * 100.0,
        b_worst,
        b_best,
        comm_reduction,
        available,
        (comm_reduction / available * 100.0).min(100.0),
    );

    save_json(
        "e10_latency_spread",
        &serde_json::json!({
            "spreads": spreads_json,
            "lu2_comm_reduction_pct": comm_reduction,
            "available_pct": available,
            "captured_fraction_pct": (comm_reduction / available * 100.0).min(100.0),
        }),
    );
}
