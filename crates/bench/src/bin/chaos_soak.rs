//! Chaos soak: retrying clients hammering a small-queue CBES daemon while
//! the standard fault schedule plays out against its monitoring feed.
//!
//! The daemon runs the Centurion preset with a deliberately tiny admission
//! queue, so bursts of concurrent `Compare` requests get load-shed with a
//! `retry_after_ms` hint; every soak client is a [`RetryingClient`] and
//! must ride the sheds out. Meanwhile an injector thread replays
//! [`FaultSchedule::standard`] in real time as partial monitoring sweeps:
//! crashed and dropped-out nodes go silent, age to `Suspect`/`Down` on the
//! server, and recover when the schedule says so.
//!
//! Acceptance: every request eventually succeeds (zero give-ups, zero
//! terminal errors), the daemon observes health transitions, and the run
//! drains cleanly. Artifacts: `results/chaos_soak.json` and the headline
//! `BENCH_chaos_soak.json` at the repo root with requests served, shed
//! rate, and p99 latency.
//!
//! ```text
//! cargo run --release --bin chaos_soak [--full] [--runs REQS_PER_CLIENT] [--seed S]
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cbes_bench::args::ExpArgs;
use cbes_bench::save_json;
use cbes_cluster::load::LoadState;
use cbes_cluster::{presets, NodeId};
use cbes_core::health::HealthPolicy;
use cbes_core::mapping::Mapping;
use cbes_core::monitor::ForecastKind;
use cbes_core::CbesService;
use cbes_faults::FaultSchedule;
use cbes_runtime::Perturbation;
use cbes_server::{Client, RetryPolicy, RetryingClient, Server, ServerConfig};
use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};

const WORKERS: usize = 4;
const CLIENTS: usize = 8;
/// Tiny on purpose: bursts from 8 clients must overflow it and get shed.
const QUEUE: usize = 2;
/// Real-time seconds per schedule second: the standard schedule's crash at
/// t=0.5 lands 0.125 s into the soak.
const TIME_SCALE: f64 = 0.25;
const SWEEP_PERIOD: Duration = Duration::from_millis(5);

fn ring_profile(procs: usize) -> AppProfile {
    let mk = |rank: usize| ProcessProfile {
        rank,
        x: 5.0,
        o: 0.2,
        b: 0.5,
        sends: vec![MessageGroup {
            peer: (rank + 1) % procs,
            bytes: 8192,
            count: 50,
        }],
        recvs: vec![MessageGroup {
            peer: (rank + procs - 1) % procs,
            bytes: 8192,
            count: 50,
        }],
        profile_speed: 1.0,
        lambda: 1.0,
    };
    AppProfile {
        name: "ring".to_string(),
        procs: (0..procs).map(mk).collect(),
        arch_ratios: BTreeMap::new(),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = ExpArgs::parse();
    let per_client = args.runs.unwrap_or(if args.full { 4_000 } else { 1_000 });
    let total = per_client * CLIENTS;

    let cluster = Arc::new(presets::centurion());
    let n_nodes = cluster.len();
    let service = Arc::new(
        CbesService::self_calibrated(cluster, ForecastKind::Adaptive(8)).with_health_policy(
            HealthPolicy {
                suspect_after: 3,
                down_after: 8,
                ..HealthPolicy::default()
            },
        ),
    );
    service.registry().insert(ring_profile(8));
    let handle = Server::start(
        service,
        ServerConfig {
            workers: WORKERS,
            queue_capacity: QUEUE,
            shed_retry_after: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // The standard chaos scenario: node 0 crashes at schedule t=0.5 and
    // stays down, node 1's monitor drops out over [1, 3), and a latency
    // spike passes through early. Replayed at TIME_SCALE real seconds per
    // schedule second.
    let faults = FaultSchedule::standard(n_nodes, 0);
    println!(
        "chaos_soak: centurion daemon on {addr}, {WORKERS} workers, queue {QUEUE}, \
         {CLIENTS} retrying clients x {per_client} Compare requests, \
         {} faults scheduled",
        faults.events().len()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let injector = {
        let stop = Arc::clone(&stop);
        let faults = faults.clone();
        std::thread::spawn(move || {
            let mut feed = Client::connect(addr).expect("injector connect");
            let t0 = Instant::now();
            let mut sweeps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let t = t0.elapsed().as_secs_f64() / TIME_SCALE;
                let d = faults.sample(t, n_nodes);
                let mut load = LoadState::idle(n_nodes);
                d.apply_to(&mut load);
                let silent: Vec<u32> = d
                    .reported_mask()
                    .iter()
                    .enumerate()
                    .filter(|(_, &reported)| !reported)
                    .map(|(i, _)| i as u32)
                    .collect();
                // The injector is a plain (non-retrying) client: observe
                // sweeps are not idempotent. A shed sweep is just skipped
                // — the next one lands 5 ms later.
                match feed.observe_partial(&load, &silent) {
                    Ok(_) => sweeps += 1,
                    Err(e) if e.is_shed() => {}
                    Err(e) => panic!("injector sweep failed terminally: {e}"),
                }
                std::thread::sleep(SWEEP_PERIOD);
            }
            sweeps
        })
    };

    // Soak candidates steer clear of the scheduled victims (nodes 0 and
    // 1): a client that keeps proposing a crashed node gets the typed
    // degraded-mode rejection, which the probe below asserts explicitly.
    let candidates = vec![
        Mapping::new((2..10).map(NodeId).collect()),
        Mapping::new((60..68).map(NodeId).collect()),
        Mapping::new((0..8).map(|i| NodeId(i * 16 + 2)).collect()),
    ];
    let victim_mapping = vec![Mapping::new((0..8).map(NodeId).collect())];
    let seed = args.seed;

    let start = Instant::now();
    let per_client_results: Vec<(Vec<Duration>, usize)> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let candidates = &candidates;
                s.spawn(move || {
                    let mut client = RetryingClient::new(
                        addr.to_string(),
                        Duration::from_secs(10),
                        RetryPolicy {
                            max_attempts: 50,
                            base_delay: Duration::from_millis(1),
                            max_delay: Duration::from_millis(20),
                            seed: seed.wrapping_add(c as u64),
                        },
                    );
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut errors = 0usize;
                    for _ in 0..per_client {
                        let t0 = Instant::now();
                        match client.compare("ring", candidates) {
                            Ok((_, preds)) => assert_eq!(preds.len(), 3),
                            Err(e) => {
                                errors += 1;
                                eprintln!("request failed after retries: {e}");
                            }
                        }
                        latencies.push(t0.elapsed());
                    }
                    (latencies, errors)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    let sweeps = injector.join().expect("injector thread");

    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let mut errors = 0usize;
    for (lat, err) in per_client_results {
        latencies.extend(lat);
        errors += err;
    }
    latencies.sort_unstable();
    let req_per_s = total as f64 / elapsed.as_secs_f64();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let max = *latencies.last().expect("at least one request");

    // Pull the daemon's own view before draining, and probe degraded
    // mode: by now the scheduled crash has aged node 0 to `Down`, so a
    // mapping proposing it must draw the typed rejection, not a number.
    let mut control = Client::connect(addr).expect("connect control");
    let down_rejected = match control.compare("ring", &victim_mapping) {
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("down node"),
                "victim compare failed for the wrong reason: {msg}"
            );
            true
        }
        Ok(_) => false,
    };
    let stats = control.stats().expect("stats");
    let snap = control.metrics().expect("metrics");
    let retries = snap.counters.get("client.retries").copied().unwrap_or(0);
    let giveups = snap
        .counters
        .get("client.retry_giveups")
        .copied()
        .unwrap_or(0);
    control.shutdown().expect("shutdown ack");
    let (served, served_errors) = handle.join();

    // Shed rate over everything that reached admission.
    let admitted_or_shed = stats.served + stats.overloaded;
    let shed_rate = stats.overloaded as f64 / admitted_or_shed.max(1) as f64;

    println!("\n  elapsed            {:>10.3} s", elapsed.as_secs_f64());
    println!("  throughput         {req_per_s:>10.0} req/s (successful Compare)");
    println!("  latency p50        {:>10.1} us", p50.as_secs_f64() * 1e6);
    println!("  latency p99        {:>10.1} us", p99.as_secs_f64() * 1e6);
    println!("  latency max        {:>10.1} us", max.as_secs_f64() * 1e6);
    println!(
        "  sheds              {:>10} ({:.1}% of admissions)",
        stats.overloaded,
        shed_rate * 100.0
    );
    println!("  client retries     {retries:>10}");
    println!("  retry give-ups     {giveups:>10}");
    println!("  injector sweeps    {sweeps:>10}");
    println!(
        "  node health        {:>10} ({} healthy / {} suspect / {} down)",
        "", stats.healthy, stats.suspect, stats.down
    );
    println!("  health transitions {:>10}", stats.health_transitions);
    println!(
        "  down-node probe    {:>10}",
        if down_rejected {
            "rejected"
        } else {
            "ACCEPTED"
        }
    );
    println!("  terminal errors    {errors:>10}");
    println!(
        "  server             {} served, {} errors, drained cleanly",
        served, served_errors
    );

    // With the schedule's permanent crash active and >8 sweeps injected,
    // the daemon must have classified node 0 Down (and seen the dropout
    // come and go), so transitions must be non-zero and something must be
    // non-healthy at drain time.
    let ok = errors == 0
        && giveups == 0
        && stats.overloaded > 0
        && retries > 0
        && stats.health_transitions >= 2
        && stats.down >= 1
        && down_rejected
        && sweeps > 20;

    save_json(
        "chaos_soak",
        &serde_json::json!({
            "cluster": "centurion",
            "workers": WORKERS,
            "queue_capacity": QUEUE,
            "clients": CLIENTS,
            "requests": total,
            "elapsed_s": elapsed.as_secs_f64(),
            "req_per_s": req_per_s,
            "latency_us": {
                "p50": p50.as_secs_f64() * 1e6,
                "p99": p99.as_secs_f64() * 1e6,
                "max": max.as_secs_f64() * 1e6,
            },
            "sheds": stats.overloaded,
            "shed_rate": shed_rate,
            "client_retries": retries,
            "retry_giveups": giveups,
            "terminal_errors": errors,
            "injector_sweeps": sweeps,
            "health": {
                "healthy": stats.healthy,
                "suspect": stats.suspect,
                "down": stats.down,
                "transitions": stats.health_transitions,
            },
            "down_node_probe_rejected": down_rejected,
            "served": served,
            "server_errors": served_errors,
            "pass": ok,
        }),
    );
    let bench = serde_json::json!({
        "bench": "chaos_soak",
        "requests": total,
        "req_per_s": req_per_s,
        "shed_rate": shed_rate,
        "latency_us": {
            "p50": p50.as_secs_f64() * 1e6,
            "p99": p99.as_secs_f64() * 1e6,
        },
        "health_transitions": stats.health_transitions,
        "retry_giveups": giveups,
    });
    match serde_json::to_string_pretty(&bench) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_chaos_soak.json", s) {
                eprintln!("warning: cannot write BENCH_chaos_soak.json: {e}");
            } else {
                println!("[artifact] BENCH_chaos_soak.json");
            }
        }
        Err(e) => eprintln!("warning: cannot serialise bench summary: {e}"),
    }

    if !ok {
        eprintln!(
            "FAIL: soak must shed under load, retry through it with zero give-ups, \
             and observe the scheduled faults"
        );
        std::process::exit(1);
    }
    println!(
        "\nPASS: {total} requests all served through {} sheds and {} retries, \
         faults observed ({} transitions)",
        stats.overloaded, retries, stats.health_transitions
    );
}
