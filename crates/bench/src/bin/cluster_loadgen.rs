//! Crash-tolerant scale-out bench for the routing tier (DESIGN.md §11).
//!
//! Two phases at the same per-instance admission cap (`--max-rps`), so
//! the throughput ratio measures the architecture, not host scheduler
//! noise:
//!
//! 1. **Baseline** — one rate-capped daemon, clients hammering it with
//!    `Compare` requests through the routing client.
//! 2. **Tier** — three rate-capped daemons behind the consistent-hash
//!    router, heartbeat membership, and leader-push replication; at 75%
//!    of the phase the current replication leader is killed.
//!
//! Pass criteria: tier/baseline throughput ≥ 2.5×, zero router
//! give-ups and zero failed requests (failover rides through the
//! crash), replication staleness ≤ 2 epochs throughout, and the
//! crashed instance observed `Down`. Artifacts:
//! `results/cluster_loadgen.json` and `BENCH_cluster_loadgen.json`.
//!
//! ```text
//! cargo run --release --bin cluster_loadgen [--full]
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cbes_bench::args::ExpArgs;
use cbes_bench::save_json;
use cbes_cluster::load::LoadState;
use cbes_cluster::{presets, NodeId};
use cbes_core::health::HealthPolicy;
use cbes_core::mapping::Mapping;
use cbes_core::monitor::ForecastKind;
use cbes_core::CbesService;
use cbes_obs::{names, Registry};
use cbes_router::tier::{observe_tier, spawn_heartbeat};
use cbes_router::{Membership, MembershipConfig, RoutingClient};
use cbes_server::{RetryPolicy, Server, ServerConfig, ServerHandle};
use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};

/// Per-instance admission cap (Compare/BestOf/Schedule only); both
/// phases run at the same cap, so capacity scales with instance count.
const CAP_RPS: f64 = 300.0;
const CLIENTS: usize = 6;
const APPS: usize = 24;
const TIER_INSTANCES: usize = 3;

/// A cheap 2-rank exchange; evaluation cost is negligible next to the
/// wire round-trip, so the admission cap is the only throttle.
fn pair_profile(name: &str) -> AppProfile {
    let mk = |rank: usize| ProcessProfile {
        rank,
        x: 5.0,
        o: 0.2,
        b: 0.5,
        sends: vec![MessageGroup {
            peer: 1 - rank,
            bytes: 8192,
            count: 50,
        }],
        recvs: vec![MessageGroup {
            peer: 1 - rank,
            bytes: 8192,
            count: 50,
        }],
        profile_speed: 1.0,
        lambda: 1.0,
    };
    AppProfile {
        name: name.to_string(),
        procs: (0..2).map(mk).collect(),
        arch_ratios: BTreeMap::new(),
    }
}

fn start_instance() -> ServerHandle {
    let service = Arc::new(CbesService::self_calibrated(
        Arc::new(presets::two_switch_demo()),
        ForecastKind::LastValue,
    ));
    Server::start(
        service,
        ServerConfig {
            workers: 2,
            max_rps: CAP_RPS,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn membership_over(addrs: Vec<String>) -> Arc<Membership> {
    Membership::new(
        addrs,
        MembershipConfig {
            cluster: "demo".to_string(),
            heartbeat: Duration::from_millis(50),
            probe_timeout: Duration::from_millis(250),
            policy: HealthPolicy {
                suspect_after: 1,
                down_after: 3,
                suspect_cost_factor: 1.0,
            },
            replicas: 1,
        },
    )
}

fn routing_client(membership: Arc<Membership>, seed: u64) -> RoutingClient {
    // Small per-instance budget: sheds pace the client via
    // retry_after_ms, dead instances hand over to replicas quickly; the
    // outer cycle budget carries requests across the failover window.
    RoutingClient::new(
        membership,
        Duration::from_secs(2),
        RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            seed,
        },
    )
    .with_limits(60, Duration::from_millis(3))
}

/// Hammer the tier with `Compare` for `duration`; returns
/// `(completed, failed)` across all clients.
fn drive(membership: &Arc<Membership>, duration: Duration, seed: u64) -> (u64, u64) {
    let candidates = vec![
        Mapping::new(vec![NodeId(0), NodeId(1)]),
        Mapping::new(vec![NodeId(4), NodeId(5)]),
    ];
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let membership = membership.clone();
            let candidates = &candidates;
            let (ok, failed) = (&ok, &failed);
            s.spawn(move || {
                let mut client = routing_client(membership, seed.wrapping_add(c as u64));
                let apps: Vec<String> = (0..APPS)
                    .filter(|a| a % CLIENTS == c)
                    .map(|a| format!("pair.{a:02}"))
                    .collect();
                let deadline = Instant::now() + duration;
                let mut i = 0usize;
                while Instant::now() < deadline {
                    let app = &apps[i % apps.len()];
                    i += 1;
                    match client.compare(app, candidates) {
                        Ok((_, preds)) => {
                            assert_eq!(preds.len(), 2);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            eprintln!("client {c}: request lost: {e}");
                        }
                    }
                }
            });
        }
    });
    (ok.load(Ordering::Relaxed), failed.load(Ordering::Relaxed))
}

fn register_apps(membership: &Arc<Membership>) {
    let mut client = routing_client(membership.clone(), 0x0a11);
    for a in 0..APPS {
        let registered = client
            .register_profile(&pair_profile(&format!("pair.{a:02}")))
            .expect("registration reaches the tier");
        assert_eq!(registered, membership.len(), "profile on every instance");
    }
}

fn main() {
    let args = ExpArgs::parse();
    let scale = if args.full { 2 } else { 1 };
    let base_dur = Duration::from_secs(3 * scale);
    let tier_dur = Duration::from_secs(6 * scale);
    let crash_at = tier_dur.mul_f64(0.75);

    println!(
        "cluster_loadgen: {CLIENTS} clients x {APPS} apps, {CAP_RPS:.0} req/s \
         admission cap per instance"
    );

    // Both phases start with full token buckets; an untimed warmup
    // drains the burst allowance so the timed windows measure the
    // sustained cap, not the initial burst (which favours the shorter
    // baseline phase).
    let warmup = Duration::from_millis(750);

    // ---- Phase 1: one rate-capped daemon ------------------------------
    let single = start_instance();
    let base_membership = membership_over(vec![single.addr().to_string()]);
    register_apps(&base_membership);
    let (_, warm_failed_base) = drive(&base_membership, warmup, args.seed.wrapping_add(7));
    let started = Instant::now();
    let (base_ok, base_failed) = drive(&base_membership, base_dur, args.seed);
    let base_elapsed = started.elapsed();
    let base_rps = base_ok as f64 / base_elapsed.as_secs_f64();
    single.shutdown_and_join();
    println!(
        "  baseline  {base_ok} ok / {base_failed} failed in {:.2}s -> {base_rps:.0} req/s",
        base_elapsed.as_secs_f64()
    );

    // ---- Phase 2: 3-instance tier, leader killed at 75% ---------------
    let mut handles: Vec<Option<ServerHandle>> = (0..TIER_INSTANCES)
        .map(|_| Some(start_instance()))
        .collect();
    let seeds: Vec<String> = handles
        .iter()
        .map(|h| h.as_ref().expect("just started").addr().to_string())
        .collect();
    let membership = membership_over(seeds);
    register_apps(&membership);
    let (_, warm_failed_tier) = drive(&membership, warmup, args.seed.wrapping_add(17));

    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = spawn_heartbeat(membership.clone(), stop.clone());

    // Observer: publish monitoring sweeps through the leader while the
    // load runs, tracking the worst replication staleness in epochs.
    let observer = {
        let membership = membership.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let load = LoadState::idle(8);
            let mut published = 0u64;
            let mut max_lag = 0u64;
            while !stop.load(Ordering::Acquire) {
                // A sweep may race the leader crash; the next one fails
                // over to the new leader and continues the epoch line.
                if observe_tier(&membership, &load, &[]).is_ok() {
                    published += 1;
                }
                max_lag = max_lag.max(membership.replication_lag());
                std::thread::sleep(Duration::from_millis(150));
            }
            (published, max_lag)
        })
    };

    let started = Instant::now();
    let crashed = {
        let membership = membership.clone();
        let handles_ref = &mut handles;
        std::thread::scope(|s| {
            let driver = {
                let membership = membership.clone();
                s.spawn(move || drive(&membership, tier_dur, args.seed.wrapping_add(100)))
            };
            std::thread::sleep(crash_at);
            let victim = membership.leader().expect("a live tier has a leader");
            let handle = handles_ref[victim].take().expect("leader not yet crashed");
            println!(
                "  crashing leader instance {victim} at t={:.2}s",
                started.elapsed().as_secs_f64()
            );
            handle.shutdown_and_join();
            let (ok, failed) = driver.join().expect("driver clients");
            (victim, ok, failed)
        })
    };
    let tier_elapsed = started.elapsed();
    let (victim, tier_ok, tier_failed) = crashed;
    let tier_rps = tier_ok as f64 / tier_elapsed.as_secs_f64();

    // Give the heartbeat time to finish marking the victim Down, then
    // stop the background threads.
    let down_deadline = Instant::now() + Duration::from_secs(5);
    while membership.counts().2 < 1 && Instant::now() < down_deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    stop.store(true, Ordering::Release);
    let _ = heartbeat.join();
    let (published, max_lag) = observer.join().expect("observer thread");

    let report = membership.report();
    let giveups = Registry::global().counter(names::ROUTER_GIVEUPS).get();
    let ratio = tier_rps / base_rps.max(1.0);
    let failed_over: u64 = report.instances.iter().map(|i| i.failed_over).sum();

    for h in handles.iter_mut().filter_map(Option::take) {
        h.shutdown_and_join();
    }

    println!(
        "  tier      {tier_ok} ok / {tier_failed} failed in {:.2}s -> {tier_rps:.0} req/s",
        tier_elapsed.as_secs_f64()
    );
    println!("  speedup          {ratio:>8.2}x (target >= 2.5x)");
    println!("  router give-ups  {giveups:>8}");
    println!("  failed-over      {failed_over:>8} requests");
    println!("  sweeps published {published:>8}");
    println!("  max staleness    {max_lag:>8} epochs (bound <= 2)");
    println!(
        "  victim {victim}: health `{}`, {} transitions, leader now {:?}",
        report.instances[victim].health, report.transitions, report.leader
    );

    let victim_down = report.instances[victim].health == "down";
    let ok = ratio >= 2.5
        && base_failed == 0
        && tier_failed == 0
        && warm_failed_base == 0
        && warm_failed_tier == 0
        && giveups == 0
        && max_lag <= 2
        && published > 0
        && victim_down
        && report.leader != Some(victim);

    save_json(
        "cluster_loadgen",
        &serde_json::json!({
            "cluster": "two_switch_demo",
            "cap_rps_per_instance": CAP_RPS,
            "clients": CLIENTS,
            "apps": APPS,
            "baseline": {
                "instances": 1,
                "completed": base_ok,
                "failed": base_failed,
                "elapsed_s": base_elapsed.as_secs_f64(),
                "req_per_s": base_rps,
            },
            "tier": {
                "instances": TIER_INSTANCES,
                "completed": tier_ok,
                "failed": tier_failed,
                "elapsed_s": tier_elapsed.as_secs_f64(),
                "req_per_s": tier_rps,
                "crash_at_s": crash_at.as_secs_f64(),
                "crashed_instance": victim,
                "victim_health": report.instances[victim].health,
                "leader_after_crash": report.leader,
                "failed_over_requests": failed_over,
                "health_transitions": report.transitions,
                "heartbeats": report.heartbeats,
            },
            "replication": {
                "sweeps_published": published,
                "max_staleness_epochs": max_lag,
                "staleness_bound_epochs": 2,
                "final_max_epoch": report.max_epoch,
            },
            "router_giveups": giveups,
            "speedup": ratio,
            "target_speedup": 2.5,
            "pass": ok,
        }),
    );
    let bench = serde_json::json!({
        "bench": "cluster_loadgen",
        "speedup": ratio,
        "tier_req_per_s": tier_rps,
        "baseline_req_per_s": base_rps,
        "router_giveups": giveups,
        "max_staleness_epochs": max_lag,
    });
    match serde_json::to_string_pretty(&bench) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_cluster_loadgen.json", s) {
                eprintln!("warning: cannot write BENCH_cluster_loadgen.json: {e}");
            } else {
                println!("[artifact] BENCH_cluster_loadgen.json");
            }
        }
        Err(e) => eprintln!("warning: cannot serialise bench summary: {e}"),
    }

    if !ok {
        eprintln!(
            "FAIL: need >=2.5x at equal caps, zero lost requests, zero give-ups, \
             staleness <= 2 epochs, and the crashed leader marked down"
        );
        std::process::exit(1);
    }
    println!(
        "\nPASS: {ratio:.2}x over one instance with a mid-run leader crash, \
         zero lost requests, staleness <= {max_lag} epochs"
    );
}
