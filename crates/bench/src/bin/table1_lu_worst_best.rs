//! Table 1: LU worst-case vs. best-case scenario per node group.
//!
//! For each zone the NCS baseline cannot distinguish mappings (all nodes in
//! a zone are compute-equivalent), so the worst time over its selections
//! approaches the zone's worst mapping; CS consistently selects the
//! fastest. The speedup column is `(worst − best) / worst`.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin table1_lu_worst_best [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::lu_exp::{mean_sched_secs, prepare_lu, run_scheduler, Driver};
use cbes_bench::zones::lu_zones;
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(15, 50);
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    let setup = prepare_lu(&tb, &zones);

    println!(
        "Table 1 — LU worst vs best case ({} scheduler runs per zone, {})",
        runs, setup.workload.name
    );

    let mut t = Table::new(&[
        "test case",
        "worst (meas, s)",
        "best (meas, s)",
        "speedup %",
        "sched time (s)",
        "comments",
    ]);
    let mut rows_json = Vec::new();
    let mut global_best = f64::INFINITY;
    let mut global_worst: f64 = 0.0;
    for zone in &zones {
        let ncs = run_scheduler(
            &tb,
            &setup.profile,
            &setup.workload,
            &zone.pool,
            Driver::Ncs,
            runs,
            args.seed,
        );
        let cs = run_scheduler(
            &tb,
            &setup.profile,
            &setup.workload,
            &zone.pool,
            Driver::Cs,
            runs,
            args.seed + 1000,
        );
        let worst = stats::max(&ncs.iter().map(|o| o.measured).collect::<Vec<_>>());
        let best = stats::min(&cs.iter().map(|o| o.measured).collect::<Vec<_>>());
        global_best = global_best.min(best);
        global_worst = global_worst.max(worst);
        let sp = stats::speedup_pct(worst, best);
        t.row(vec![
            format!("LU ({})", zone.id),
            format!("{worst:.3}"),
            format!("{best:.3}"),
            format!("{sp:.1}"),
            format!("{:.4}", mean_sched_secs(&cs)),
            zone.name.to_string(),
        ]);
        rows_json.push(serde_json::json!({
            "case": format!("LU ({})", zone.id), "worst": worst, "best": best,
            "speedup_pct": sp, "sched_time_s": mean_sched_secs(&cs),
        }));
    }
    t.print("LU: worst vs best case scenario (paper table 1)");
    println!(
        "max potential speedup vs RS over all zones: {:.1}% (paper: 36.6%)\n\
         paper's per-zone speedups for reference: 5.3 / 9.3 / 6.0 %",
        stats::speedup_pct(global_worst, global_best)
    );

    save_json(
        "table1_lu_worst_best",
        &serde_json::json!({
            "rows": rows_json,
            "vs_rs_speedup_pct": stats::speedup_pct(global_worst, global_best),
        }),
    );
}
