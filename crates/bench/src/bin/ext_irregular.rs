//! Extension experiment (paper §8 future work): CBES on applications with
//! *irregular* computation and communication patterns.
//!
//! Tests two things on the `irregular` workload generator: (a) does the
//! prediction formulation still track measured times, and (b) does CS still
//! beat random placement when per-rank work is imbalanced and the sparse
//! communication graph shifts every iteration?
//!
//! ```text
//! cargo run --release -p cbes-bench --bin ext_irregular [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::lu_exp::{run_scheduler, Driver};
use cbes_bench::zones::lu_zones;
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_cluster::load::LoadState;
use cbes_workloads::asci::irregular;

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(10, 30);
    let tb = Testbed::orange_grove(args.seed);
    let zones = lu_zones(&tb.cluster);
    let idle = LoadState::idle(tb.cluster.len());

    println!(
        "Extension — irregular applications ({} scheduler runs per seed)",
        runs
    );

    let mut t = Table::new(&[
        "instance",
        "pred err %",
        "CS best (s)",
        "RS mean (s)",
        "CS vs RS %",
    ]);
    let mut rows_json = Vec::new();
    for wseed in [1u64, 2, 3] {
        let w = irregular(8, wseed);
        // (a) prediction fidelity on a fresh mapping.
        let profile = tb.profile(&w, &zones[0].pool, args.seed + wseed);
        let test_map = cbes_core::mapping::Mapping::new(zones[1].pool[..8].to_vec());
        let predicted = tb.predict(&profile, &test_map);
        let measured: Vec<f64> = (0..3u64)
            .map(|i| tb.measure(&w, &test_map, &idle, args.seed + 50 + i))
            .collect();
        let err = stats::pct_error(predicted, stats::mean(&measured)).abs();

        // (b) CS vs RS over the mixed medium pool.
        let cs = run_scheduler(
            &tb,
            &profile,
            &w,
            &zones[1].pool,
            Driver::Cs,
            runs,
            args.seed + 100,
        );
        let rs = run_scheduler(
            &tb,
            &profile,
            &w,
            &zones[1].pool,
            Driver::Rs,
            runs,
            args.seed + 200,
        );
        let cs_best = stats::min(&cs.iter().map(|o| o.measured).collect::<Vec<_>>());
        let rs_mean = stats::mean(&rs.iter().map(|o| o.measured).collect::<Vec<_>>());
        let gain = stats::speedup_pct(rs_mean, cs_best);
        t.row(vec![
            w.name.clone(),
            format!("{err:.2}"),
            format!("{cs_best:.3}"),
            format!("{rs_mean:.3}"),
            format!("{gain:.1}"),
        ]);
        rows_json.push(serde_json::json!({
            "instance": w.name, "pred_err_pct": err,
            "cs_best": cs_best, "rs_mean": rs_mean, "cs_vs_rs_pct": gain,
        }));
    }
    t.print("Irregular applications: prediction fidelity and scheduling gain");
    println!(
        "the profile's per-process X/O/B and λ capture persistent imbalance, \
         so eq. 4-8 still\npredicts well; shifting sparse patterns dilute the \
         topology term, so gains come mostly\nfrom placing the heavy ranks on \
         fast nodes — exactly what the paper's future-work\nsection \
         anticipated investigating."
    );
    save_json("ext_irregular", &serde_json::json!({ "rows": rows_json }));
}
