//! Table 4: average-case scenario for the schedulable table-3 programs —
//! HPL(5000), HPL(10000), smg2000 (three sizes) and Aztec. 100 CS and 100
//! NCS runs per case (scaled down by default); hit rates and expected /
//! measured / maximum speedups.
//!
//! ```text
//! cargo run --release -p cbes-bench --bin table4_other_average [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::lu_exp::{hit_rate, run_scheduler, Driver};
use cbes_bench::zones::homogeneous_pool;
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_workloads::{asci, hpl, Workload};

fn cases() -> Vec<Workload> {
    vec![
        hpl::hpl(8, 5_000),
        hpl::hpl(8, 10_000),
        asci::smg2000(8, 12),
        asci::smg2000(8, 50),
        asci::smg2000(8, 60),
        asci::aztec(8),
    ]
}

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(25, 100);
    let tb = Testbed::orange_grove(args.seed);
    let pool = homogeneous_pool(&tb.cluster);

    println!(
        "Table 4 — other programs, average case on the homogeneous SPARC \
         pool ({} CS + {} NCS runs per case)",
        runs, runs
    );

    let mut t = Table::new(&[
        "test case",
        "NCS pred (s)",
        "NCS hits %",
        "NCS meas (s)",
        "CS pred (s)",
        "CS hits %",
        "CS meas (s)",
        "exp sp %",
        "meas sp %",
        "max sp %",
    ]);
    let mut rows_json = Vec::new();
    for w in cases() {
        let profile = tb.profile(&w, &pool[..w.num_ranks()], args.seed + 7);
        let ncs = run_scheduler(&tb, &profile, &w, &pool, Driver::Ncs, runs, args.seed);
        let cs = run_scheduler(&tb, &profile, &w, &pool, Driver::Cs, runs, args.seed + 500);
        let ncs_pred: Vec<f64> = ncs.iter().map(|o| o.predicted).collect();
        let ncs_meas: Vec<f64> = ncs.iter().map(|o| o.measured).collect();
        let cs_pred: Vec<f64> = cs.iter().map(|o| o.predicted).collect();
        let cs_meas: Vec<f64> = cs.iter().map(|o| o.measured).collect();
        let best_pred = stats::min(&cs_pred).min(stats::min(&ncs_pred));
        let best = stats::min(&cs_meas).min(stats::min(&ncs_meas));
        let worst = stats::max(&ncs_meas).max(stats::max(&cs_meas));
        let expected = stats::speedup_pct(stats::mean(&ncs_pred), stats::mean(&cs_pred));
        let measured = stats::speedup_pct(stats::mean(&ncs_meas), stats::mean(&cs_meas));
        let max_sp = stats::speedup_pct(worst, best);
        t.row(vec![
            w.name.clone(),
            format!("{:.3}", stats::mean(&ncs_pred)),
            format!("{:.0}", hit_rate(&ncs, best_pred, 0.005)),
            format!("{:.3}", stats::mean(&ncs_meas)),
            format!("{:.3}", stats::mean(&cs_pred)),
            format!("{:.0}", hit_rate(&cs, best_pred, 0.005)),
            format!("{:.3}", stats::mean(&cs_meas)),
            format!("{expected:.1}"),
            format!("{measured:.1}"),
            format!("{max_sp:.1}"),
        ]);
        rows_json.push(serde_json::json!({
            "case": w.name,
            "ncs": {"pred": stats::mean(&ncs_pred), "meas": stats::mean(&ncs_meas),
                     "hits_pct": hit_rate(&ncs, best_pred, 0.005)},
            "cs": {"pred": stats::mean(&cs_pred), "meas": stats::mean(&cs_meas),
                    "hits_pct": hit_rate(&cs, best_pred, 0.005)},
            "expected_speedup_pct": expected,
            "measured_speedup_pct": measured,
            "max_speedup_pct": max_sp,
        }));
    }
    t.print("Other tests: average case scenario (paper table 4)");
    println!("paper reference: average speedups 5.2–10.3%, CS hit rates 85–98%");

    save_json(
        "table4_other_average",
        &serde_json::json!({ "rows": rows_json }),
    );
}
