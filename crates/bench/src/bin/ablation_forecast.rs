//! Ablation: monitoring forecasters under drifting and spiky background
//! load — last-value (the Orange Grove prototype) vs windowed mean/median
//! vs the NWS-style adaptive ensemble (the Centurion prototype).
//!
//! ```text
//! cargo run --release -p cbes-bench --bin ablation_forecast [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_cluster::load::{LoadPattern, LoadTimeline};
use cbes_cluster::NodeId;
use cbes_core::monitor::{ForecastKind, Monitor};

/// Mean absolute forecast error of one monitor kind over a load timeline
/// sampled every `dt` seconds for `steps` steps (forecast at step k is
/// compared against the measurement at step k+1).
fn run_monitor(kind: ForecastKind, timeline: &LoadTimeline, steps: usize, dt: f64) -> f64 {
    let mut monitor = Monitor::new(1, kind);
    let mut errors = Vec::with_capacity(steps);
    for k in 0..steps {
        let now = timeline.sample(k as f64 * dt);
        monitor.observe(&now);
        let next = timeline.sample((k + 1) as f64 * dt);
        let err = (monitor.forecast().cpu_avail(NodeId(0)) - next.cpu_avail(NodeId(0))).abs();
        errors.push(err);
    }
    stats::mean(&errors)
}

fn main() {
    let args = ExpArgs::parse();
    let steps = args.reps(200, 1000);
    let dt = 1.0;

    let scenarios: Vec<(&str, LoadTimeline)> = vec![
        (
            "constant 0.7",
            LoadTimeline::idle(1).with(NodeId(0), LoadPattern::Constant(0.7)),
        ),
        (
            "step 1.0 -> 0.5",
            LoadTimeline::idle(1).with(
                NodeId(0),
                LoadPattern::Step {
                    at: steps as f64 * dt / 2.0,
                    before: 1.0,
                    after: 0.5,
                },
            ),
        ),
        (
            "slow drift 1.0 -> 0.4",
            LoadTimeline::idle(1).with(
                NodeId(0),
                LoadPattern::Drift {
                    from: 1.0,
                    to: 0.4,
                    duration: steps as f64 * dt,
                },
            ),
        ),
        (
            "short spikes",
            LoadTimeline::idle(1).with(
                NodeId(0),
                LoadPattern::Spikes {
                    base: 0.9,
                    depth: 0.2,
                    period: 17.0,
                    width: 1.0,
                },
            ),
        ),
    ];
    let kinds: Vec<(&str, ForecastKind)> = vec![
        ("last-value", ForecastKind::LastValue),
        ("mean(8)", ForecastKind::Mean(8)),
        ("median(8)", ForecastKind::Median(8)),
        ("adaptive(8)", ForecastKind::Adaptive(8)),
    ];

    println!(
        "Ablation — monitoring forecasters ({} steps per scenario): mean \
         absolute CPU-availability forecast error",
        steps
    );

    let mut t = Table::new(&[
        "scenario",
        "last-value",
        "mean(8)",
        "median(8)",
        "adaptive(8)",
    ]);
    let mut rows_json = Vec::new();
    for (sname, timeline) in &scenarios {
        let errs: Vec<f64> = kinds
            .iter()
            .map(|(_, k)| run_monitor(*k, timeline, steps, dt))
            .collect();
        t.row(vec![
            sname.to_string(),
            format!("{:.4}", errs[0]),
            format!("{:.4}", errs[1]),
            format!("{:.4}", errs[2]),
            format!("{:.4}", errs[3]),
        ]);
        rows_json.push(serde_json::json!({
            "scenario": sname,
            "errors": kinds.iter().zip(&errs).map(|((n, _), e)| serde_json::json!({"kind": n, "mae": e})).collect::<Vec<_>>(),
        }));
    }
    t.print("Forecaster ablation (NWS-style monitoring vs last-value)");
    println!(
        "expected: last-value wins on steps, median wins on spikes, the \
         adaptive ensemble is never far from the per-scenario best — the \
         reason NWS forecasts (Centurion prototype) beat the plain last-value \
         monitor (Orange Grove prototype) under bursty load"
    );

    save_json(
        "ablation_forecast",
        &serde_json::json!({ "rows": rows_json }),
    );
}
