//! Figure 5: prediction errors for the NPB 2.4 suite and HPL on Centurion.
//!
//! Each benchmark is profiled on one mapping, then predicted and measured
//! (5 runs) on a *different* mapping of the listed node count; the bar is
//! the mean absolute percent error with its 95 % CI. The paper observes
//! mean errors below ~3.5 % (one case slightly under 4 %).
//!
//! ```text
//! cargo run --release -p cbes-bench --bin fig5_prediction_error [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_cluster::load::LoadState;
use cbes_cluster::{Cluster, NodeId};
use cbes_core::mapping::Mapping;
use cbes_workloads::npb::{bt, cg, ep, is, lu, mg, sp, NpbClass};
use cbes_workloads::{hpl, Workload};

/// A contiguous profiling mapping: the first `n` node ids.
fn profiling_mapping(n: usize) -> Vec<NodeId> {
    (0..n as u32).map(NodeId).collect()
}

/// A test mapping deliberately different from the profiling one: blocks of
/// eight nodes taken from each edge switch in turn — the shape of a real
/// scheduler allocation (mixed architectures and switch spans, but not the
/// pathological fully-interleaved placement no allocator would produce).
fn spread_mapping(cluster: &Cluster, n: usize) -> Mapping {
    const BLOCK: usize = 8;
    let mut per_switch: Vec<Vec<NodeId>> = vec![Vec::new(); cluster.switches().len()];
    for node in cluster.nodes() {
        per_switch[node.switch.index()].push(node.id);
    }
    let mut out = Vec::with_capacity(n);
    let mut round = 0usize;
    while out.len() < n {
        let mut progressed = false;
        for sw in &per_switch {
            for &id in sw.iter().skip(round * BLOCK).take(BLOCK) {
                if out.len() < n {
                    out.push(id);
                    progressed = true;
                }
            }
        }
        assert!(progressed, "cluster too small for {n} ranks");
        round += 1;
    }
    Mapping::new(out)
}

/// EP-B "16(2)": 16 ranks on 8 dual-CPU Intel nodes, two ranks per node.
fn dual_cpu_mapping(cluster: &Cluster, ranks: usize) -> Mapping {
    let intels: Vec<NodeId> = cluster
        .nodes()
        .iter()
        .filter(|n| n.cpus >= 2)
        .map(|n| n.id)
        .collect();
    let nodes_needed = ranks / 2;
    assert!(intels.len() >= nodes_needed);
    let mut out = Vec::with_capacity(ranks);
    for i in 0..ranks {
        out.push(intels[i / 2]);
    }
    Mapping::new(out)
}

struct Case {
    label: &'static str,
    nodes_label: &'static str,
    workload: Workload,
    dual: bool,
}

fn cases(full: bool) -> Vec<Case> {
    let big = |n: usize| if full { n } else { n.min(32) };
    vec![
        Case {
            label: "IS-A",
            nodes_label: "16",
            workload: is(16, NpbClass::A),
            dual: false,
        },
        Case {
            label: "EP-B",
            nodes_label: "16(2)",
            workload: ep(16, NpbClass::B),
            dual: true,
        },
        Case {
            label: "SP-A",
            nodes_label: "64",
            workload: sp(big(64), NpbClass::A),
            dual: false,
        },
        Case {
            label: "SP-B",
            nodes_label: "121",
            workload: sp(big(121), NpbClass::B),
            dual: false,
        },
        Case {
            label: "MG-A",
            nodes_label: "64",
            workload: mg(big(64), NpbClass::A),
            dual: false,
        },
        Case {
            label: "MG-B",
            nodes_label: "128",
            workload: mg(big(128), NpbClass::B),
            dual: false,
        },
        Case {
            label: "CG-A",
            nodes_label: "64",
            workload: cg(big(64), NpbClass::A),
            dual: false,
        },
        Case {
            label: "BT-S",
            nodes_label: "16",
            workload: bt(16, NpbClass::S),
            dual: false,
        },
        Case {
            label: "BT-A",
            nodes_label: "64",
            workload: bt(big(64), NpbClass::A),
            dual: false,
        },
        Case {
            label: "BT-B",
            nodes_label: "121",
            workload: bt(big(121), NpbClass::B),
            dual: false,
        },
        Case {
            label: "LU-A",
            nodes_label: "64",
            workload: lu(big(64), NpbClass::A),
            dual: false,
        },
        Case {
            label: "LU-B",
            nodes_label: "128",
            workload: lu(big(128), NpbClass::B),
            dual: false,
        },
        Case {
            label: "HPL",
            nodes_label: "64",
            workload: hpl::hpl(big(64), 10_000),
            dual: false,
        },
    ]
}

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(5, 5);
    let tb = Testbed::centurion(args.seed);
    let idle = LoadState::idle(tb.cluster.len());

    println!(
        "Figure 5 — prediction error, NPB 2.4 suite + HPL on Centurion \
         ({} runs per case{})",
        runs,
        if args.full {
            ""
        } else {
            "; node counts capped at 32, use --full for paper sizes"
        }
    );

    let mut t = Table::new(&[
        "benchmark",
        "nodes",
        "predicted (s)",
        "measured (s)",
        "CI95 (s)",
        "error %",
    ]);
    let mut rows_json = Vec::new();
    let mut errors = Vec::new();
    for case in cases(args.full) {
        let n = case.workload.num_ranks();
        let (prof_map, test_map) = if case.dual {
            // Profile on single-CPU placement, test on the dual-CPU one.
            (profiling_mapping(n), dual_cpu_mapping(&tb.cluster, n))
        } else {
            (profiling_mapping(n), spread_mapping(&tb.cluster, n))
        };
        let profile = tb.profile(&case.workload, &prof_map, args.seed + 3);
        let predicted = tb.predict(&profile, &test_map);
        let measured = cbes_bench::harness::parallel_map((0..runs as u64).collect(), |i| {
            tb.measure(&case.workload, &test_map, &idle, args.seed + 100 + i)
        });
        let m = stats::mean(&measured);
        let err = stats::pct_error(predicted, m).abs();
        errors.push(err);
        t.row(vec![
            case.label.to_string(),
            case.nodes_label.to_string(),
            format!("{predicted:.3}"),
            format!("{m:.3}"),
            format!("±{:.3}", stats::ci95(&measured)),
            format!("{err:.2}"),
        ]);
        rows_json.push(serde_json::json!({
            "benchmark": case.label, "nodes": case.nodes_label,
            "predicted": predicted, "measured_mean": m,
            "measured_ci95": stats::ci95(&measured), "error_pct": err,
        }));
        println!("  done: {} ({} ranks)", case.label, n);
    }
    t.print("Prediction errors, NPB 2.4 suite and HPL (paper figure 5)");
    println!(
        "mean |error| {:.2}%, max {:.2}% — paper: all means < 3.5% (one ~4%)",
        stats::mean(&errors),
        stats::max(&errors)
    );

    save_json(
        "fig5_prediction_error",
        &serde_json::json!({ "rows": rows_json }),
    );
}
