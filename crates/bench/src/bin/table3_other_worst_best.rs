//! Table 3: worst vs. best case for the remaining programs — HPL (three
//! problem sizes), sweep3d, smg2000 (three sizes), SAMRAI, Towhee and Aztec
//! — on a homogeneous node subset (all Intel nodes), isolating the effect
//! of communication. Four cases are expected to show "uncertain speedup":
//! sweep3d and SAMRAI (near-all-to-all patterns), Towhee (embarrassingly
//! parallel), and HPL(1) (too short).
//!
//! ```text
//! cargo run --release -p cbes-bench --bin table3_other_worst_best [--full]
//! ```

#![forbid(unsafe_code)]

use cbes_bench::harness::Testbed;
use cbes_bench::lu_exp::{mean_sched_secs, run_scheduler, Driver};
use cbes_bench::zones::homogeneous_pool;
use cbes_bench::{args::ExpArgs, save_json, stats, table::Table};
use cbes_workloads::{asci, hpl, Workload};

fn cases() -> Vec<(Workload, &'static str)> {
    vec![
        (hpl::hpl(8, 500), "500 problem size (uncertain speedup)"),
        (hpl::hpl(8, 5_000), "5,000 problem size"),
        (hpl::hpl(8, 10_000), "10,000 problem size"),
        (asci::sweep3d(8), "uncertain speedup (near all-to-all)"),
        (asci::smg2000(8, 12), "12x12x12 problem size"),
        (asci::smg2000(8, 50), "50x50x50 problem size"),
        (asci::smg2000(8, 60), "60x60x60 problem size"),
        (asci::samrai(8), "uncertain speedup (irregular all-to-all)"),
        (
            asci::towhee(8),
            "uncertain speedup (embarrassingly parallel)",
        ),
        (asci::aztec(8), "Poisson solver"),
    ]
}

fn main() {
    let args = ExpArgs::parse();
    let runs = args.reps(12, 40);
    let tb = Testbed::orange_grove(args.seed);
    let pool = homogeneous_pool(&tb.cluster);

    println!(
        "Table 3 — other programs, worst vs best case on the homogeneous \
         SPARC pool ({} nodes, {} scheduler runs per case)",
        pool.len(),
        runs
    );

    let mut t = Table::new(&[
        "test case",
        "worst (s)",
        "best (s)",
        "speedup %",
        "sched time (s)",
        "comments",
    ]);
    let mut rows_json = Vec::new();
    for (w, comment) in cases() {
        // Profile on the first 8 Intel nodes.
        let profile = tb.profile(&w, &pool[..w.num_ranks()], args.seed + 7);
        let ncs = run_scheduler(&tb, &profile, &w, &pool, Driver::Ncs, runs, args.seed);
        let cs = run_scheduler(&tb, &profile, &w, &pool, Driver::Cs, runs, args.seed + 500);
        let worst = stats::max(&ncs.iter().map(|o| o.measured).collect::<Vec<_>>());
        let best = stats::min(&cs.iter().map(|o| o.measured).collect::<Vec<_>>());
        let sp = stats::speedup_pct(worst, best);
        t.row(vec![
            w.name.clone(),
            format!("{worst:.3}"),
            format!("{best:.3}"),
            format!("{sp:.1}"),
            format!("{:.4}", mean_sched_secs(&cs)),
            comment.to_string(),
        ]);
        rows_json.push(serde_json::json!({
            "case": w.name, "worst": worst, "best": best, "speedup_pct": sp,
            "sched_time_s": mean_sched_secs(&cs), "comment": comment,
        }));
    }
    t.print("Other tests: worst vs best case scenario (paper table 3)");
    println!(
        "paper reference: speedups 5.6–10.8% for the schedulable cases;\n\
         sweep3d, SAMRAI, Towhee and HPL(500) show uncertain speedup"
    );

    save_json(
        "table3_other_worst_best",
        &serde_json::json!({ "rows": rows_json }),
    );
}
