//! Minimal shared CLI for the experiment binaries.

/// Common experiment options parsed from `std::env::args`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Run the full-scale version (paper-sized sweeps) instead of the
    /// scaled-down default.
    pub full: bool,
    /// Override the number of repetitions/scheduler runs.
    pub runs: Option<usize>,
    /// Base RNG seed.
    pub seed: u64,
    /// Regression-gate mode: compare the fresh result against the
    /// committed baseline artifact instead of overwriting it.
    pub check: bool,
    /// Allowed regression for `--check`, in percent. `None` defers to
    /// `CBES_PERF_GATE_TOLERANCE_PCT`, then the built-in default.
    pub tolerance: Option<f64>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            full: false,
            runs: None,
            seed: 42,
            check: false,
            tolerance: None,
        }
    }
}

impl ExpArgs {
    /// Parse from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--check" => out.check = true,
                "--tolerance" => {
                    let v = it.next().ok_or("--tolerance needs a value (percent)")?;
                    let pct: f64 = v
                        .parse()
                        .map_err(|_| format!("bad --tolerance value `{v}`"))?;
                    if !pct.is_finite() || pct < 0.0 {
                        return Err(format!("bad --tolerance value `{v}`"));
                    }
                    out.tolerance = Some(pct);
                }
                "--runs" => {
                    let v = it.next().ok_or("--runs needs a value")?;
                    out.runs = Some(v.parse().map_err(|_| format!("bad --runs value `{v}`"))?);
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
                }
                "--help" | "-h" => {
                    return Err("usage: <exp> [--full] [--runs N] [--seed S] \
                         [--check] [--tolerance PCT]"
                        .to_string())
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(out)
    }

    /// Parse the process arguments; print usage and exit on error.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The effective repetition count: `runs` override, else `full_n` when
    /// `--full`, else `default_n`.
    pub fn reps(&self, default_n: usize, full_n: usize) -> usize {
        self.runs
            .unwrap_or(if self.full { full_n } else { default_n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::parse_from(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, ExpArgs::default());
        assert_eq!(a.reps(5, 100), 5);
    }

    #[test]
    fn full_and_overrides() {
        let a = parse(&["--full", "--seed", "7"]).unwrap();
        assert!(a.full);
        assert_eq!(a.seed, 7);
        assert_eq!(a.reps(5, 100), 100);
        let b = parse(&["--runs", "17"]).unwrap();
        assert_eq!(b.reps(5, 100), 17);
    }

    #[test]
    fn check_mode_and_tolerance() {
        let a = parse(&["--check"]).unwrap();
        assert!(a.check);
        assert_eq!(a.tolerance, None);
        let b = parse(&["--check", "--tolerance", "7.5"]).unwrap();
        assert_eq!(b.tolerance, Some(7.5));
        assert!(parse(&["--tolerance"]).is_err());
        assert!(parse(&["--tolerance", "x"]).is_err());
        assert!(parse(&["--tolerance", "-3"]).is_err());
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse(&["--runs"]).is_err());
        assert!(parse(&["--runs", "x"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
