//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §4 for
//! the experiment index); this library holds the shared machinery:
//!
//! * [`harness`] — profiling, measuring (simulated "actual" runs), and
//!   predicting; thread-parallel fan-out of independent runs.
//! * [`zones`] — the Orange Grove node groups (high/medium/low speed) the
//!   LU experiments sample, and the homogeneous pool for table 3/4.
//! * [`stats`] — means, confidence intervals, percent errors.
//! * [`table`] — fixed-width table printing in the paper's format.
//! * [`args`] — the tiny shared CLI (`--full`, `--runs`, `--seed`).

#![forbid(unsafe_code)]

pub mod args;
pub mod harness;
pub mod lu_exp;
pub mod stats;
pub mod table;
pub mod zones;

/// CI perf-regression gate: compare a fresh throughput measurement
/// against the committed `BENCH_<name>.json` baseline.
pub mod perf_gate {
    /// Default allowed regression, percent. Override per run with
    /// `--tolerance` or the `CBES_PERF_GATE_TOLERANCE_PCT` env var.
    pub const DEFAULT_TOLERANCE_PCT: f64 = 15.0;

    /// The effective tolerance: explicit flag, else env, else default.
    pub fn tolerance_pct(flag: Option<f64>) -> f64 {
        flag.or_else(|| {
            std::env::var("CBES_PERF_GATE_TOLERANCE_PCT")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|v: &f64| v.is_finite() && *v >= 0.0)
        })
        .unwrap_or(DEFAULT_TOLERANCE_PCT)
    }

    /// The committed `BENCH_<name>.json` headline, as read back for
    /// gating and for failure diagnostics.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Baseline {
        /// Committed sustained throughput, requests per second.
        pub req_per_s: f64,
        /// Committed `latency_us.p99`, if the artifact recorded one
        /// (older baselines may predate the latency block).
        pub p99_us: Option<f64>,
    }

    /// Read the committed baseline artifact at `path`. `Err` names the
    /// problem (missing file, invalid JSON, or no positive `req_per_s`).
    pub fn read_baseline(path: &str) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let value: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| format!("baseline {path} is not valid JSON: {e}"))?;
        let req_per_s = value
            .get("req_per_s")
            .and_then(|v| v.as_f64())
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("baseline {path} has no positive `req_per_s` field"))?;
        let p99_us = value
            .get("latency_us")
            .and_then(|l| l.get("p99"))
            .and_then(|v| v.as_f64())
            .filter(|v| v.is_finite() && *v > 0.0);
        Ok(Baseline { req_per_s, p99_us })
    }

    /// Compare `fresh_req_per_s` against the `req_per_s` field of the
    /// baseline artifact at `path`. `Ok` carries a human-readable
    /// verdict; `Err` carries the failure (missing/garbled baseline, or
    /// a regression beyond `tolerance_pct`).
    pub fn check_throughput(
        path: &str,
        fresh_req_per_s: f64,
        tolerance_pct: f64,
    ) -> Result<String, String> {
        let baseline = read_baseline(path)?.req_per_s;
        let delta_pct = (fresh_req_per_s - baseline) / baseline * 100.0;
        if delta_pct < -tolerance_pct {
            return Err(format!(
                "throughput regression: {fresh_req_per_s:.0} req/s is \
                 {:.1}% below the committed baseline {baseline:.0} req/s \
                 (tolerance {tolerance_pct:.1}%)",
                -delta_pct
            ));
        }
        Ok(format!(
            "throughput {fresh_req_per_s:.0} req/s vs baseline \
             {baseline:.0} req/s ({delta_pct:+.1}%, tolerance \
             -{tolerance_pct:.1}%)"
        ))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn baseline_file(req_per_s: &str) -> std::path::PathBuf {
            let path = std::env::temp_dir().join(format!(
                "cbes-perf-gate-{}-{req_per_s}.json",
                std::process::id()
            ));
            std::fs::write(
                &path,
                format!("{{\"bench\":\"x\",\"req_per_s\":{req_per_s}}}"),
            )
            .unwrap();
            path
        }

        #[test]
        fn within_tolerance_passes_and_beyond_fails() {
            let path = baseline_file("10000.0");
            let p = path.to_str().unwrap();
            // 10% down on a 15% tolerance: pass.
            let verdict = check_throughput(p, 9_000.0, 15.0).unwrap();
            assert!(verdict.contains("-10.0%"), "{verdict}");
            // Improvements always pass.
            assert!(check_throughput(p, 20_000.0, 15.0).is_ok());
            // 20% down: fail, message names both numbers.
            let err = check_throughput(p, 8_000.0, 15.0).unwrap_err();
            assert!(err.contains("regression"), "{err}");
            assert!(err.contains("10000"), "{err}");
            std::fs::remove_file(path).ok();
        }

        #[test]
        fn read_baseline_surfaces_p99_when_present() {
            let path = std::env::temp_dir()
                .join(format!("cbes-perf-gate-p99-{}.json", std::process::id()));
            std::fs::write(
                &path,
                "{\"bench\":\"x\",\"req_per_s\":12500.0,\
                 \"latency_us\":{\"p50\":900.0,\"p99\":2400.0}}",
            )
            .unwrap();
            let b = read_baseline(path.to_str().unwrap()).unwrap();
            assert_eq!(b.req_per_s, 12_500.0);
            assert_eq!(b.p99_us, Some(2_400.0));
            std::fs::remove_file(&path).ok();
            // A baseline without the latency block still reads cleanly.
            let bare = baseline_file("11000.0");
            let b = read_baseline(bare.to_str().unwrap()).unwrap();
            assert_eq!(b.p99_us, None);
            std::fs::remove_file(bare).ok();
        }

        #[test]
        fn garbled_baselines_are_errors_not_passes() {
            let missing = check_throughput("/nonexistent/b.json", 1.0, 15.0);
            assert!(missing.unwrap_err().contains("cannot read"));
            let path = baseline_file("0.0");
            let err = check_throughput(path.to_str().unwrap(), 1.0, 15.0).unwrap_err();
            assert!(err.contains("req_per_s"), "{err}");
            std::fs::remove_file(path).ok();
        }

        #[test]
        fn tolerance_resolution_prefers_the_flag() {
            assert_eq!(tolerance_pct(Some(7.0)), 7.0);
            // No flag, no env (the test env does not set it): default.
            if std::env::var("CBES_PERF_GATE_TOLERANCE_PCT").is_err() {
                assert_eq!(tolerance_pct(None), DEFAULT_TOLERANCE_PCT);
            }
        }
    }
}

/// Write an experiment artifact as pretty JSON under `results/`.
///
/// Errors are reported but non-fatal: the printed table is the primary
/// output, the JSON a convenience.
pub fn save_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("\n[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise artifact: {e}"),
    }
}
