//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §4 for
//! the experiment index); this library holds the shared machinery:
//!
//! * [`harness`] — profiling, measuring (simulated "actual" runs), and
//!   predicting; thread-parallel fan-out of independent runs.
//! * [`zones`] — the Orange Grove node groups (high/medium/low speed) the
//!   LU experiments sample, and the homogeneous pool for table 3/4.
//! * [`stats`] — means, confidence intervals, percent errors.
//! * [`table`] — fixed-width table printing in the paper's format.
//! * [`args`] — the tiny shared CLI (`--full`, `--runs`, `--seed`).

#![forbid(unsafe_code)]

pub mod args;
pub mod harness;
pub mod lu_exp;
pub mod stats;
pub mod table;
pub mod zones;

/// Write an experiment artifact as pretty JSON under `results/`.
///
/// Errors are reported but non-fatal: the printed table is the primary
/// output, the JSON a convenience.
pub fn save_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("\n[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise artifact: {e}"),
    }
}
