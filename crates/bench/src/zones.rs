//! The Orange Grove node groups the LU experiments sample (paper §6.1), and
//! the homogeneous pool used by the table 3/4 programs.

use cbes_cluster::{Architecture, Cluster, NodeId};
use cbes_core::mapping::Mapping;
use cbes_sched::moves::SearchState;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named candidate-node pool ("node group" in the paper).
#[derive(Debug, Clone)]
pub struct Zone {
    /// Paper-style label, e.g. `"high speed node group (A)"`.
    pub name: &'static str,
    /// Short id used in case names: `LU (1)`, `LU (2)`, `LU (3)`.
    pub id: usize,
    /// Candidate nodes.
    pub pool: Vec<NodeId>,
}

/// The three LU node groups (figure 6): pools constructed so any 8-node
/// mapping drawn from them lands in the corresponding speed zone.
///
/// * high — the 8 Alphas;
/// * medium — 4 Alphas + all 12 Intels (at least four Intel nodes in every
///   8-node mapping, so the zone's bottleneck speed is the Intel's);
/// * low — 2 Alphas + 2 Intels + all 8 SPARCs (at least four SPARC nodes in
///   every mapping).
pub fn lu_zones(cluster: &Cluster) -> [Zone; 3] {
    let a = cluster.nodes_by_arch(Architecture::Alpha);
    let i = cluster.nodes_by_arch(Architecture::IntelPII);
    let s = cluster.nodes_by_arch(Architecture::Sparc);
    assert!(
        a.len() >= 8 && i.len() >= 12 && s.len() >= 8,
        "orange grove expected"
    );
    let mut medium = a[..4].to_vec();
    medium.extend_from_slice(&i);
    let mut low = a[..2].to_vec();
    low.extend_from_slice(&i[..2]);
    low.extend_from_slice(&s);
    [
        Zone {
            name: "high speed node group (A)",
            id: 1,
            pool: a,
        },
        Zone {
            name: "medium speed node group (A+I)",
            id: 2,
            pool: medium,
        },
        Zone {
            name: "low speed node group (A+I+S)",
            id: 3,
            pool: low,
        },
    ]
}

/// The homogeneous pool for the table 3/4 programs: the 8 SPARC nodes.
/// Homogeneous in compute speed AND in switch hardware (two identical
/// DLink switches, four nodes each), so every mapping has the same
/// computation cost and scheduling can only exploit the communication
/// term — the paper's "level the field" setup. With exactly eight nodes
/// for eight processes, the search space is the pure permutation space of
/// rank-to-node arrangements.
pub fn homogeneous_pool(cluster: &Cluster) -> Vec<NodeId> {
    cluster.nodes_by_arch(Architecture::Sparc)
}

/// `count` random injective `n`-node mappings drawn from `pool`
/// (the "representative mapping" sampling of figure 6).
pub fn sample_mappings(pool: &[NodeId], n: usize, count: usize, seed: u64) -> Vec<Mapping> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| SearchState::random(pool, n, &mut rng).mapping())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::presets::orange_grove;

    #[test]
    fn zones_have_expected_architecture_floors() {
        let c = orange_grove();
        let [high, medium, low] = lu_zones(&c);
        assert_eq!(high.pool.len(), 8);
        assert!(high
            .pool
            .iter()
            .all(|&n| c.node(n).arch == Architecture::Alpha));
        // Medium: at most 4 Alphas -> any 8-mapping includes >= 4 Intels.
        let alphas = medium
            .pool
            .iter()
            .filter(|&&n| c.node(n).arch == Architecture::Alpha)
            .count();
        assert_eq!(alphas, 4);
        assert_eq!(medium.pool.len(), 16);
        // Low: at most 4 non-SPARC -> any 8-mapping includes >= 4 SPARCs.
        let non_sparc = low
            .pool
            .iter()
            .filter(|&&n| c.node(n).arch != Architecture::Sparc)
            .count();
        assert_eq!(non_sparc, 4);
        assert_eq!(low.pool.len(), 12);
    }

    #[test]
    fn sampled_mappings_are_injective_and_within_pool() {
        let c = orange_grove();
        let [_, medium, _] = lu_zones(&c);
        let ms = sample_mappings(&medium.pool, 8, 40, 9);
        assert_eq!(ms.len(), 40);
        for m in &ms {
            assert!(m.is_injective());
            for (_, n) in m.iter() {
                assert!(medium.pool.contains(&n));
            }
        }
    }

    #[test]
    fn homogeneous_pool_is_sparc_only() {
        let c = orange_grove();
        let pool = homogeneous_pool(&c);
        assert_eq!(pool.len(), 8);
        assert!(pool.iter().all(|&n| c.node(n).arch == Architecture::Sparc));
        // Spread over exactly two identical switches.
        let sw: std::collections::BTreeSet<_> = pool.iter().map(|&n| c.node(n).switch).collect();
        assert_eq!(sw.len(), 2);
    }
}
