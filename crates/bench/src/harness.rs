//! Shared experiment machinery: calibrated testbeds, profiling, measuring,
//! predicting, and thread-parallel fan-out.

use cbes_cluster::load::LoadState;
use cbes_cluster::{Cluster, NodeId};
use cbes_core::eval::Evaluator;
use cbes_core::mapping::Mapping;
use cbes_core::snapshot::SystemSnapshot;
use cbes_mpisim::{simulate, SimConfig};
use cbes_netmodel::calibrate::{CalibrationOutcome, Calibrator};
use cbes_trace::{extract_profile, AppProfile};
use cbes_workloads::Workload;
use parking_lot::Mutex;

/// A cluster plus its off-line calibration — everything an experiment needs
/// to profile, predict and "measure".
pub struct Testbed {
    /// The modelled cluster.
    pub cluster: Cluster,
    /// The calibration campaign's outcome (latency model and costs).
    pub calibration: CalibrationOutcome,
}

impl Testbed {
    /// Calibrate a testbed over the given cluster.
    pub fn new(cluster: Cluster, seed: u64) -> Self {
        let calibration = Calibrator::default().with_seed(seed).calibrate(&cluster);
        Testbed {
            cluster,
            calibration,
        }
    }

    /// The Orange Grove testbed (tables 1–4, figures 6–7).
    pub fn orange_grove(seed: u64) -> Self {
        Testbed::new(cbes_cluster::presets::orange_grove(), seed)
    }

    /// The Centurion testbed (figure 5, phase-1 sweep).
    pub fn centurion(seed: u64) -> Self {
        Testbed::new(cbes_cluster::presets::centurion(), seed)
    }

    /// An idle-system snapshot over the calibrated model.
    pub fn snapshot(&self) -> SystemSnapshot<'_> {
        SystemSnapshot::no_load(&self.cluster, &self.calibration.model)
    }

    /// A snapshot with explicit load.
    pub fn snapshot_with(&self, load: LoadState) -> SystemSnapshot<'_> {
        let mut s = self.snapshot();
        s.set_load(load);
        s
    }

    /// Profile a workload by tracing one run on the profiling `mapping`
    /// (idle system) and reducing the trace — the application-profiling
    /// phase of the paper.
    pub fn profile(&self, w: &Workload, mapping: &[NodeId], seed: u64) -> AppProfile {
        let cfg = SimConfig::default().with_seed(seed);
        let run = simulate(
            &self.cluster,
            &w.program,
            mapping,
            &LoadState::idle(self.cluster.len()),
            &cfg,
        )
        .unwrap_or_else(|e| panic!("profiling run of {} failed: {e}", w.name));
        extract_profile(
            &w.name,
            &run.trace,
            &self.cluster,
            mapping,
            &self.calibration.model,
        )
    }

    /// One "actual execution": simulate with per-run seed, no tracing.
    /// Returns the measured wall time.
    pub fn measure(&self, w: &Workload, mapping: &Mapping, load: &LoadState, seed: u64) -> f64 {
        let mut cfg = SimConfig::default().with_seed(seed);
        cfg.collect_trace = false;
        simulate(&self.cluster, &w.program, mapping.as_slice(), load, &cfg)
            .unwrap_or_else(|e| panic!("measured run of {} failed: {e}", w.name))
            .wall_time
    }

    /// `runs` independent measured executions (parallel across threads),
    /// seeds `base_seed..base_seed+runs`.
    pub fn measure_n(
        &self,
        w: &Workload,
        mapping: &Mapping,
        load: &LoadState,
        base_seed: u64,
        runs: usize,
    ) -> Vec<f64> {
        parallel_map((0..runs as u64).collect(), |i| {
            self.measure(w, mapping, load, base_seed + i)
        })
    }

    /// CBES prediction of `mapping` under the idle snapshot.
    pub fn predict(&self, profile: &AppProfile, mapping: &Mapping) -> f64 {
        let snap = self.snapshot();
        Evaluator::new(profile, &snap).predict_time(mapping)
    }
}

/// Map `f` over `items` using all available cores, preserving order.
/// Falls back to sequential execution for a single item.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let next = queue.lock().pop();
                match next {
                    Some((i, t)) => {
                        let r = f(t);
                        done.lock().push((i, r));
                    }
                    None => break,
                }
            });
        }
    })
    .expect("worker threads must not panic");
    let mut out = done.into_inner();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_workloads::npb::{lu, NpbClass};

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert!(parallel_map(Vec::<i32>::new(), |x| x).is_empty());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn testbed_profiles_and_predicts_close_to_measurement() {
        let tb = Testbed::orange_grove(1);
        let w = lu(8, NpbClass::S);
        let alphas: Vec<NodeId> = (0..8).map(NodeId).collect();
        let profile = tb.profile(&w, &alphas, 11);
        let mapping = Mapping::new(alphas);
        let predicted = tb.predict(&profile, &mapping);
        let measured = tb.measure_n(&w, &mapping, &LoadState::idle(tb.cluster.len()), 100, 5);
        let m = crate::stats::mean(&measured);
        let err = (predicted - m).abs() / m * 100.0;
        assert!(
            err < 6.0,
            "prediction error {err}% (pred {predicted}, meas {m})"
        );
    }
}
