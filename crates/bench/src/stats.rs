//! Summary statistics used by the experiment reports.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Half-width of the 95 % confidence interval for the mean, using Student's
/// t for small samples (the paper reports 95 % CIs on 5-run means).
pub fn ci95(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    t95(n - 1) * stddev(xs) / (n as f64).sqrt()
}

/// Two-sided 95 % Student-t critical value for `df` degrees of freedom.
fn t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Signed percent error of `predicted` against `actual`.
pub fn pct_error(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        0.0
    } else {
        (predicted - actual) / actual * 100.0
    }
}

/// Percent speedup of `best` over `worst` (paper convention:
/// `(worst - best) / worst × 100`).
pub fn speedup_pct(worst: f64, best: f64) -> f64 {
    if worst == 0.0 {
        0.0
    } else {
        (worst - best) / worst * 100.0
    }
}

/// Minimum of a slice (∞ for empty).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice (-∞ for empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Histogram of `xs` over `bins` equal-width buckets spanning [lo, hi].
/// Returns (bucket counts, bucket width).
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> (Vec<usize>, f64) {
    assert!(bins > 0 && hi > lo);
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &x in xs {
        if x < lo || x > hi {
            continue;
        }
        let mut b = ((x - lo) / width) as usize;
        if b >= bins {
            b = bins - 1;
        }
        counts[b] += 1;
    }
    (counts, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.13809).abs() < 1e-4);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn ci95_uses_t_distribution_for_small_n() {
        // 5 samples with stddev 1.0: CI = 2.776 / sqrt(5).
        let xs = [
            -1.26490646,
            -0.63245323,
            0.0,
            0.63245323,
            1.26490646, // stddev = 1
        ];
        let ci = ci95(&xs);
        assert!((ci - 2.776 / 5f64.sqrt()).abs() < 1e-4, "ci={ci}");
    }

    #[test]
    fn errors_and_speedups() {
        assert!((pct_error(104.0, 100.0) - 4.0).abs() < 1e-12);
        assert!((pct_error(96.0, 100.0) + 4.0).abs() < 1e-12);
        assert!((speedup_pct(260.4, 236.2) - 9.2933).abs() < 1e-3);
        assert_eq!(speedup_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn histogram_buckets_cover_range() {
        let xs = [0.1, 0.2, 0.5, 0.9, 1.0];
        let (counts, w) = histogram(&xs, 0.0, 1.0, 4);
        assert_eq!(counts.iter().sum::<usize>(), 5);
        assert!((w - 0.25).abs() < 1e-12);
        assert_eq!(counts[3], 2); // 0.9 and 1.0
    }

    #[test]
    fn min_max_helpers() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 3.0);
    }
}
