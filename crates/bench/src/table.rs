//! Fixed-width table printing for experiment reports.

/// A simple fixed-width text table: headers plus rows of strings, printed
/// with column auto-sizing — visually close to the paper's tables.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            (0..cols)
                .map(|i| format!(" {:<width$} ", cells[i], width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===\n{}", self.render());
    }
}

/// Format seconds with 1 ms resolution, e.g. `2.847`.
pub fn secs(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage with one decimal, e.g. `9.3`.
pub fn pct(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a ± half-width, e.g. `±0.012`.
pub fn pm(x: f64) -> String {
    format!("±{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["case", "time (s)"]);
        t.row(vec!["LU (1)".into(), "207.8".into()]);
        t.row(vec!["x".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("case"));
        assert!(lines[2].contains("LU (1)"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_enforced() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(2.8474), "2.847");
        assert_eq!(pct(9.29), "9.3");
        assert_eq!(pm(0.0123), "±0.012");
    }
}
