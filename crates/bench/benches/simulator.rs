//! Discrete-event simulator throughput: full "measured runs" of
//! representative workloads, and the marginal cost of contention modelling
//! and trace collection.

use cbes_cluster::load::LoadState;
use cbes_cluster::presets::{centurion, orange_grove};
use cbes_cluster::NodeId;
use cbes_mpisim::{simulate, SimConfig};
use cbes_workloads::npb::{lu, NpbClass};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let og = orange_grove();
    let cen = centurion();

    let mut group = c.benchmark_group("lu_run");
    group.sample_size(10);
    for (label, cluster, ranks) in [
        ("orange-grove/8", &og, 8usize),
        ("centurion/32", &cen, 32),
        ("centurion/64", &cen, 64),
    ] {
        let w = lu(ranks, NpbClass::S);
        let ops = w.program.total_ops();
        let mapping: Vec<NodeId> = (0..ranks as u32).map(NodeId).collect();
        let load = LoadState::idle(cluster.len());
        let cfg = SimConfig {
            collect_trace: false,
            ..SimConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label} [{ops} ops]")),
            &(),
            |b, _| {
                b.iter(|| {
                    black_box(
                        simulate(cluster, &w.program, &mapping, &load, &cfg)
                            .unwrap()
                            .wall_time,
                    )
                })
            },
        );
    }
    group.finish();

    // Feature cost: contention and tracing.
    let w = lu(8, NpbClass::S);
    let mapping: Vec<NodeId> = (0..8).map(NodeId).collect();
    let load = LoadState::idle(og.len());
    let mut group = c.benchmark_group("sim_features");
    for (label, contention, trace) in [
        ("bare", false, false),
        ("contention", true, false),
        ("contention+trace", true, true),
    ] {
        let cfg = SimConfig {
            contention,
            collect_trace: trace,
            ..SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(
                    simulate(&og, &w.program, &mapping, &load, cfg)
                        .unwrap()
                        .wall_time,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
