//! Mapping-evaluation throughput — the paper's scheduler-overhead driver:
//! "the higher the complexity [of an application's communication pattern],
//! the longer it takes to evaluate a mapping" (§6.2). Measures single
//! `predict_time` calls against profiles of growing message-group counts.

use cbes_bench::harness::Testbed;
use cbes_bench::zones::lu_zones;
use cbes_core::eval::Evaluator;
use cbes_core::mapping::Mapping;
use cbes_workloads::{asci, npb};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_eval(c: &mut Criterion) {
    let tb = Testbed::orange_grove(1);
    let zones = lu_zones(&tb.cluster);
    let pool = &zones[0].pool;
    let mapping = Mapping::new(pool.clone());

    let mut group = c.benchmark_group("predict_time");
    for (name, w) in [
        ("ep (trivial pattern)", npb::ep(8, npb::NpbClass::S)),
        ("lu (neighbour pattern)", npb::lu(8, npb::NpbClass::S)),
        ("aztec (halo + reductions)", asci::aztec(8)),
        ("samrai (irregular all-to-all)", asci::samrai(8)),
    ] {
        let profile = tb.profile(&w, pool, 42);
        let groups: usize = profile.procs.iter().map(|p| p.group_count()).sum();
        let snap = tb.snapshot();
        let ev = Evaluator::new(&profile, &snap);
        group.bench_with_input(
            BenchmarkId::new("groups", format!("{name} [{groups} groups]")),
            &ev,
            |b, ev| b.iter(|| black_box(ev.predict_time(black_box(&mapping)))),
        );
    }
    group.finish();

    // The NCS variant skips the communication term entirely.
    let w = npb::lu(8, npb::NpbClass::S);
    let profile = tb.profile(&w, pool, 42);
    let snap = tb.snapshot();
    let ev = Evaluator::new(&profile, &snap);
    c.bench_function("compute_only_score (NCS energy)", |b| {
        b.iter(|| black_box(ev.compute_only_score(black_box(&mapping))))
    });
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
