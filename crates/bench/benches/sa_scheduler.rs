//! Scheduler wall time (the paper's "approximate scheduler time" column):
//! a full CS simulated-annealing run as a function of annealing effort and
//! candidate-pool size, plus the RS and greedy baselines for contrast.

use cbes_bench::harness::Testbed;
use cbes_bench::lu_exp::prepare_lu;
use cbes_bench::zones::lu_zones;
use cbes_sched::{
    GreedyScheduler, RandomScheduler, SaConfig, SaScheduler, ScheduleRequest, Scheduler,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let tb = Testbed::orange_grove(1);
    let zones = lu_zones(&tb.cluster);
    let setup = prepare_lu(&tb, &zones);

    let mut group = c.benchmark_group("cs_effort");
    group.sample_size(10);
    for iters in [500u32, 2_000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            let cfg = SaConfig {
                iters,
                ..SaConfig::fast(7)
            };
            b.iter(|| {
                let snap = tb.snapshot();
                let req = ScheduleRequest::new(&setup.profile, &snap, &zones[1].pool);
                black_box(SaScheduler::new(cfg).schedule(&req).unwrap().predicted_time)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pool_size");
    group.sample_size(10);
    for zone in &zones {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{} nodes", zone.pool.len())),
            zone,
            |b, zone| {
                b.iter(|| {
                    let snap = tb.snapshot();
                    let req = ScheduleRequest::new(&setup.profile, &snap, &zone.pool);
                    black_box(
                        SaScheduler::new(SaConfig::fast(7))
                            .schedule(&req)
                            .unwrap()
                            .predicted_time,
                    )
                })
            },
        );
    }
    group.finish();

    c.bench_function("rs_baseline", |b| {
        let mut rs = RandomScheduler::new(3);
        b.iter(|| {
            let snap = tb.snapshot();
            let req = ScheduleRequest::new(&setup.profile, &snap, &zones[1].pool);
            black_box(rs.schedule(&req).unwrap().predicted_time)
        })
    });
    c.bench_function("greedy_baseline", |b| {
        b.iter(|| {
            let snap = tb.snapshot();
            let req = ScheduleRequest::new(&setup.profile, &snap, &zones[1].pool);
            black_box(
                GreedyScheduler::new()
                    .schedule(&req)
                    .unwrap()
                    .predicted_time,
            )
        })
    });
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
