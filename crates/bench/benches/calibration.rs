//! Off-line calibration cost: the full campaign per cluster, the clique
//! (1-factorisation) round construction, and latency-model queries.

use cbes_cluster::presets::{centurion, orange_grove};
use cbes_cluster::NodeId;
use cbes_netmodel::calibrate::{round_robin_rounds, Calibrator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibrate");
    group.sample_size(10);
    for (label, cluster) in [
        ("orange-grove/28", orange_grove()),
        ("centurion/128", centurion()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cluster, |b, cl| {
            b.iter(|| black_box(Calibrator::default().calibrate(cl).measurements))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("clique_rounds");
    for n in [28usize, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(round_robin_rounds(n).len()))
        });
    }
    group.finish();

    let cluster = centurion();
    let model = Calibrator::default().calibrate(&cluster).model;
    c.bench_function("model_query", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 127;
            black_box(model.no_load(NodeId(i), NodeId(i + 1), 4096))
        })
    });
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
