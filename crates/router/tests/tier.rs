//! End-to-end tier tests: real `cbes-server` instances behind the
//! membership table, routing client, and replication loop.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use cbes_cluster::load::LoadState;
use cbes_cluster::presets::two_switch_demo;
use cbes_cluster::NodeId;
use cbes_core::health::HealthPolicy;
use cbes_core::mapping::Mapping;
use cbes_core::monitor::ForecastKind;
use cbes_core::CbesService;
use cbes_router::membership::{Membership, MembershipConfig};
use cbes_router::tier::{observe_tier, probe_instances, RouterServer, TierConfig};
use cbes_router::RoutingClient;
use cbes_server::{Client, RetryPolicy, Server, ServerConfig, ServerHandle};
use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};

fn profile(name: &str) -> AppProfile {
    let mk = |rank: usize| ProcessProfile {
        rank,
        x: 5.0,
        o: 0.2,
        b: 0.5,
        sends: vec![MessageGroup {
            peer: 1 - rank,
            bytes: 8192,
            count: 50,
        }],
        recvs: vec![MessageGroup {
            peer: 1 - rank,
            bytes: 8192,
            count: 50,
        }],
        profile_speed: 1.0,
        lambda: 1.0,
    };
    AppProfile {
        name: name.to_string(),
        procs: vec![mk(0), mk(1)],
        arch_ratios: BTreeMap::new(),
    }
}

fn start_instance() -> ServerHandle {
    let service = Arc::new(CbesService::self_calibrated(
        Arc::new(two_switch_demo()),
        ForecastKind::LastValue,
    ));
    Server::start(
        service,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("loopback bind succeeds")
}

fn tier_membership(addrs: Vec<String>) -> Arc<Membership> {
    Membership::new(
        addrs,
        MembershipConfig {
            cluster: "demo".to_string(),
            heartbeat: Duration::from_millis(20),
            probe_timeout: Duration::from_millis(500),
            policy: HealthPolicy {
                suspect_after: 1,
                down_after: 3,
                suspect_cost_factor: 1.0,
            },
            replicas: 1,
        },
    )
}

fn mapping(ids: &[u32]) -> Mapping {
    Mapping::new(ids.iter().map(|&i| NodeId(i)).collect())
}

#[test]
fn requests_fail_over_when_an_instance_crashes() {
    let instances: Vec<ServerHandle> = (0..3).map(|_| start_instance()).collect();
    let addrs: Vec<String> = instances.iter().map(|h| h.addr().to_string()).collect();
    let membership = tier_membership(addrs);
    membership.record_probes(&probe_instances(&membership));
    assert_eq!(membership.counts(), (3, 0, 0));

    let mut client = RoutingClient::new(
        membership.clone(),
        Duration::from_millis(500),
        RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
    )
    .with_limits(20, Duration::from_millis(5));
    assert_eq!(
        client
            .register_profile(&profile("app"))
            .expect("tier is up"),
        3,
        "profiles broadcast to every instance"
    );
    let apps = ["app"];
    for app in apps {
        client
            .compare(app, &[mapping(&[0, 1])])
            .expect("tier serves");
    }

    // Crash whichever instance owns the key, then keep asking: the
    // request must land on a replica.
    let hash = client.key_hash("app");
    let report = client.membership_report();
    let owner = {
        let ring = cbes_router::HashRing::new(report.instances.len());
        ring.primary(hash).expect("non-empty ring")
    };
    let mut handles: Vec<Option<ServerHandle>> = instances.into_iter().map(Some).collect();
    if let Some(dead) = handles.get_mut(owner).and_then(Option::take) {
        dead.shutdown_and_join();
    }
    // Let the membership table notice (probe sweeps: suspect at 2, down at 4).
    for _ in 0..5 {
        membership.record_probes(&probe_instances(&membership));
    }
    assert_eq!(membership.counts(), (2, 0, 1));
    let (_, preds) = client
        .compare("app", &[mapping(&[0, 1])])
        .expect("a replica serves the key after the crash");
    assert_eq!(preds.len(), 1);
    let report = client.membership_report();
    assert_eq!(report.instances[owner].health, "down");
    assert!(
        report.instances.iter().any(|i| i.failed_over > 0),
        "the replica recorded the failover"
    );

    for h in handles.into_iter().flatten() {
        h.shutdown_and_join();
    }
}

#[test]
fn observations_replicate_from_leader_to_followers() {
    let instances: Vec<ServerHandle> = (0..3).map(|_| start_instance()).collect();
    let addrs: Vec<String> = instances.iter().map(|h| h.addr().to_string()).collect();
    let membership = tier_membership(addrs.clone());
    membership.record_probes(&probe_instances(&membership));

    let n = two_switch_demo().len();
    let mut load = LoadState::idle(n);
    load.set_cpu_avail(NodeId(0), 0.5);
    let epoch = observe_tier(&membership, &load, &[]).expect("leader is up");
    assert_eq!(epoch, 1);
    // Every instance is now at the same epoch: staleness 0.
    for addr in &addrs {
        let mut c = Client::connect_timeout(addr.as_str(), Duration::from_millis(500))
            .expect("instance is up");
        assert_eq!(c.stats().expect("stats answers").epoch, 1);
    }
    membership.record_probes(&probe_instances(&membership));
    assert_eq!(membership.replication_lag(), 0);

    // Kill the leader: the next sweep goes through a follower, and the
    // epoch line keeps rising from the replicated value.
    let leader = membership.leader().expect("tier has a leader");
    let mut handles: Vec<Option<ServerHandle>> = instances.into_iter().map(Some).collect();
    if let Some(dead) = handles.get_mut(leader).and_then(Option::take) {
        dead.shutdown_and_join();
    }
    for _ in 0..5 {
        membership.record_probes(&probe_instances(&membership));
    }
    let epoch = observe_tier(&membership, &load, &[]).expect("a follower takes over");
    assert_eq!(epoch, 2, "epoch continuity across leader failover");

    for h in handles.into_iter().flatten() {
        h.shutdown_and_join();
    }
}

#[test]
fn router_proxy_routes_merges_and_reports() {
    let instances: Vec<ServerHandle> = (0..2).map(|_| start_instance()).collect();
    let seeds: Vec<String> = instances.iter().map(|h| h.addr().to_string()).collect();
    let router = RouterServer::start(TierConfig {
        addr: "127.0.0.1:0".to_string(),
        seeds,
        membership: MembershipConfig {
            cluster: "demo".to_string(),
            heartbeat: Duration::from_millis(20),
            probe_timeout: Duration::from_millis(500),
            policy: HealthPolicy {
                suspect_after: 2,
                down_after: 4,
                suspect_cost_factor: 1.0,
            },
            replicas: 1,
        },
    })
    .expect("router binds loopback");
    // Wait for the first heartbeat to mark instances healthy.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while router.membership().counts().0 < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "heartbeat never marked the instances healthy"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut c =
        Client::connect_timeout(router.addr(), Duration::from_secs(2)).expect("router answers");
    c.register_profile(profile("app"))
        .expect("broadcast registration");
    let (_, preds) = c
        .compare("app", &[mapping(&[0, 1])])
        .expect("hash-forwarded compare");
    assert_eq!(preds.len(), 1);

    let (hash, primary, replicas) = c.route("demo", "app").expect("local route answer");
    assert_eq!(hash, cbes_server::route_key_hash("demo", "app"));
    assert_eq!(replicas.len(), 1);
    assert_ne!(primary.index, replicas[0].index);

    let report = c.membership().expect("local membership answer");
    assert_eq!(report.instances.len(), 2);
    assert_eq!(report.cluster, "demo");

    let stats = c.stats().expect("merged stats");
    assert!(stats.served >= 2, "tier-wide served count is merged");
    let metrics = c.metrics().expect("merged metrics");
    assert!(metrics.counters.contains_key("server.served"));

    // Shutdown through the router drains the whole tier.
    c.shutdown().expect("broadcast shutdown");
    for h in instances {
        h.join();
    }
    router.shutdown_and_join();
}

#[test]
fn heartbeat_thread_marks_dead_instances_down() {
    let a = start_instance();
    let b = start_instance();
    let membership = tier_membership(vec![a.addr().to_string(), b.addr().to_string()]);
    let stop = Arc::new(AtomicBool::new(false));
    let hb = cbes_router::tier::spawn_heartbeat(membership.clone(), stop.clone());

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while membership.counts().0 < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "instances never healthy"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    b.shutdown_and_join();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while membership.counts().2 < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "dead instance never marked down"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(membership.leader(), Some(0));
    stop.store(true, std::sync::atomic::Ordering::Release);
    hb.join().expect("heartbeat thread exits");
    a.shutdown_and_join();
}

#[test]
fn artifact_verbs_broadcast_tier_wide_and_status_merges_per_instance() {
    let state_root =
        std::env::temp_dir().join(format!("cbes-tier-artifacts-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_root);
    let start_reconfigurable = |slot: usize| {
        let service = Arc::new(CbesService::self_calibrated(
            Arc::new(two_switch_demo()),
            ForecastKind::LastValue,
        ));
        Server::start(
            service,
            ServerConfig {
                workers: 1,
                state_dir: Some(state_root.join(format!("i{slot}"))),
                ..ServerConfig::default()
            },
        )
        .expect("loopback bind succeeds")
    };
    let instances: Vec<ServerHandle> = (0..2).map(start_reconfigurable).collect();
    let seeds: Vec<String> = instances.iter().map(|h| h.addr().to_string()).collect();
    let router = RouterServer::start(TierConfig {
        addr: "127.0.0.1:0".to_string(),
        seeds: seeds.clone(),
        membership: MembershipConfig {
            cluster: "demo".to_string(),
            heartbeat: Duration::from_millis(20),
            probe_timeout: Duration::from_millis(500),
            policy: HealthPolicy {
                suspect_after: 2,
                down_after: 4,
                suspect_cost_factor: 1.0,
            },
            replicas: 1,
        },
    })
    .expect("router binds loopback");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while router.membership().counts().0 < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "heartbeat never marked the instances healthy"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut c =
        Client::connect_timeout(router.addr(), Duration::from_secs(2)).expect("router answers");

    // Stage + apply broadcast to every instance; each journals v1 and
    // flips with exactly one epoch bump.
    let limits = r#"{"max_rps": 50.0, "shed_retry_after_ms": 5}"#;
    let (v, state, _) = c.stage("serving_limits", limits).expect("tier-wide stage");
    assert_eq!((v, state.as_str()), (1, "staged"));
    let (_, state, _) = c.apply().expect("tier-wide apply");
    assert_eq!(state, "soaking");

    // The merged status carries one row per instance, sorted by address.
    let status = c.artifact_status().expect("merged status");
    assert_eq!(status.instances.len(), 2, "one lifecycle row per instance");
    let mut sorted = status
        .instances
        .iter()
        .map(|i| i.addr.clone())
        .collect::<Vec<_>>();
    sorted.sort();
    assert_eq!(
        status
            .instances
            .iter()
            .map(|i| i.addr.clone())
            .collect::<Vec<_>>(),
        sorted,
        "merge sorts rows by address"
    );
    for row in &status.instances {
        assert!(row.reconfigurable);
        assert_eq!(row.status.soaking.as_ref().map(|s| s.version), Some(1));
    }
    for addr in &seeds {
        let mut direct = Client::connect_timeout(addr.as_str(), Duration::from_millis(500))
            .expect("instance answers");
        assert_eq!(
            direct.stats().expect("stats").epoch,
            1,
            "each instance flipped with exactly one epoch bump"
        );
    }

    // A lifecycle refusal from any instance is relayed with its address.
    match c.accept().and_then(|_| c.accept()) {
        Err(cbes_server::client::ClientError::Server { message, .. }) => {
            assert!(
                seeds.iter().any(|s| message.contains(s.as_str())),
                "error names the refusing instance: {message}"
            );
        }
        other => panic!("second accept must be refused tier-wide, got {other:?}"),
    }

    c.shutdown().expect("broadcast shutdown");
    for h in instances {
        h.join();
    }
    router.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&state_root);
}
