//! The hash-aware client: picks endpoints by routing key and fails
//! over along the replica set.
//!
//! Each seeded instance gets its own [`RetryingClient`] (lazy dial,
//! bounded in-place retries honouring `retry_after_ms`). On top of
//! that, [`RoutingClient`] cycles a key's candidate list — primary
//! first, then ring successors not classified `Down` — so a crashed or
//! draining instance costs one inner retry budget before the request
//! lands on a replica. Give-ups are terminal and counted under
//! `router.giveups`; a zero there plus per-request success is the
//! tier's "no lost requests" invariant.

use std::sync::Arc;
use std::time::Duration;

use crate::membership::Membership;
use crate::ring::HashRing;
use cbes_core::eval::Prediction;
use cbes_core::health::NodeHealth;
use cbes_core::mapping::Mapping;
use cbes_obs::{names, Counter, MetricsSnapshot, Registry};
use cbes_server::protocol::{error_kind, MembershipReport, StatsReport};
use cbes_server::{route_key_hash, ClientError, RetryPolicy, RetryingClient};
use cbes_trace::AppProfile;

/// A tier-level request failure.
#[derive(Debug)]
pub enum RouterError {
    /// Every candidate and retry cycle was exhausted; the last error
    /// seen is attached.
    Exhausted(ClientError),
    /// A terminal (non-transient) failure from an instance — the
    /// request itself was rejected, so failing over would just replay
    /// the rejection.
    Client(ClientError),
    /// The tier has no instances to send to.
    NoInstances,
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Exhausted(e) => write!(f, "every replica exhausted; last error: {e}"),
            RouterError::Client(e) => write!(f, "{e}"),
            RouterError::NoInstances => write!(f, "the tier has no seeded instances"),
        }
    }
}

impl std::error::Error for RouterError {}

/// True for failures worth trying the next replica on: transport
/// errors, shed/timeout exhaustion, and draining instances. Service
/// rejections (unknown app, bad mapping) are deterministic and travel
/// with the request, not the instance.
fn transient(err: &ClientError) -> bool {
    match err {
        ClientError::Io(_) => true,
        ClientError::Server { kind, .. } => {
            kind == error_kind::OVERLOADED
                || kind == error_kind::TIMEOUT
                || kind == error_kind::SHUTTING_DOWN
        }
        ClientError::Protocol(_) => false,
    }
}

/// A client spreading requests over the tier by consistent hash of the
/// `(cluster, app)` key, with health-aware failover.
pub struct RoutingClient {
    membership: Arc<Membership>,
    ring: HashRing,
    conns: Vec<RetryingClient>,
    giveups: Arc<Counter>,
    /// Full passes over a key's candidate list before giving up.
    max_cycles: u32,
    /// Sleep between full candidate passes; grows linearly per cycle.
    cycle_backoff: Duration,
}

impl RoutingClient {
    /// A routing client over `membership`'s seed list. `policy` tunes
    /// the *per-instance* retry budget — keep `max_attempts` small so a
    /// dead instance hands over to its replica quickly; the outer
    /// cycle budget provides the persistence.
    pub fn new(membership: Arc<Membership>, io_timeout: Duration, policy: RetryPolicy) -> Self {
        let conns = membership
            .addrs()
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                // Distinct jitter seeds per instance so parallel
                // backoffs do not synchronise.
                let mut p = policy.clone();
                p.seed = p.seed.wrapping_add(i as u64);
                RetryingClient::new(addr.clone(), io_timeout, p)
            })
            .collect();
        RoutingClient {
            ring: HashRing::new(membership.len()),
            conns,
            giveups: Registry::global().counter(names::ROUTER_GIVEUPS),
            max_cycles: 50,
            cycle_backoff: Duration::from_millis(2),
            membership,
        }
    }

    /// Override the outer failover budget (cycles over the candidate
    /// list, and the base sleep between cycles).
    pub fn with_limits(mut self, max_cycles: u32, cycle_backoff: Duration) -> Self {
        self.max_cycles = max_cycles.max(1);
        self.cycle_backoff = cycle_backoff;
        self
    }

    /// The hash of `(cluster, app)` under the membership's cluster name.
    pub fn key_hash(&self, app: &str) -> u64 {
        route_key_hash(&self.membership.config().cluster, app)
    }

    /// The membership table this client consults.
    pub fn membership(&self) -> &Arc<Membership> {
        &self.membership
    }

    /// Run one hash-routed request: candidates in ring order, `Down`
    /// instances skipped, the whole list retried `max_cycles` times
    /// with a growing pause (so a mid-failover tier gets time to mark
    /// the dead instance `Down`).
    fn call_routed<T>(
        &mut self,
        key_hash: u64,
        mut op: impl FnMut(&mut RetryingClient) -> Result<T, ClientError>,
    ) -> Result<T, RouterError> {
        if self.conns.is_empty() {
            return Err(RouterError::NoInstances);
        }
        let candidates = self
            .ring
            .candidates(key_hash, self.membership.config().replicas + 1);
        let primary = candidates.first().copied();
        let mut last: Option<ClientError> = None;
        for cycle in 0..self.max_cycles {
            let live: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| self.membership.health(i) != NodeHealth::Down)
                .collect();
            // With every candidate Down (membership may lag reality),
            // try them all anyway rather than refusing outright.
            let targets = if live.is_empty() { &candidates } else { &live };
            for &i in targets {
                let conn = match self.conns.get_mut(i) {
                    Some(c) => c,
                    None => continue,
                };
                match op(conn) {
                    Ok(value) => {
                        if Some(i) == primary {
                            self.membership.count_routed(i);
                        } else {
                            self.membership.count_failed_over(i);
                        }
                        return Ok(value);
                    }
                    Err(e) if transient(&e) => last = Some(e),
                    Err(e) => return Err(RouterError::Client(e)),
                }
            }
            std::thread::sleep(self.cycle_backoff.saturating_mul(cycle + 1));
        }
        self.giveups.incr();
        Err(RouterError::Exhausted(last.unwrap_or_else(|| {
            ClientError::Protocol("no candidate was attempted".to_string())
        })))
    }

    /// Compare candidate mappings on the key's owning instance.
    pub fn compare(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, Vec<Prediction>), RouterError> {
        let h = self.key_hash(app);
        self.call_routed(h, |c| c.compare(app, mappings))
    }

    /// `best_of` on the key's owning instance.
    pub fn best_of(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, usize, Prediction), RouterError> {
        let h = self.key_hash(app);
        self.call_routed(h, |c| c.best_of(app, mappings))
    }

    /// One-shot `batch` evaluation on the key's owning instance: every
    /// candidate is predicted against the same snapshot epoch.
    pub fn batch(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, Vec<Prediction>), RouterError> {
        let h = self.key_hash(app);
        self.call_routed(h, |c| c.batch(app, mappings))
    }

    /// `schedule` on the key's owning instance.
    pub fn schedule(
        &mut self,
        app: &str,
        pool: &[u32],
        iters: u32,
        seed: u64,
    ) -> Result<(u64, Mapping, f64), RouterError> {
        let h = self.key_hash(app);
        self.call_routed(h, |c| c.schedule(app, pool, iters, seed))
    }

    /// Register a profile on every usable instance (a keyed upsert, so
    /// replays converge). Fails if any live instance rejects it;
    /// instances currently `Down` are skipped and must be re-seeded by
    /// the operator on recovery.
    pub fn register_profile(&mut self, profile: &AppProfile) -> Result<usize, RouterError> {
        let usable = self.membership.usable();
        if usable.is_empty() {
            return Err(RouterError::NoInstances);
        }
        let mut registered = 0;
        for i in usable {
            let conn = match self.conns.get_mut(i) {
                Some(c) => c,
                None => continue,
            };
            match conn.register_profile(profile) {
                Ok(()) => {
                    registered += 1;
                    self.membership.count_forwarded(i);
                }
                Err(e) if transient(&e) => continue,
                Err(e) => return Err(RouterError::Client(e)),
            }
        }
        if registered == 0 {
            return Err(RouterError::NoInstances);
        }
        Ok(registered)
    }

    /// Stats of one instance by index.
    pub fn stats_of(&mut self, instance: usize) -> Result<StatsReport, RouterError> {
        let conn = self
            .conns
            .get_mut(instance)
            .ok_or(RouterError::NoInstances)?;
        conn.stats().map_err(RouterError::Client)
    }

    /// Metrics snapshots of every usable instance, merged into one
    /// tier-wide report (counters and histograms add; gauges last-wins).
    pub fn merged_metrics(&mut self) -> Result<MetricsSnapshot, RouterError> {
        let usable = self.membership.usable();
        let mut merged: Option<MetricsSnapshot> = None;
        for i in usable {
            let conn = match self.conns.get_mut(i) {
                Some(c) => c,
                None => continue,
            };
            match conn.metrics() {
                Ok(snap) => match merged.as_mut() {
                    Some(m) => m.merge(&snap),
                    None => merged = Some(snap),
                },
                Err(e) if transient(&e) => continue,
                Err(e) => return Err(RouterError::Client(e)),
            }
        }
        merged.ok_or(RouterError::NoInstances)
    }

    /// The tier's membership report, from the local table (no wire
    /// round-trip).
    pub fn membership_report(&self) -> MembershipReport {
        self.membership.report()
    }
}

impl std::fmt::Debug for RoutingClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingClient")
            .field("instances", &self.conns.len())
            .field("max_cycles", &self.max_cycles)
            .finish()
    }
}
