//! The forwarding plan: how each wire-protocol action traverses the
//! tier.
//!
//! [`FORWARD_MODES`] is index-aligned with
//! [`cbes_server::protocol::ACTIONS`] — entry `i` names the forwarding
//! mode of action `i`. The `cbes-analyze` drift rule pins the
//! alignment, the mode vocabulary, and the DESIGN.md forwarding table
//! against this array, so a new protocol action cannot land without a
//! routing decision.

/// Forwarding mode of each action, index-aligned with
/// [`cbes_server::protocol::ACTIONS`]:
///
/// - `"hash"` — dispatched to the consistent-hash owner of the
///   `(cluster, app)` key, failing over along the replica set.
/// - `"leader"` — sent to the replication leader, which then pushes the
///   resulting epoch to followers.
/// - `"merge"` — fanned out to every usable instance; replies are
///   merged into one tier-wide report.
/// - `"broadcast"` — sent to every usable instance; all must accept.
/// - `"local"` — answered by the router itself from its own state.
pub const FORWARD_MODES: [&str; 20] = [
    "broadcast", // register_profile: every instance needs the profile
    "hash",      // compare
    "hash",      // best_of
    "hash",      // schedule
    "leader",    // observe_load: leader observes, then replicates
    "leader",    // observe_partial
    "merge",     // stats
    "merge",     // metrics
    "broadcast", // shutdown: drain the whole tier
    "local",     // route: placement is the router's own state
    "broadcast", // replicate: relay the leader's sweep as-is
    "local",     // membership: the membership table lives here
    "hash",      // batch: same key-owner placement as compare
    "merge",     // trace: a trace's spans are scattered across instances
    "broadcast", // dump_flight: every instance dumps its own recorder
    "broadcast", // stage: every instance journals the same artifact
    "broadcast", // apply: the whole tier flips together
    "broadcast", // accept: tier-wide promotion
    "broadcast", // rollback: tier-wide restore
    "merge",     // artifact_status: one lifecycle row per instance
];

/// A parsed entry of [`FORWARD_MODES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardMode {
    /// Route to the hash owner of the `(cluster, app)` key.
    Hash,
    /// Send to the replication leader.
    Leader,
    /// Fan out to all usable instances and merge the replies.
    Merge,
    /// Send to all usable instances.
    Broadcast,
    /// Answer from the router's own state.
    Local,
}

impl ForwardMode {
    /// Parse one [`FORWARD_MODES`] entry.
    pub fn parse(mode: &str) -> Option<ForwardMode> {
        match mode {
            "hash" => Some(ForwardMode::Hash),
            "leader" => Some(ForwardMode::Leader),
            "merge" => Some(ForwardMode::Merge),
            "broadcast" => Some(ForwardMode::Broadcast),
            "local" => Some(ForwardMode::Local),
            _ => None,
        }
    }
}

/// The forwarding mode of the action at `action_index` (from
/// [`cbes_server::protocol::Request::action_index`]).
pub fn mode_of(action_index: usize) -> ForwardMode {
    FORWARD_MODES
        .get(action_index)
        .and_then(|m| ForwardMode::parse(m))
        // Unknown actions stay at the router boundary instead of being
        // forwarded somewhere surprising.
        .unwrap_or(ForwardMode::Local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_server::protocol::ACTIONS;

    #[test]
    fn every_action_has_a_valid_mode() {
        assert_eq!(FORWARD_MODES.len(), ACTIONS.len());
        for (action, mode) in ACTIONS.iter().zip(FORWARD_MODES) {
            assert!(
                ForwardMode::parse(mode).is_some(),
                "action {action} has invalid mode {mode}"
            );
        }
    }

    #[test]
    fn eval_actions_are_hash_routed() {
        for (i, action) in ACTIONS.iter().enumerate() {
            let hash_routed = mode_of(i) == ForwardMode::Hash;
            let is_eval = matches!(*action, "compare" | "best_of" | "schedule" | "batch");
            assert_eq!(hash_routed, is_eval, "{action}");
        }
    }

    #[test]
    fn out_of_range_actions_stay_local() {
        assert_eq!(mode_of(usize::MAX), ForwardMode::Local);
    }
}
