//! CBES scale-out tier: spread evaluation requests over N `cbes-server`
//! instances.
//!
//! A single daemon caps out around what one core can evaluate and is a
//! single point of failure. This crate adds the three pieces a serving
//! tier needs on top of the existing daemon, reusing machinery the
//! workspace already has rather than inventing new consensus:
//!
//! - **Placement** ([`ring`]): a consistent-hash ring over the seeded
//!   instances. The routing key is `(cluster, application)` — hashed by
//!   [`cbes_server::route_key_hash`] so every client, router, and daemon
//!   agree — and each key has an ordered replica set for failover.
//! - **Membership** ([`membership`]): a static seed list plus heartbeat
//!   probes, driving per-instance `Healthy → Suspect → Down` transitions
//!   through the same `HealthTracker` state machine the core uses for
//!   cluster nodes. Requests fail over to replicas as soon as an
//!   instance leaves `Healthy`.
//! - **Replication** ([`tier`]): the lowest usable instance is the
//!   leader; monitoring sweeps go to it first and are then pushed to
//!   followers as `Replicate { epoch, .. }`, reusing the epoch-stamped
//!   snapshot machinery — followers adopt an epoch at most once, so
//!   replays are harmless, and staleness is measurable in epochs.
//!
//! [`RoutingClient`] is the client-side entry point (hash-aware endpoint
//! selection over retrying per-instance connections); [`RouterServer`]
//! is a thin proxy daemon speaking the ordinary CBES wire protocol for
//! operators and dashboards (`cbes route serve` / `cbes route status`).
//! [`plan::FORWARD_MODES`] pins how every protocol action traverses the
//! tier; the `cbes-analyze` drift rule keeps it aligned with the
//! protocol's action table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod membership;
pub mod plan;
pub mod ring;
pub mod tier;

pub use client::{RouterError, RoutingClient};
pub use membership::{Membership, MembershipConfig};
pub use plan::{ForwardMode, FORWARD_MODES};
pub use ring::HashRing;
pub use tier::{RouterServer, RouterTierHandle, TierConfig};
