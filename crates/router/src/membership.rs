//! The tier membership table: static seeds, heartbeat-driven health,
//! per-instance epochs and routing counters.
//!
//! Instance health reuses the core's `HealthTracker` state machine —
//! the same `Healthy → Suspect → Down` transitions cluster nodes go
//! through, but driven by heartbeat probes instead of monitoring
//! sweeps: a probe sweep reports which instances answered, silent
//! instances age toward `Suspect` and `Down` under the policy, and one
//! successful probe heals an instance completely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cbes_core::health::{HealthPolicy, HealthTracker, NodeHealth};
use cbes_obs::{names, Counter, Registry};
use cbes_server::protocol::{InstanceInfo, MembershipReport};
use parking_lot::RwLock;

/// Tuning for the membership table and its heartbeat loop.
#[derive(Debug, Clone)]
pub struct MembershipConfig {
    /// Cluster name the tier serves (the first half of routing keys).
    pub cluster: String,
    /// Interval between heartbeat probe sweeps.
    pub heartbeat: Duration,
    /// Dial/read deadline for one probe.
    pub probe_timeout: Duration,
    /// Missed-probe thresholds for `Suspect` / `Down`.
    pub policy: HealthPolicy,
    /// Failover candidates per key beyond the primary.
    pub replicas: usize,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            cluster: "default".to_string(),
            heartbeat: Duration::from_millis(250),
            probe_timeout: Duration::from_millis(500),
            policy: HealthPolicy {
                suspect_after: 1,
                down_after: 3,
                suspect_cost_factor: 1.0,
            },
            replicas: 1,
        }
    }
}

/// Mutable membership state behind the table's lock.
struct State {
    tracker: HealthTracker,
    /// Last epoch observed per instance (from probes or replication).
    epochs: Vec<u64>,
    /// Heartbeat probe sweeps completed.
    heartbeats: u64,
}

/// Per-instance routing counters, updated lock-free.
struct InstanceCounters {
    routed: Counter,
    forwarded: Counter,
    failed_over: Counter,
}

/// The shared membership table: seed addresses, health, epochs, and
/// per-instance routing counters. Cheap to share (`Arc<Membership>`);
/// the health/epoch state sits behind one short-held lock while the
/// counters are atomics.
pub struct Membership {
    addrs: Vec<String>,
    config: MembershipConfig,
    state: RwLock<State>,
    counters: Vec<InstanceCounters>,
    /// Tier-wide aggregates in the process registry.
    routed_total: Arc<Counter>,
    forwarded_total: Arc<Counter>,
    failed_over_total: Arc<Counter>,
    /// Replication lag at the last heartbeat sweep, for the
    /// lag-jump flight trigger.
    last_lag: AtomicU64,
}

impl Membership {
    /// A table over the static seed list `addrs`.
    pub fn new(addrs: Vec<String>, config: MembershipConfig) -> Arc<Membership> {
        let n = addrs.len();
        let registry = Registry::global();
        Arc::new(Membership {
            counters: (0..n)
                .map(|_| InstanceCounters {
                    routed: Counter::new(),
                    forwarded: Counter::new(),
                    failed_over: Counter::new(),
                })
                .collect(),
            state: RwLock::new(State {
                tracker: HealthTracker::new(n, config.policy),
                epochs: vec![0; n],
                heartbeats: 0,
            }),
            routed_total: registry.counter(names::ROUTER_ROUTED),
            forwarded_total: registry.counter(names::ROUTER_FORWARDED),
            failed_over_total: registry.counter(names::ROUTER_FAILED_OVER),
            last_lag: AtomicU64::new(0),
            addrs,
            config,
        })
    }

    /// The static seed addresses, in ring order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Number of seeded instances.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when no instances are seeded.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The table's configuration.
    pub fn config(&self) -> &MembershipConfig {
        &self.config
    }

    /// Record one heartbeat sweep: `probes[i]` is `Some(epoch)` when
    /// instance `i` answered. Returns the health transitions this sweep
    /// caused.
    pub fn record_probes(&self, probes: &[Option<u64>]) -> u64 {
        let mut state = self.state.write();
        if probes.len() != state.epochs.len() {
            // A malformed sweep (arity drift) is dropped rather than
            // fed to the tracker, which asserts its arity.
            return 0;
        }
        let reported: Vec<bool> = probes.iter().map(|p| p.is_some()).collect();
        for (slot, probe) in state.epochs.iter_mut().zip(probes) {
            if let Some(epoch) = probe {
                *slot = (*slot).max(*epoch);
            }
        }
        state.heartbeats += 1;
        let changed = state.tracker.record_sweep(&reported);
        let (h, s, d) = state.tracker.counts();
        drop(state);
        let registry = Registry::global();
        registry.counter(names::ROUTER_HEARTBEATS).incr();
        registry.counter(names::ROUTER_TRANSITIONS).add(changed);
        registry
            .gauge(names::ROUTER_INSTANCES_HEALTHY)
            .set(h as f64);
        registry
            .gauge(names::ROUTER_INSTANCES_SUSPECT)
            .set(s as f64);
        registry.gauge(names::ROUTER_INSTANCES_DOWN).set(d as f64);
        let lag = self.replication_lag();
        registry
            .gauge(names::ROUTER_REPLICATION_LAG)
            .set(lag as f64);
        // Flight triggers: an instance health transition, or the
        // replication lag jumping while already past one in-flight
        // sweep, flags the anomaly and (debounced) dumps the recorder.
        let prev_lag = self.last_lag.swap(lag, Ordering::Relaxed);
        let mut dump_reason = None;
        if changed > 0 {
            registry.flight().record(
                "instance_transition",
                format!("{changed} instance health transition(s) in one heartbeat sweep"),
                0,
            );
            dump_reason = Some("instance_transition");
        }
        if lag >= 2 && lag > prev_lag {
            registry.flight().record(
                "replication_lag",
                format!("replication lag jumped {prev_lag} -> {lag} epochs"),
                0,
            );
            dump_reason = Some("replication_lag");
        }
        if let Some(reason) = dump_reason {
            if registry
                .flight()
                .auto_dump(reason, registry.spans())
                .is_some()
            {
                registry.counter(names::FLIGHT_DUMPS).incr();
            }
        }
        changed
    }

    /// Note the epoch instance `i` acknowledged (probe or replication).
    pub fn note_epoch(&self, instance: usize, epoch: u64) {
        let mut state = self.state.write();
        if let Some(slot) = state.epochs.get_mut(instance) {
            *slot = (*slot).max(epoch);
        }
    }

    /// Health of instance `i` (`Down` for out-of-range indices).
    pub fn health(&self, instance: usize) -> NodeHealth {
        if instance >= self.addrs.len() {
            return NodeHealth::Down;
        }
        self.state
            .read()
            .tracker
            .view()
            .health(cbes_cluster::NodeId(instance as u32))
    }

    /// Per-state instance counts `(healthy, suspect, down)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        self.state.read().tracker.counts()
    }

    /// Cumulative instance health transitions.
    pub fn transitions(&self) -> u64 {
        self.state.read().tracker.transitions()
    }

    /// Indices of instances *not* classified `Down`, in seed order —
    /// the set requests may be sent to.
    pub fn usable(&self) -> Vec<usize> {
        let state = self.state.read();
        let view = state.tracker.view();
        (0..self.addrs.len())
            .filter(|&i| view.health(cbes_cluster::NodeId(i as u32)) != NodeHealth::Down)
            .collect()
    }

    /// The replication leader: the first `Healthy` instance in seed
    /// order, else the first `Suspect` one, else `None` (whole tier
    /// down). Deterministic, so every router picks the same leader for
    /// a given health view.
    pub fn leader(&self) -> Option<usize> {
        let state = self.state.read();
        let view = state.tracker.view();
        let health = |i: usize| view.health(cbes_cluster::NodeId(i as u32));
        (0..self.addrs.len())
            .find(|&i| health(i) == NodeHealth::Healthy)
            .or_else(|| (0..self.addrs.len()).find(|&i| health(i) == NodeHealth::Suspect))
    }

    /// Leader epoch minus the slowest usable follower's epoch — the
    /// tier's snapshot staleness bound, in epochs. `0` for a tier with
    /// no leader or no followers.
    pub fn replication_lag(&self) -> u64 {
        let leader = match self.leader() {
            Some(l) => l,
            None => return 0,
        };
        let state = self.state.read();
        let view = state.tracker.view();
        let leader_epoch = state.epochs.get(leader).copied().unwrap_or(0);
        state
            .epochs
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                i != leader && view.health(cbes_cluster::NodeId(i as u32)) != NodeHealth::Down
            })
            .map(|(_, &e)| leader_epoch.saturating_sub(e))
            .max()
            .unwrap_or(0)
    }

    /// Count a hash-routed dispatch to `instance` (as key primary).
    pub fn count_routed(&self, instance: usize) {
        if let Some(c) = self.counters.get(instance) {
            c.routed.incr();
        }
        self.routed_total.incr();
    }

    /// Count a fan-out/relay send to `instance`.
    pub fn count_forwarded(&self, instance: usize) {
        if let Some(c) = self.counters.get(instance) {
            c.forwarded.incr();
        }
        self.forwarded_total.incr();
    }

    /// Count a request served by `instance` as a failover target.
    pub fn count_failed_over(&self, instance: usize) {
        if let Some(c) = self.counters.get(instance) {
            c.failed_over.incr();
        }
        self.failed_over_total.incr();
    }

    /// The wire-protocol membership report for this table.
    pub fn report(&self) -> MembershipReport {
        let state = self.state.read();
        let view = state.tracker.view();
        let leader = {
            let health = |i: usize| view.health(cbes_cluster::NodeId(i as u32));
            (0..self.addrs.len())
                .find(|&i| health(i) == NodeHealth::Healthy)
                .or_else(|| (0..self.addrs.len()).find(|&i| health(i) == NodeHealth::Suspect))
        };
        let instances: Vec<InstanceInfo> = self
            .addrs
            .iter()
            .enumerate()
            .map(|(i, addr)| InstanceInfo {
                index: i,
                addr: addr.clone(),
                health: view
                    .health(cbes_cluster::NodeId(i as u32))
                    .label()
                    .to_string(),
                epoch: state.epochs.get(i).copied().unwrap_or(0),
                leader: leader == Some(i),
                routed: self.counters.get(i).map(|c| c.routed.get()).unwrap_or(0),
                forwarded: self.counters.get(i).map(|c| c.forwarded.get()).unwrap_or(0),
                failed_over: self
                    .counters
                    .get(i)
                    .map(|c| c.failed_over.get())
                    .unwrap_or(0),
            })
            .collect();
        let max_epoch = state.epochs.iter().copied().max().unwrap_or(0);
        let heartbeats = state.heartbeats;
        let transitions = state.tracker.transitions();
        drop(state);
        MembershipReport {
            cluster: self.config.cluster.clone(),
            instances,
            leader,
            max_epoch,
            replication_lag: self.replication_lag(),
            heartbeats,
            transitions,
        }
    }
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (h, s, d) = self.counts();
        f.debug_struct("Membership")
            .field("addrs", &self.addrs)
            .field("healthy", &h)
            .field("suspect", &s)
            .field("down", &d)
            .field("leader", &self.leader())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> Arc<Membership> {
        Membership::new(
            (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect(),
            MembershipConfig {
                policy: HealthPolicy {
                    suspect_after: 1,
                    down_after: 3,
                    suspect_cost_factor: 1.0,
                },
                ..MembershipConfig::default()
            },
        )
    }

    #[test]
    fn silent_instances_degrade_and_failover_excludes_them() {
        let m = table(3);
        assert_eq!(m.counts(), (3, 0, 0));
        assert_eq!(m.leader(), Some(0));
        // Instance 0 stops answering: ages through Suspect to Down.
        for sweep in 1..=4u64 {
            m.record_probes(&[None, Some(sweep), Some(sweep)]);
        }
        assert_eq!(m.counts(), (2, 0, 1));
        assert_eq!(m.usable(), vec![1, 2]);
        assert_eq!(
            m.leader(),
            Some(1),
            "leadership moves off the dead instance"
        );
        assert!(m.transitions() >= 2, "Healthy→Suspect→Down");
        let report = m.report();
        assert_eq!(report.instances[0].health, "down");
        assert_eq!(report.leader, Some(1));
        assert!(report.instances[1].leader);
    }

    #[test]
    fn one_good_probe_heals_an_instance() {
        let m = table(2);
        m.record_probes(&[None, Some(1)]);
        m.record_probes(&[None, Some(2)]);
        assert_eq!(m.counts(), (1, 1, 0), "instance 0 is suspect");
        m.record_probes(&[Some(3), Some(3)]);
        assert_eq!(m.counts(), (2, 0, 0));
        assert_eq!(m.leader(), Some(0));
    }

    #[test]
    fn replication_lag_tracks_the_slowest_usable_follower() {
        let m = table(3);
        m.record_probes(&[Some(10), Some(9), Some(8)]);
        assert_eq!(m.replication_lag(), 2);
        // The slow follower going Down removes it from the bound.
        for _ in 0..4 {
            m.record_probes(&[Some(10), Some(10), None]);
        }
        assert_eq!(m.counts(), (2, 0, 1));
        assert_eq!(m.replication_lag(), 0);
    }

    #[test]
    fn epochs_never_move_backwards() {
        let m = table(1);
        m.note_epoch(0, 5);
        m.record_probes(&[Some(3)]);
        assert_eq!(
            m.report().max_epoch,
            5,
            "stale probe cannot lower the epoch"
        );
        m.note_epoch(9, 100); // out-of-range: ignored
        assert_eq!(m.report().max_epoch, 5);
    }

    #[test]
    fn per_instance_counters_land_in_the_report() {
        let m = table(2);
        m.count_routed(0);
        m.count_routed(0);
        m.count_failed_over(1);
        m.count_forwarded(1);
        let report = m.report();
        assert_eq!(report.instances[0].routed, 2);
        assert_eq!(report.instances[1].failed_over, 1);
        assert_eq!(report.instances[1].forwarded, 1);
    }

    #[test]
    fn malformed_probe_sweeps_are_dropped() {
        let m = table(2);
        assert_eq!(m.record_probes(&[Some(1)]), 0);
        assert_eq!(m.counts(), (2, 0, 0), "state is untouched");
    }
}
