//! The tier runtime: heartbeat probing, leader-driven snapshot
//! replication, and a proxy daemon speaking the ordinary CBES wire
//! protocol.
//!
//! Replication is leader-push: monitoring sweeps go to the leader
//! (lowest usable instance), which assigns the epoch; the router then
//! relays the same sweep to every other usable instance as
//! `Replicate { epoch, .. }`. Followers adopt an epoch at most once,
//! so the push is idempotent, and because the push happens inline the
//! steady-state staleness between leader and followers is bounded by
//! one in-flight sweep — the heartbeat publishes the measured bound as
//! the `router.replication_lag_epochs` gauge.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::membership::{Membership, MembershipConfig};
use crate::plan::{mode_of, ForwardMode};
use crate::ring::HashRing;
use cbes_cluster::load::LoadState;
use cbes_obs::{names, MetricsSnapshot, Registry};
use cbes_server::protocol::{
    encode, error_kind, route_key_hash, Request, RequestEnvelope, Response, ResponseEnvelope,
    SpanSnapshot, StatsReport,
};
use cbes_server::{Client, ClientError};

/// How often blocked tier threads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Configuration for [`RouterServer::start`].
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Router bind address; port 0 picks a free port.
    pub addr: String,
    /// Seed addresses of the `cbes-server` instances, in ring order.
    pub seeds: Vec<String>,
    /// Membership tuning (heartbeat cadence, health policy, replicas).
    pub membership: MembershipConfig,
}

/// Probe every instance once: a `Stats` round-trip within the probe
/// timeout, yielding the instance's epoch. Returns one entry per seed.
pub fn probe_instances(membership: &Membership) -> Vec<Option<u64>> {
    let timeout = membership.config().probe_timeout;
    membership
        .addrs()
        .iter()
        .map(|addr| {
            Client::connect_timeout(addr.as_str(), timeout)
                .and_then(|mut c| c.stats())
                .ok()
                .map(|stats| stats.epoch)
        })
        .collect()
}

/// Run the heartbeat loop until `shutdown` flips: probe all instances,
/// feed the sweep to the membership table, sleep one interval.
pub fn heartbeat_loop(membership: &Arc<Membership>, shutdown: &AtomicBool) {
    let interval = membership.config().heartbeat;
    while !shutdown.load(Ordering::Acquire) {
        let probes = probe_instances(membership);
        membership.record_probes(&probes);
        // Sleep in small slices so shutdown is prompt.
        let mut left = interval;
        while !left.is_zero() && !shutdown.load(Ordering::Acquire) {
            let slice = left.min(POLL_INTERVAL);
            std::thread::sleep(slice);
            left = left.saturating_sub(slice);
        }
    }
}

/// Spawn [`heartbeat_loop`] on its own thread.
pub fn spawn_heartbeat(membership: Arc<Membership>, shutdown: Arc<AtomicBool>) -> JoinHandle<()> {
    std::thread::spawn(move || heartbeat_loop(&membership, &shutdown))
}

/// Publish one monitoring sweep through the tier: the leader observes
/// it (assigning the epoch), then every other usable instance receives
/// it as `Replicate { epoch, .. }`. A dead leader is skipped in favour
/// of the next usable instance, whose replicated epoch keeps the line
/// monotone. Returns the published epoch.
pub fn observe_tier(
    membership: &Membership,
    load: &LoadState,
    silent: &[u32],
) -> Result<u64, ClientError> {
    let timeout = membership.config().probe_timeout;
    let mut order = membership.usable();
    if let Some(leader) = membership.leader() {
        order.retain(|&i| i != leader);
        order.insert(0, leader);
    }
    if order.is_empty() {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::NotConnected,
            "no usable instance to observe through",
        )));
    }
    let mut last: Option<ClientError> = None;
    for (slot, &i) in order.iter().enumerate() {
        let addr = match membership.addrs().get(i) {
            Some(a) => a.as_str(),
            None => continue,
        };
        let observed = Client::connect_timeout(addr, timeout).and_then(|mut c| {
            if silent.is_empty() {
                c.observe_load(load)
            } else {
                c.observe_partial(load, silent)
            }
        });
        let epoch = match observed {
            Ok(epoch) => epoch,
            Err(e) => {
                last = Some(e);
                continue;
            }
        };
        membership.note_epoch(i, epoch);
        if slot > 0 {
            membership.count_failed_over(i);
        }
        let replications = Registry::global().counter(names::ROUTER_REPLICATIONS);
        for &follower in &order {
            if follower == i {
                continue;
            }
            let addr = match membership.addrs().get(follower) {
                Some(a) => a.as_str(),
                None => continue,
            };
            let pushed = Client::connect_timeout(addr, timeout)
                .and_then(|mut c| c.replicate(epoch, load, silent));
            if let Ok((follower_epoch, _applied)) = pushed {
                membership.note_epoch(follower, follower_epoch.max(epoch));
                membership.count_forwarded(follower);
                replications.incr();
            }
            // A failed push is left to the heartbeat: the instance will
            // age toward Down, and its lag shows in the gauge meanwhile.
        }
        return Ok(epoch);
    }
    Err(last.unwrap_or_else(|| {
        ClientError::Protocol("no instance attempted the observation".to_string())
    }))
}

/// The routing proxy daemon: binds a socket, heartbeats its seeds, and
/// answers the CBES wire protocol by forwarding per
/// [`crate::plan::FORWARD_MODES`].
pub struct RouterServer;

impl RouterServer {
    /// Bind `config.addr`, start the heartbeat, and serve until shut
    /// down.
    pub fn start(config: TierConfig) -> std::io::Result<RouterTierHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let membership = Membership::new(config.seeds.clone(), config.membership.clone());
        let shutdown = Arc::new(AtomicBool::new(false));
        let heartbeat = spawn_heartbeat(membership.clone(), shutdown.clone());
        let acceptor = {
            let membership = membership.clone();
            let shutdown = shutdown.clone();
            std::thread::spawn(move || accept_loop(&listener, &membership, &shutdown))
        };
        Ok(RouterTierHandle {
            addr,
            membership,
            shutdown,
            threads: vec![heartbeat, acceptor],
        })
    }
}

/// Running-router handle: address, membership, shutdown trigger.
pub struct RouterTierHandle {
    addr: SocketAddr,
    membership: Arc<Membership>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterTierHandle {
    /// The address the router actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's membership table.
    pub fn membership(&self) -> &Arc<Membership> {
        &self.membership
    }

    /// Trigger shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the acceptor out of its blocking accept(). Unconditional:
        // a wire-level Shutdown flips the flag from inside dispatch()
        // without a wake, so the swap state cannot gate the connect.
        let _ = TcpStream::connect(self.addr);
    }

    /// Wait until the router drains — a wire-level `Shutdown` or a
    /// local [`Self::shutdown`] — and its threads exit.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Trigger shutdown and wait for the router's threads to exit.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

impl Drop for RouterTierHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, membership: &Arc<Membership>, shutdown: &Arc<AtomicBool>) {
    let self_addr = match listener.local_addr() {
        Ok(a) => a,
        Err(_) => return,
    };
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                let membership = membership.clone();
                let shutdown = shutdown.clone();
                std::thread::spawn(move || {
                    handle_connection(stream, &membership, &shutdown, self_addr)
                });
            }
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    membership: &Arc<Membership>,
    shutdown: &Arc<AtomicBool>,
    self_addr: SocketAddr,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    'conn: loop {
        line.clear();
        loop {
            if shutdown.load(Ordering::Acquire) {
                break 'conn;
            }
            match reader.read_line(&mut line) {
                Ok(0) => {
                    if line.trim().is_empty() {
                        break 'conn;
                    }
                    break;
                }
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break 'conn,
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<RequestEnvelope>(trimmed) {
            Ok(env) => {
                // A traced envelope joins the caller's trace here, and —
                // because `Client::request` stamps outgoing envelopes
                // from the live trace context — every hop this dispatch
                // forwards carries the same trace id with the router's
                // span as the remote parent.
                let _span = (env.trace_id != 0).then(|| {
                    Registry::global().spans().span_rooted(
                        names::SPAN_ROUTER_FORWARD,
                        env.trace_id,
                        env.parent_span,
                    )
                });
                ResponseEnvelope {
                    id: env.id,
                    response: dispatch(membership, shutdown, self_addr, env.request),
                }
            }
            Err(e) => ResponseEnvelope {
                id: 0,
                response: Response::error(error_kind::BAD_REQUEST, e.to_string()),
            },
        };
        let mut out = encode(&reply);
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
    }
}

/// Forward `request` to `addr` verbatim and relay the raw response
/// (error replies included — the proxy does not rewrite them).
fn forward(addr: &str, timeout: Duration, request: &Request) -> Result<Response, ClientError> {
    let mut client = Client::connect_timeout(addr, timeout)?;
    client.request(request.clone()).map(|env| env.response)
}

/// Answer one request per its forwarding mode.
fn dispatch(
    membership: &Arc<Membership>,
    shutdown: &Arc<AtomicBool>,
    self_addr: SocketAddr,
    request: Request,
) -> Response {
    let timeout = membership.config().probe_timeout;
    match mode_of(request.action_index()) {
        ForwardMode::Hash => {
            let app = match &request {
                Request::Compare { app, .. }
                | Request::BestOf { app, .. }
                | Request::Schedule { app, .. }
                | Request::Batch { app, .. } => app.clone(),
                _ => String::new(),
            };
            let hash = route_key_hash(&membership.config().cluster, &app);
            let ring = HashRing::new(membership.len());
            let candidates = ring.candidates(hash, membership.config().replicas + 1);
            let mut last: Option<Response> = None;
            for (slot, &i) in candidates.iter().enumerate() {
                if membership.health(i) == cbes_core::health::NodeHealth::Down {
                    continue;
                }
                let addr = match membership.addrs().get(i) {
                    Some(a) => a.as_str(),
                    None => continue,
                };
                match forward(addr, timeout, &request) {
                    Ok(Response::Error {
                        kind,
                        message,
                        retry_after_ms,
                    }) if kind == error_kind::SHUTTING_DOWN => {
                        last = Some(Response::Error {
                            kind,
                            message,
                            retry_after_ms,
                        });
                    }
                    Ok(response) => {
                        if slot == 0 {
                            membership.count_routed(i);
                        } else {
                            membership.count_failed_over(i);
                        }
                        return response;
                    }
                    Err(_) => {}
                }
            }
            last.unwrap_or_else(|| {
                Response::error(error_kind::SERVICE, "no usable instance owns this key")
            })
        }
        ForwardMode::Leader => match request {
            Request::ObserveLoad { load } => match observe_tier(membership, &load, &[]) {
                Ok(epoch) => Response::LoadObserved { epoch },
                Err(e) => Response::error(error_kind::SERVICE, e.to_string()),
            },
            Request::ObservePartial { load, silent } => {
                match observe_tier(membership, &load, &silent) {
                    Ok(epoch) => Response::LoadObserved { epoch },
                    Err(e) => Response::error(error_kind::SERVICE, e.to_string()),
                }
            }
            _ => Response::error(error_kind::BAD_REQUEST, "leader mode covers observations"),
        },
        ForwardMode::Merge => {
            let mut stats: Vec<StatsReport> = Vec::new();
            let mut metrics: Option<MetricsSnapshot> = None;
            let mut traces: Vec<SpanSnapshot> = Vec::new();
            let mut lifecycle: Vec<cbes_reconfig::InstanceStatus> = Vec::new();
            let mut answered = false;
            for i in membership.usable() {
                let addr = match membership.addrs().get(i) {
                    Some(a) => a.as_str(),
                    None => continue,
                };
                match forward(addr, timeout, &request) {
                    Ok(Response::Stats { stats: s }) => {
                        membership.count_forwarded(i);
                        stats.push(s);
                    }
                    Ok(Response::Metrics { metrics: m }) => {
                        membership.count_forwarded(i);
                        match metrics.as_mut() {
                            Some(merged) => merged.merge(&m),
                            None => metrics = Some(m),
                        }
                    }
                    Ok(Response::Traces { spans, .. }) => {
                        membership.count_forwarded(i);
                        answered = true;
                        traces.extend(spans);
                    }
                    Ok(Response::ArtifactStatus { status }) => {
                        membership.count_forwarded(i);
                        answered = true;
                        lifecycle.extend(status.instances);
                    }
                    _ => {}
                }
            }
            if matches!(request, Request::ArtifactStatus) {
                if !answered {
                    return Response::error(error_kind::SERVICE, "no usable instance answered");
                }
                lifecycle.sort_by(|a, b| a.addr.cmp(&b.addr));
                return Response::ArtifactStatus {
                    status: cbes_reconfig::StatusReport {
                        instances: lifecycle,
                    },
                };
            }
            if let Request::Trace { trace_id } = request {
                if !answered {
                    return Response::error(error_kind::SERVICE, "no usable instance answered");
                }
                // The router's own forwarding spans are part of the
                // trace too — without them the tier-wide view has no
                // root connecting the per-instance fragments.
                traces.extend(
                    Registry::global()
                        .spans()
                        .of_trace(trace_id)
                        .into_iter()
                        .map(SpanSnapshot::from),
                );
                traces.sort_by_key(|a| (a.start_us, a.id));
                // Instances sharing one process (in-proc tests) also
                // share the global span ring; drop exact duplicates.
                traces.dedup();
                return Response::Traces {
                    trace_id,
                    spans: traces,
                };
            }
            if let Some(metrics) = metrics {
                return Response::Metrics { metrics };
            }
            match merge_stats(stats) {
                Some(stats) => Response::Stats { stats },
                None => Response::error(error_kind::SERVICE, "no usable instance answered"),
            }
        }
        ForwardMode::Broadcast => {
            if matches!(
                request,
                Request::Stage { .. } | Request::Apply | Request::Accept | Request::Rollback { .. }
            ) {
                return broadcast_artifact(membership, timeout, &request);
            }
            let mut ok: Option<Response> = None;
            for i in membership.usable() {
                let addr = match membership.addrs().get(i) {
                    Some(a) => a.as_str(),
                    None => continue,
                };
                if let Ok(response) = forward(addr, timeout, &request) {
                    membership.count_forwarded(i);
                    if !matches!(response, Response::Error { .. }) && ok.is_none() {
                        ok = Some(response);
                    }
                }
            }
            if matches!(request, Request::Shutdown) {
                // Draining the tier drains the router too; the loopback
                // connect wakes the acceptor out of its blocking accept.
                shutdown.store(true, Ordering::Release);
                let _ = TcpStream::connect(self_addr);
                return Response::ShuttingDown;
            }
            if matches!(request, Request::DumpFlight) {
                // The router is part of the tier: dump its own recorder
                // alongside the instances'. The first instance reply is
                // relayed; the router's own dump answers only when no
                // instance could.
                let registry = Registry::global();
                let dumped = registry.flight().dump("on_demand", registry.spans());
                if let Ok((path, events)) = dumped {
                    registry.counter(names::FLIGHT_DUMPS).incr();
                    if ok.is_none() {
                        ok = Some(Response::FlightDumped {
                            path: path.display().to_string(),
                            events: events as u64,
                        });
                    }
                }
            }
            ok.unwrap_or_else(|| {
                Response::error(error_kind::SERVICE, "no usable instance accepted")
            })
        }
        ForwardMode::Local => match request {
            Request::Route { cluster, app } => {
                let hash = route_key_hash(&cluster, &app);
                let ring = HashRing::new(membership.len());
                let candidates = ring.candidates(hash, membership.config().replicas + 1);
                let report = membership.report();
                let mut infos = candidates
                    .iter()
                    .filter_map(|&i| report.instances.get(i).cloned());
                match infos.next() {
                    Some(primary) => Response::Routed {
                        hash,
                        primary,
                        replicas: infos.collect(),
                    },
                    None => {
                        Response::error(error_kind::SERVICE, "the tier has no seeded instances")
                    }
                }
            }
            Request::Membership => Response::Membership {
                membership: membership.report(),
            },
            _ => Response::error(
                error_kind::BAD_REQUEST,
                "local mode covers route/membership",
            ),
        },
    }
}

/// Tier-wide artifact lifecycle verbs are all-or-error broadcasts that
/// never stop early: a refusing or unreachable instance is recorded
/// and the sweep continues, so a failure early in seed order does not
/// strand the instances behind it on the old configuration. When every
/// instance acknowledges, the first ack is relayed; otherwise the
/// reply is one error aggregating every instance's outcome — how many
/// flipped out of how many attempted, plus each failure tagged with
/// its address — so the operator knows the tier is divergent without a
/// separate `ArtifactStatus` call. Instances that acknowledged stay
/// flipped: each journals its state durably, so a retry (or the
/// lifecycle's own `rollback` verb) converges the stragglers.
fn broadcast_artifact(
    membership: &Arc<Membership>,
    timeout: Duration,
    request: &Request,
) -> Response {
    let mut ack: Option<Response> = None;
    let mut flipped = 0usize;
    let mut attempted = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for i in membership.usable() {
        let addr = match membership.addrs().get(i) {
            Some(a) => a.as_str(),
            None => continue,
        };
        attempted += 1;
        match forward(addr, timeout, request) {
            Ok(Response::Error { message, .. }) => {
                failures.push(format!("{addr}: {message}"));
            }
            Ok(response) => {
                membership.count_forwarded(i);
                flipped += 1;
                if ack.is_none() {
                    ack = Some(response);
                }
            }
            Err(e) => {
                failures.push(format!("{addr}: unreachable: {e}"));
            }
        }
    }
    match ack {
        Some(response) if failures.is_empty() => response,
        None if attempted == 0 => {
            Response::error(error_kind::SERVICE, "no usable instance accepted")
        }
        // Nothing flipped: a uniform refusal, not divergence.
        None => Response::error(
            error_kind::SERVICE,
            format!(
                "broadcast refused by every instance [{}]",
                failures.join("; ")
            ),
        ),
        Some(_) => Response::error(
            error_kind::SERVICE,
            format!(
                "partial broadcast: {flipped}/{attempted} instances acknowledged, \
                 the tier is divergent — retry to converge or roll back [{}]",
                failures.join("; ")
            ),
        ),
    }
}

/// Merge per-instance stats into one tier-wide report: per-instance
/// counters add; cluster-level fields (epoch, node health, profiles)
/// take the most-advanced instance's view, since every instance
/// describes the same cluster.
fn merge_stats(reports: Vec<StatsReport>) -> Option<StatsReport> {
    let mut iter = reports.into_iter();
    let mut merged = iter.next()?;
    for r in iter {
        merged.served += r.served;
        merged.errors += r.errors;
        merged.overloaded += r.overloaded;
        merged.timeouts += r.timeouts;
        merged.connections += r.connections;
        merged.queue_depth += r.queue_depth;
        merged.workers += r.workers;
        merged.observations += r.observations;
        merged.dropped_connections += r.dropped_connections;
        merged.uptime_s = merged.uptime_s.max(r.uptime_s);
        for (action, count) in r.per_action {
            *merged.per_action.entry(action).or_insert(0) += count;
        }
        if r.epoch > merged.epoch {
            merged.epoch = r.epoch;
            merged.profiles = r.profiles;
            merged.healthy = r.healthy;
            merged.suspect = r.suspect;
            merged.down = r.down;
            merged.health_transitions = r.health_transitions;
        }
    }
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(epoch: u64, served: u64) -> StatsReport {
        StatsReport {
            served,
            errors: 1,
            overloaded: 2,
            timeouts: 0,
            connections: 3,
            queue_depth: 1,
            workers: 2,
            epoch,
            profiles: 1,
            observations: epoch,
            healthy: 6,
            suspect: 0,
            down: 0,
            health_transitions: 0,
            dropped_connections: 0,
            per_action: [("compare".to_string(), served)].into_iter().collect(),
            uptime_s: 1.0,
        }
    }

    #[test]
    fn merged_stats_add_counters_and_keep_the_newest_cluster_view() {
        let merged = merge_stats(vec![report(5, 10), report(7, 20), report(6, 30)])
            .expect("three reports merge");
        assert_eq!(merged.served, 60);
        assert_eq!(merged.errors, 3);
        assert_eq!(merged.epoch, 7, "cluster view follows the max epoch");
        assert_eq!(merged.per_action["compare"], 60);
        assert_eq!(merged.workers, 6);
    }

    #[test]
    fn merging_nothing_is_none() {
        assert!(merge_stats(Vec::new()).is_none());
    }
}
