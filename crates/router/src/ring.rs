//! The consistent-hash ring placing `(cluster, app)` keys on instances.
//!
//! Each instance contributes `vnodes` points to a 64-bit ring; a key
//! hashed with [`cbes_server::route_key_hash`] is owned by the first
//! point at or clockwise after it. Replicas are the next *distinct*
//! instances around the ring, so a key's failover set never repeats an
//! instance. Consistent hashing keeps most keys in place when the tier
//! grows or shrinks — only the keys adjacent to the moved points change
//! owner — and virtual nodes smooth the per-instance share.

/// Virtual nodes per instance; enough to keep per-instance key shares
/// within a few percent of even for small tiers.
pub const DEFAULT_VNODES: usize = 128;

/// Hash of one ring-point label: FNV-1a over the `(instance, vnode)`
/// pair, finished with a splitmix64-style mix — FNV alone avalanches
/// poorly on short structured input, which skews point spacing. Only
/// ring placement uses this; request keys use
/// [`cbes_server::route_key_hash`].
fn point_hash(instance: usize, vnode: usize) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for v in [instance as u64, 0x5eed, vnode as u64] {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    mix(h)
}

/// splitmix64 finalizer: FNV-1a's high bits avalanche poorly on short
/// input, so both ring points and looked-up keys get mixed before
/// being compared on the ring. The wire-visible
/// [`cbes_server::route_key_hash`] stays plain FNV-1a; mixing is a ring
/// implementation detail applied consistently to both sides.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring over `instances` seeded instances.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, instance)` sorted by point.
    points: Vec<(u64, usize)>,
    instances: usize,
}

impl HashRing {
    /// A ring of `instances` instances with [`DEFAULT_VNODES`] points
    /// each.
    pub fn new(instances: usize) -> HashRing {
        HashRing::with_vnodes(instances, DEFAULT_VNODES)
    }

    /// A ring with an explicit virtual-node count (≥ 1 per instance).
    pub fn with_vnodes(instances: usize, vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points: Vec<(u64, usize)> = (0..instances)
            .flat_map(|i| (0..vnodes).map(move |v| (point_hash(i, v), i)))
            .collect();
        points.sort_unstable();
        HashRing { points, instances }
    }

    /// Number of instances on the ring.
    pub fn len(&self) -> usize {
        self.instances
    }

    /// True when the ring has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances == 0
    }

    /// The instance owning `key_hash`: the first ring point at or after
    /// it, wrapping at the top of the hash space.
    pub fn primary(&self, key_hash: u64) -> Option<usize> {
        self.candidates(key_hash, 1).into_iter().next()
    }

    /// Up to `count` distinct instances for `key_hash`, in preference
    /// order: the primary first, then successive distinct instances
    /// clockwise around the ring (the failover replicas).
    pub fn candidates(&self, key_hash: u64, count: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(count.min(self.instances));
        if self.points.is_empty() || count == 0 {
            return out;
        }
        let key = mix(key_hash);
        let start = self
            .points
            .partition_point(|&(point, _)| point < key)
            // partition_point == len means the key wraps to the first point.
            % self.points.len();
        for step in 0..self.points.len() {
            let (_, instance) = self.points[(start + step) % self.points.len()];
            if !out.contains(&instance) {
                out.push(instance);
                if out.len() == count.min(self.instances) {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_server::route_key_hash;

    #[test]
    fn placement_is_deterministic_and_covers_all_instances() {
        let ring = HashRing::new(3);
        let mut owned = [0usize; 3];
        for i in 0..1000 {
            let h = route_key_hash("centurion", &format!("app-{i}"));
            let p = ring.primary(h).expect("non-empty ring always places");
            assert_eq!(ring.primary(h), Some(p), "placement is stable");
            owned[p] += 1;
        }
        for (i, n) in owned.iter().enumerate() {
            assert!(
                *n > 150,
                "instance {i} owns only {n}/1000 keys — ring is badly skewed"
            );
        }
    }

    #[test]
    fn candidates_are_distinct_and_lead_with_the_primary() {
        let ring = HashRing::new(4);
        let h = route_key_hash("centurion", "lu");
        let cands = ring.candidates(h, 3);
        assert_eq!(cands.len(), 3);
        assert_eq!(cands[0], ring.primary(h).expect("ring is non-empty"));
        let mut sorted = cands.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "candidates never repeat an instance");
    }

    #[test]
    fn candidate_count_is_bounded_by_the_tier() {
        let ring = HashRing::new(2);
        assert_eq!(ring.candidates(42, 5).len(), 2);
        let empty = HashRing::new(0);
        assert!(empty.primary(42).is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn growing_the_tier_moves_few_keys() {
        let three = HashRing::new(3);
        let four = HashRing::new(4);
        let mut moved = 0;
        const KEYS: usize = 2000;
        for i in 0..KEYS {
            let h = route_key_hash("centurion", &format!("app-{i}"));
            if three.primary(h) != four.primary(h) {
                moved += 1;
            }
        }
        // Consistent hashing moves ~1/4 of keys when going 3 → 4;
        // rehashing everything would move ~3/4.
        assert!(
            moved < KEYS / 2,
            "{moved}/{KEYS} keys moved — not consistent"
        );
    }
}
