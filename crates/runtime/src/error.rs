//! Orchestration errors.

use cbes_mpisim::SimError;
use cbes_sched::SchedError;
use std::fmt;

/// Errors raised by the run-time orchestrator.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A phase execution failed in the simulator.
    Sim(SimError),
    /// Scheduling a (re)mapping failed.
    Sched(SchedError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Sim(e) => write!(f, "phase execution failed: {e}"),
            RuntimeError::Sched(e) => write!(f, "scheduling failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Sim(e) => Some(e),
            RuntimeError::Sched(e) => Some(e),
        }
    }
}

impl From<SimError> for RuntimeError {
    fn from(e: SimError) -> Self {
        RuntimeError::Sim(e)
    }
}

impl From<SchedError> for RuntimeError {
    fn from(e: SchedError) -> Self {
        RuntimeError::Sched(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RuntimeError = SchedError::EmptyProfile.into();
        assert!(e.to_string().contains("scheduling failed"));
        let e: RuntimeError = SimError::BadNode(3).into();
        assert!(e.to_string().contains("n3"));
    }
}
