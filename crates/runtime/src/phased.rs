//! Phase-structured applications.

use cbes_mpisim::{Op, Program};

/// An application split into sequential phases (the paper's execution-trace
//  *segments*): each phase is a complete sub-program over the same ranks,
/// and remapping is only possible at phase boundaries (where a real MPI
/// application would checkpoint).
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedApp {
    /// Application name.
    pub name: String,
    /// The phases, in execution order. All share the same rank count.
    pub phases: Vec<Program>,
}

impl PhasedApp {
    /// Build from explicit phases.
    ///
    /// # Panics
    /// Panics if there are no phases or rank counts differ between phases.
    pub fn new(name: impl Into<String>, phases: Vec<Program>) -> Self {
        assert!(
            !phases.is_empty(),
            "an application needs at least one phase"
        );
        let n = phases[0].num_ranks();
        assert!(
            phases.iter().all(|p| p.num_ranks() == n),
            "all phases must have the same rank count"
        );
        PhasedApp {
            name: name.into(),
            phases,
        }
    }

    /// Split a monolithic program at its `Op::Segment` markers: ops before
    /// the first marker form phase 0, each marker starts a new phase.
    /// Programs without markers become a single phase.
    pub fn from_segmented(name: impl Into<String>, program: &Program) -> Self {
        let n = program.num_ranks();
        let mut phases: Vec<Program> = vec![Program::new(n)];
        // Map segment id -> phase index, in order of first appearance.
        let mut seen: Vec<u32> = Vec::new();
        for (rank, ops) in program.procs.iter().enumerate() {
            let mut current = 0usize;
            for op in ops {
                if let Op::Segment(id) = op {
                    current = match seen.iter().position(|s| s == id) {
                        Some(pos) => pos + 1,
                        None => {
                            seen.push(*id);
                            while phases.len() < seen.len() + 1 {
                                phases.push(Program::new(n));
                            }
                            seen.len()
                        }
                    };
                    continue;
                }
                phases[current].push(rank, *op);
            }
        }
        // Drop empty leading phase when the program starts with a marker.
        if phases[0].total_ops() == 0 && phases.len() > 1 {
            phases.remove(0);
        }
        PhasedApp::new(name, phases)
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.phases[0].num_ranks()
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_segmented_splits_at_markers() {
        let mut p = Program::new(2);
        p.push_all(Op::Compute { seconds: 1.0 });
        p.push_all(Op::Segment(7));
        p.push_all(Op::Compute { seconds: 2.0 });
        p.push_all(Op::Segment(9));
        p.push_all(Op::Compute { seconds: 3.0 });
        let app = PhasedApp::from_segmented("a", &p);
        assert_eq!(app.num_phases(), 3);
        assert_eq!(app.phases[0].compute_per_rank(), vec![1.0, 1.0]);
        assert_eq!(app.phases[1].compute_per_rank(), vec![2.0, 2.0]);
        assert_eq!(app.phases[2].compute_per_rank(), vec![3.0, 3.0]);
    }

    #[test]
    fn leading_marker_does_not_create_empty_phase() {
        let mut p = Program::new(1);
        p.push_all(Op::Segment(1));
        p.push_all(Op::Compute { seconds: 1.0 });
        let app = PhasedApp::from_segmented("a", &p);
        assert_eq!(app.num_phases(), 1);
    }

    #[test]
    fn unmarked_program_is_one_phase() {
        let mut p = Program::new(3);
        p.push_all(Op::Compute { seconds: 1.0 });
        let app = PhasedApp::from_segmented("a", &p);
        assert_eq!(app.num_phases(), 1);
        assert_eq!(app.num_ranks(), 3);
    }

    #[test]
    #[should_panic(expected = "same rank count")]
    fn mismatched_phase_ranks_panic() {
        let _ = PhasedApp::new("a", vec![Program::new(2), Program::new(3)]);
    }
}
