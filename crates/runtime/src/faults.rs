//! The orchestrator's view of injected faults.
//!
//! The concrete fault *schedules* (deterministic, seedable event lists)
//! live in the `cbes-faults` crate; the orchestrator only needs a
//! point-in-time sample of the disturbance, so the dependency points the
//! other way: `cbes-faults` implements [`Perturbation`] for its schedule
//! type and hands it to [`crate::Orchestrator::run_with_faults`].

use cbes_cluster::load::LoadState;
use cbes_cluster::NodeId;

/// The state of all injected faults at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Disturbance {
    /// Whether each node's monitoring daemon delivers a measurement this
    /// sweep (`false` = monitor dropout).
    pub reporting: Vec<bool>,
    /// Whether each node has actually crashed. Crashed nodes never report
    /// and their ground-truth CPU availability collapses.
    pub crashed: Vec<bool>,
    /// Multiplier on each node's ground-truth CPU availability (load
    /// burst: < 1).
    pub cpu_scale: Vec<f64>,
    /// Additional NIC load applied to every node (latency spike: the load
    /// adjuster and the simulator both inflate message latency with NIC
    /// load).
    pub extra_nic_load: f64,
}

impl Disturbance {
    /// No faults active on an `n`-node cluster.
    pub fn none(n: usize) -> Self {
        Disturbance {
            reporting: vec![true; n],
            crashed: vec![false; n],
            cpu_scale: vec![1.0; n],
            extra_nic_load: 0.0,
        }
    }

    /// True when no fault is active.
    pub fn is_none(&self) -> bool {
        self.reporting.iter().all(|&r| r)
            && self.crashed.iter().all(|&c| !c)
            && self.cpu_scale.iter().all(|&s| s == 1.0)
            && self.extra_nic_load == 0.0
    }

    /// The per-node "delivered a measurement" mask: a node reports only if
    /// its monitor stream is up *and* the node itself is alive.
    pub fn reported_mask(&self) -> Vec<bool> {
        self.reporting
            .iter()
            .zip(&self.crashed)
            .map(|(&r, &c)| r && !c)
            .collect()
    }

    /// Apply the disturbance to a ground-truth load sample: crashed nodes
    /// collapse to minimum availability, load bursts scale availability,
    /// and latency spikes add NIC load everywhere.
    pub fn apply_to(&self, load: &mut LoadState) {
        let n = load.len().min(self.crashed.len());
        for i in 0..n {
            let id = NodeId(i as u32);
            if self.crashed[i] {
                load.set_cpu_avail(id, 0.0); // clamped to the floor
            } else if self.cpu_scale[i] != 1.0 {
                load.set_cpu_avail(id, load.cpu_avail(id) * self.cpu_scale[i]);
            }
            if self.extra_nic_load > 0.0 {
                load.set_nic_load(id, load.nic_load(id) + self.extra_nic_load);
            }
        }
    }
}

/// A source of injected disturbances, sampled at simulation time `t`.
pub trait Perturbation {
    /// The disturbance active at time `t` on an `n`-node cluster.
    fn sample(&self, t: f64, n: usize) -> Disturbance;
}

/// The trivial perturbation: nothing ever goes wrong.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl Perturbation for NoFaults {
    fn sample(&self, _t: f64, n: usize) -> Disturbance {
        Disturbance::none(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let d = Disturbance::none(3);
        assert!(d.is_none());
        assert_eq!(d.reported_mask(), vec![true; 3]);
        let mut load = LoadState::idle(3);
        d.apply_to(&mut load);
        assert_eq!(load.cpu_avail(NodeId(0)), 1.0);
        assert_eq!(load.nic_load(NodeId(0)), 0.0);
    }

    #[test]
    fn crash_collapses_availability_and_silences_reports() {
        let mut d = Disturbance::none(2);
        d.crashed[1] = true;
        assert!(!d.is_none());
        assert_eq!(d.reported_mask(), vec![true, false]);
        let mut load = LoadState::idle(2);
        d.apply_to(&mut load);
        assert_eq!(load.cpu_avail(NodeId(0)), 1.0);
        // LoadState clamps availability to its positive floor.
        assert!(load.cpu_avail(NodeId(1)) <= 0.01);
    }

    #[test]
    fn bursts_and_spikes_adjust_load() {
        let mut d = Disturbance::none(2);
        d.cpu_scale[0] = 0.5;
        d.extra_nic_load = 0.3;
        let mut load = LoadState::idle(2);
        d.apply_to(&mut load);
        assert_eq!(load.cpu_avail(NodeId(0)), 0.5);
        assert_eq!(load.cpu_avail(NodeId(1)), 1.0);
        assert!((load.nic_load(NodeId(0)) - 0.3).abs() < 1e-12);
    }
}
