//! The monitoring / scheduling / remapping loop.

use crate::error::RuntimeError;
use crate::faults::{Disturbance, Perturbation};
use crate::phased::PhasedApp;
use cbes_cluster::load::LoadTimeline;
use cbes_cluster::{Cluster, LatencyProvider, NodeId};
use cbes_core::eval::Evaluator;
use cbes_core::health::{HealthPolicy, HealthTracker, NodeHealth};
use cbes_core::mapping::Mapping;
use cbes_core::monitor::{ForecastKind, Monitor};
use cbes_core::remap::{RemapAnalysis, RemapDecision};
use cbes_core::snapshot::SystemSnapshot;
use cbes_mpisim::{simulate, SimConfig};
use cbes_sched::{SaConfig, SaScheduler, ScheduleRequest, Scheduler};
use cbes_trace::profile::merge_profiles;
use cbes_trace::{extract_profile, AppProfile};

/// Orchestrator configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Forecasting strategy of the monitor.
    pub forecast: ForecastKind,
    /// Remapping cost/benefit policy.
    pub remap: RemapAnalysis,
    /// Annealer configuration for (re)scheduling.
    pub sa: SaConfig,
    /// Simulator configuration for phase execution.
    pub sim: SimConfig,
    /// Monitoring sweeps taken at each phase boundary.
    pub sweeps_per_boundary: u32,
    /// Staleness deadlines for node health classification.
    pub health: HealthPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            forecast: ForecastKind::Adaptive(8),
            remap: RemapAnalysis::default(),
            sa: SaConfig::thorough(1),
            sim: SimConfig::default(),
            sweeps_per_boundary: 3,
            health: HealthPolicy::default(),
        }
    }
}

/// What happened in one executed phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase index.
    pub phase: usize,
    /// Mapping the phase ran on.
    pub mapping: Mapping,
    /// CBES prediction for this phase under the conditions at its start.
    pub predicted: f64,
    /// Simulated wall time of the phase.
    pub wall: f64,
    /// True when a remap happened *before* this phase.
    pub remapped: bool,
    /// True when the remap was *forced* by a mapped node leaving
    /// `Healthy` (bypassing the cost/benefit analysis).
    pub forced: bool,
    /// Migration delay charged before the phase (0 when not remapped).
    pub migration: f64,
    /// Pool nodes classified `Down` when this phase was scheduled.
    pub down: Vec<NodeId>,
}

/// The outcome of a full orchestrated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-phase outcomes, in order.
    pub phases: Vec<PhaseReport>,
    /// Total completion time including migration delays.
    pub total: f64,
    /// Number of remapping events taken.
    pub remaps: usize,
    /// Health-state transitions observed over the run.
    pub health_transitions: u64,
}

impl RunReport {
    /// Sum of migration delays paid.
    pub fn migration_total(&self) -> f64 {
        self.phases.iter().map(|p| p.migration).sum()
    }
}

/// Drives a [`PhasedApp`] through execution on a cluster whose background
/// load evolves over a [`LoadTimeline`], re-evaluating the mapping at every
/// phase boundary.
pub struct Orchestrator<'a> {
    cluster: &'a Cluster,
    latency: &'a dyn LatencyProvider,
    config: RuntimeConfig,
}

impl<'a> Orchestrator<'a> {
    /// An orchestrator over `cluster` with the given calibrated latency
    /// source.
    pub fn new(
        cluster: &'a Cluster,
        latency: &'a dyn LatencyProvider,
        config: RuntimeConfig,
    ) -> Self {
        Orchestrator {
            cluster,
            latency,
            config,
        }
    }

    /// Profile each phase once on `profiling_nodes` (idle system).
    fn profile_phases(
        &self,
        app: &PhasedApp,
        profiling_nodes: &[NodeId],
    ) -> Result<Vec<AppProfile>, RuntimeError> {
        let idle = cbes_cluster::load::LoadState::idle(self.cluster.len());
        app.phases
            .iter()
            .enumerate()
            .map(|(i, program)| {
                let run = simulate(
                    self.cluster,
                    program,
                    profiling_nodes,
                    &idle,
                    &self.config.sim,
                )?;
                Ok(extract_profile(
                    &format!("{}#{}", app.name, i),
                    &run.trace,
                    self.cluster,
                    profiling_nodes,
                    &self.latency,
                ))
            })
            .collect()
    }

    /// Execute the application, re-considering the mapping at every phase
    /// boundary against the load in `timeline`.
    ///
    /// `pool` is the candidate node set; phases are profiled on its first
    /// `n` nodes. Returns the full per-phase report.
    pub fn run(
        &self,
        app: &PhasedApp,
        pool: &[NodeId],
        timeline: &LoadTimeline,
    ) -> Result<RunReport, RuntimeError> {
        self.run_with_faults(app, pool, timeline, None)
    }

    /// Like [`Orchestrator::run`], but with an injected fault source:
    /// each monitoring sweep and each phase execution samples the
    /// disturbance active at that simulated instant. Crashed and
    /// dropped-out nodes stop reporting, so they age toward `Suspect` and
    /// `Down` under the configured health policy; `Down` nodes are
    /// excluded from scheduling, and a mapped node leaving `Healthy`
    /// forces a remap regardless of the cost/benefit analysis.
    pub fn run_with_faults(
        &self,
        app: &PhasedApp,
        pool: &[NodeId],
        timeline: &LoadTimeline,
        faults: Option<&dyn Perturbation>,
    ) -> Result<RunReport, RuntimeError> {
        let n = app.num_ranks();
        let n_nodes = self.cluster.len();
        let profiles = self.profile_phases(app, &pool[..n])?;
        let mut monitor = Monitor::new(n_nodes, self.config.forecast);
        let mut tracker = HealthTracker::new(n_nodes, self.config.health);

        // Remaining-work profile from phase k onward.
        let remaining = |k: usize| {
            let parts: Vec<&AppProfile> = profiles[k..].iter().collect();
            merge_profiles(&format!("{}@{}", app.name, k), &parts)
        };

        let mut now = 0.0f64;
        let mut mapping: Option<Mapping> = None;
        let mut phases = Vec::with_capacity(app.num_phases());
        let mut remaps = 0usize;

        #[allow(clippy::needless_range_loop)] // k indexes phases AND profiles
        for k in 0..app.num_phases() {
            // Monitoring sweeps observe the recent ground truth, oldest
            // first, ending at the current instant. Injected faults mask
            // reports from crashed / dropped-out nodes and perturb the
            // measured load.
            for s in (0..self.config.sweeps_per_boundary).rev() {
                let ts = (now - s as f64).max(0.0);
                let mut ground = timeline.sample(ts);
                let d = match faults {
                    Some(f) => f.sample(ts, n_nodes),
                    None => Disturbance::none(n_nodes),
                };
                d.apply_to(&mut ground);
                let mask = d.reported_mask();
                monitor.observe_partial(&ground, &mask);
                tracker.record_sweep(&mask);
            }
            let forecast = monitor.forecast();
            let health = tracker.view();
            let down: Vec<NodeId> = pool
                .iter()
                .copied()
                .filter(|&nd| !health.is_usable(nd))
                .collect();
            let mut snap = SystemSnapshot::no_load(self.cluster, self.latency);
            snap.set_load(forecast);
            snap.set_health(health.clone());

            let work_left = remaining(k);
            let req = ScheduleRequest::new(&work_left, &snap, pool);
            let fresh = SaScheduler::new(self.config.sa).schedule(&req)?;

            let (chosen, remapped, forced, migration) = match &mapping {
                None => (fresh.mapping.clone(), false, false, 0.0),
                Some(current) => {
                    let unhealthy_mapped = current
                        .as_slice()
                        .iter()
                        .any(|&nd| health.health(nd) != NodeHealth::Healthy);
                    if unhealthy_mapped && fresh.mapping != *current {
                        // A mapped node left Healthy: migrate away without
                        // consulting the cost/benefit analysis.
                        let moved = current.moved_ranks(&fresh.mapping).len();
                        remaps += 1;
                        (
                            fresh.mapping.clone(),
                            true,
                            true,
                            self.config.remap.cost.total(moved),
                        )
                    } else {
                        let ev = Evaluator::new(&work_left, &snap);
                        match self.config.remap.decide(&ev, current, &fresh.mapping, 0.0) {
                            RemapDecision::Remap { .. } => {
                                let moved = current.moved_ranks(&fresh.mapping).len();
                                remaps += 1;
                                (
                                    fresh.mapping.clone(),
                                    true,
                                    false,
                                    self.config.remap.cost.total(moved),
                                )
                            }
                            RemapDecision::Stay { .. } => (current.clone(), false, false, 0.0),
                        }
                    }
                }
            };
            now += migration;

            // Execute the phase against the *actual* (fault-perturbed)
            // load at this time.
            let mut actual = timeline.sample(now);
            if let Some(f) = faults {
                f.sample(now, n_nodes).apply_to(&mut actual);
            }
            let phase_profile = &profiles[k];
            let snap_now = {
                let mut s = SystemSnapshot::no_load(self.cluster, self.latency);
                s.set_load(actual.clone());
                s
            };
            let predicted = Evaluator::new(phase_profile, &snap_now).predict_time(&chosen);
            let mut sim = self.config.sim.clone();
            sim.seed = sim.seed.wrapping_add(k as u64 + 1);
            sim.collect_trace = false;
            let wall = simulate(
                self.cluster,
                &app.phases[k],
                chosen.as_slice(),
                &actual,
                &sim,
            )?
            .wall_time;
            now += wall;
            phases.push(PhaseReport {
                phase: k,
                mapping: chosen.clone(),
                predicted,
                wall,
                remapped,
                forced,
                migration,
                down,
            });
            mapping = Some(chosen);
        }

        Ok(RunReport {
            phases,
            total: now,
            remaps,
            health_transitions: tracker.transitions(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::load::LoadPattern;
    use cbes_cluster::presets::orange_grove;
    use cbes_cluster::Architecture;
    use cbes_core::remap::MigrationCost;
    use cbes_mpisim::{Op, Program};
    use cbes_workloads::npb::{lu, NpbClass};

    fn two_phase_app(n: usize) -> PhasedApp {
        // Two identical comm+compute phases so remapping mid-run is
        // meaningful.
        let w = lu(n, NpbClass::S);
        PhasedApp::new("lu2", vec![w.program.clone(), w.program])
    }

    fn cheap_config() -> RuntimeConfig {
        RuntimeConfig {
            sa: SaConfig::fast(3),
            remap: RemapAnalysis {
                cost: MigrationCost {
                    image_bytes: 1 << 20,
                    transfer_bw: 12.5e6,
                    restart_cost: 0.02,
                    coordination_cost: 0.02,
                },
                threshold: 0.1,
            },
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn stable_load_runs_without_remapping() {
        let cluster = orange_grove();
        let orch = Orchestrator::new(&cluster, &cluster, cheap_config());
        let app = two_phase_app(8);
        let pool: Vec<_> = cluster.nodes_by_arch(Architecture::Alpha);
        let report = orch
            .run(&app, &pool, &LoadTimeline::idle(cluster.len()))
            .expect("run");
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.remaps, 0);
        assert!(report.total > 0.0);
        assert_eq!(report.migration_total(), 0.0);
        // Both phases stayed on the same mapping.
        assert_eq!(report.phases[0].mapping, report.phases[1].mapping);
    }

    #[test]
    fn heavy_load_on_mapped_nodes_triggers_remap() {
        let cluster = orange_grove();
        let orch = Orchestrator::new(&cluster, &cluster, cheap_config());
        let app = two_phase_app(8);
        // Pool: the 8 Alphas plus 8 Intels; the initial schedule uses some
        // Alphas (they are the fastest nodes).
        let alphas = cluster.nodes_by_arch(Architecture::Alpha);
        let mut pool = alphas.clone();
        pool.extend(cluster.nodes_by_arch(Architecture::IntelPII));
        // After phase 0 is underway, every Alpha gets hammered.
        let mut timeline = LoadTimeline::idle(cluster.len());
        for &node in &alphas {
            timeline = timeline.with(
                node,
                LoadPattern::Step {
                    at: 1.0,
                    before: 1.0,
                    after: 0.25,
                },
            );
        }
        let report = orch.run(&app, &pool, &timeline).expect("run");
        assert_eq!(report.remaps, 1, "{report:?}");
        assert!(report.phases[1].remapped);
        assert!(report.phases[1].migration > 0.0);
        // The remap must leave the hammered Alphas entirely.
        for &bad in &alphas {
            assert!(
                !report.phases[1].mapping.as_slice().contains(&bad),
                "remap should avoid loaded node {bad}"
            );
        }
    }

    #[test]
    fn mapped_node_going_silent_forces_a_remap() {
        struct DropNode {
            node: usize,
            after: f64,
        }
        impl Perturbation for DropNode {
            fn sample(&self, t: f64, n: usize) -> Disturbance {
                let mut d = Disturbance::none(n);
                if t >= self.after {
                    d.reporting[self.node] = false;
                }
                d
            }
        }
        let cluster = orange_grove();
        let mut config = cheap_config();
        // Tight deadlines: two silent sweeps are enough to reach Down
        // (the boundary's oldest sweep clamps to t=0, where the victim
        // still reports).
        config.health = cbes_core::health::HealthPolicy {
            suspect_after: 0,
            down_after: 1,
            suspect_cost_factor: 2.0,
        };
        let orch = Orchestrator::new(&cluster, &cluster, config);
        let app = two_phase_app(8);
        // Pool: 8 Alphas (fastest — the initial mapping) + 8 Intels to
        // migrate onto.
        let alphas = cluster.nodes_by_arch(Architecture::Alpha);
        let mut pool = alphas.clone();
        pool.extend(cluster.nodes_by_arch(Architecture::IntelPII));
        let victim = alphas[0];
        let faults = DropNode {
            node: victim.index(),
            after: 0.5,
        };
        let report = orch
            .run_with_faults(
                &app,
                &pool,
                &LoadTimeline::idle(cluster.len()),
                Some(&faults),
            )
            .expect("run");
        // Phase 0 was scheduled before the dropout and uses the victim.
        assert!(report.phases[0].mapping.as_slice().contains(&victim));
        assert!(report.phases[0].down.is_empty());
        // By the phase-1 boundary the victim aged to Down: the remap is
        // forced and the new mapping avoids it.
        assert!(report.phases[1].down.contains(&victim), "{report:?}");
        assert!(report.phases[1].remapped && report.phases[1].forced);
        assert!(!report.phases[1].mapping.as_slice().contains(&victim));
        assert!(report.health_transitions >= 1);
    }

    #[test]
    fn phase_predictions_track_phase_walls() {
        let cluster = orange_grove();
        let orch = Orchestrator::new(&cluster, &cluster, cheap_config());
        let app = two_phase_app(8);
        let pool: Vec<_> = cluster.nodes_by_arch(Architecture::Alpha);
        let report = orch
            .run(&app, &pool, &LoadTimeline::idle(cluster.len()))
            .expect("run");
        for p in &report.phases {
            let err = (p.predicted - p.wall).abs() / p.wall;
            assert!(err < 0.10, "phase {} error {err}", p.phase);
        }
    }

    #[test]
    fn single_phase_app_degenerates_to_one_schedule() {
        let cluster = orange_grove();
        let orch = Orchestrator::new(&cluster, &cluster, cheap_config());
        let mut p = Program::new(4);
        p.push_all(Op::Compute { seconds: 0.1 });
        let app = PhasedApp::new("one", vec![p]);
        let pool: Vec<_> = cluster.nodes_by_arch(Architecture::Alpha);
        let report = orch
            .run(&app, &pool, &LoadTimeline::idle(cluster.len()))
            .expect("run");
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.remaps, 0);
    }
}
