//! The monitoring / scheduling / remapping loop.

use crate::error::RuntimeError;
use crate::phased::PhasedApp;
use cbes_cluster::load::LoadTimeline;
use cbes_cluster::{Cluster, LatencyProvider, NodeId};
use cbes_core::eval::Evaluator;
use cbes_core::mapping::Mapping;
use cbes_core::monitor::{ForecastKind, Monitor};
use cbes_core::remap::{RemapAnalysis, RemapDecision};
use cbes_core::snapshot::SystemSnapshot;
use cbes_mpisim::{simulate, SimConfig};
use cbes_sched::{SaConfig, SaScheduler, ScheduleRequest, Scheduler};
use cbes_trace::profile::merge_profiles;
use cbes_trace::{extract_profile, AppProfile};

/// Orchestrator configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Forecasting strategy of the monitor.
    pub forecast: ForecastKind,
    /// Remapping cost/benefit policy.
    pub remap: RemapAnalysis,
    /// Annealer configuration for (re)scheduling.
    pub sa: SaConfig,
    /// Simulator configuration for phase execution.
    pub sim: SimConfig,
    /// Monitoring sweeps taken at each phase boundary.
    pub sweeps_per_boundary: u32,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            forecast: ForecastKind::Adaptive(8),
            remap: RemapAnalysis::default(),
            sa: SaConfig::thorough(1),
            sim: SimConfig::default(),
            sweeps_per_boundary: 3,
        }
    }
}

/// What happened in one executed phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase index.
    pub phase: usize,
    /// Mapping the phase ran on.
    pub mapping: Mapping,
    /// CBES prediction for this phase under the conditions at its start.
    pub predicted: f64,
    /// Simulated wall time of the phase.
    pub wall: f64,
    /// True when a remap happened *before* this phase.
    pub remapped: bool,
    /// Migration delay charged before the phase (0 when not remapped).
    pub migration: f64,
}

/// The outcome of a full orchestrated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-phase outcomes, in order.
    pub phases: Vec<PhaseReport>,
    /// Total completion time including migration delays.
    pub total: f64,
    /// Number of remapping events taken.
    pub remaps: usize,
}

impl RunReport {
    /// Sum of migration delays paid.
    pub fn migration_total(&self) -> f64 {
        self.phases.iter().map(|p| p.migration).sum()
    }
}

/// Drives a [`PhasedApp`] through execution on a cluster whose background
/// load evolves over a [`LoadTimeline`], re-evaluating the mapping at every
/// phase boundary.
pub struct Orchestrator<'a> {
    cluster: &'a Cluster,
    latency: &'a dyn LatencyProvider,
    config: RuntimeConfig,
}

impl<'a> Orchestrator<'a> {
    /// An orchestrator over `cluster` with the given calibrated latency
    /// source.
    pub fn new(
        cluster: &'a Cluster,
        latency: &'a dyn LatencyProvider,
        config: RuntimeConfig,
    ) -> Self {
        Orchestrator {
            cluster,
            latency,
            config,
        }
    }

    /// Profile each phase once on `profiling_nodes` (idle system).
    fn profile_phases(
        &self,
        app: &PhasedApp,
        profiling_nodes: &[NodeId],
    ) -> Result<Vec<AppProfile>, RuntimeError> {
        let idle = cbes_cluster::load::LoadState::idle(self.cluster.len());
        app.phases
            .iter()
            .enumerate()
            .map(|(i, program)| {
                let run = simulate(
                    self.cluster,
                    program,
                    profiling_nodes,
                    &idle,
                    &self.config.sim,
                )?;
                Ok(extract_profile(
                    &format!("{}#{}", app.name, i),
                    &run.trace,
                    self.cluster,
                    profiling_nodes,
                    &self.latency,
                ))
            })
            .collect()
    }

    /// Execute the application, re-considering the mapping at every phase
    /// boundary against the load in `timeline`.
    ///
    /// `pool` is the candidate node set; phases are profiled on its first
    /// `n` nodes. Returns the full per-phase report.
    pub fn run(
        &self,
        app: &PhasedApp,
        pool: &[NodeId],
        timeline: &LoadTimeline,
    ) -> Result<RunReport, RuntimeError> {
        let n = app.num_ranks();
        let profiles = self.profile_phases(app, &pool[..n])?;
        let mut monitor = Monitor::new(self.cluster.len(), self.config.forecast);

        // Remaining-work profile from phase k onward.
        let remaining = |k: usize| {
            let parts: Vec<&AppProfile> = profiles[k..].iter().collect();
            merge_profiles(&format!("{}@{}", app.name, k), &parts)
        };

        let mut now = 0.0f64;
        let mut mapping: Option<Mapping> = None;
        let mut phases = Vec::with_capacity(app.num_phases());
        let mut remaps = 0usize;

        #[allow(clippy::needless_range_loop)] // k indexes phases AND profiles
        for k in 0..app.num_phases() {
            // Monitoring sweeps observe the recent ground truth, oldest
            // first, ending at the current instant.
            for s in (0..self.config.sweeps_per_boundary).rev() {
                monitor.observe(&timeline.sample((now - s as f64).max(0.0)));
            }
            let forecast = monitor.forecast();
            let mut snap = SystemSnapshot::no_load(self.cluster, self.latency);
            snap.set_load(forecast);

            let work_left = remaining(k);
            let req = ScheduleRequest::new(&work_left, &snap, pool);
            let fresh = SaScheduler::new(self.config.sa).schedule(&req)?;

            let (chosen, remapped, migration) = match &mapping {
                None => (fresh.mapping.clone(), false, 0.0),
                Some(current) => {
                    let ev = Evaluator::new(&work_left, &snap);
                    match self.config.remap.decide(&ev, current, &fresh.mapping, 0.0) {
                        RemapDecision::Remap { .. } => {
                            let moved = current.moved_ranks(&fresh.mapping).len();
                            remaps += 1;
                            (
                                fresh.mapping.clone(),
                                true,
                                self.config.remap.cost.total(moved),
                            )
                        }
                        RemapDecision::Stay { .. } => (current.clone(), false, 0.0),
                    }
                }
            };
            now += migration;

            // Execute the phase against the *actual* load at this time.
            let actual = timeline.sample(now);
            let phase_profile = &profiles[k];
            let snap_now = {
                let mut s = SystemSnapshot::no_load(self.cluster, self.latency);
                s.set_load(actual.clone());
                s
            };
            let predicted = Evaluator::new(phase_profile, &snap_now).predict_time(&chosen);
            let mut sim = self.config.sim.clone();
            sim.seed = sim.seed.wrapping_add(k as u64 + 1);
            sim.collect_trace = false;
            let wall = simulate(
                self.cluster,
                &app.phases[k],
                chosen.as_slice(),
                &actual,
                &sim,
            )?
            .wall_time;
            now += wall;
            phases.push(PhaseReport {
                phase: k,
                mapping: chosen.clone(),
                predicted,
                wall,
                remapped,
                migration,
            });
            mapping = Some(chosen);
        }

        Ok(RunReport {
            phases,
            total: now,
            remaps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::load::LoadPattern;
    use cbes_cluster::presets::orange_grove;
    use cbes_cluster::Architecture;
    use cbes_core::remap::MigrationCost;
    use cbes_mpisim::{Op, Program};
    use cbes_workloads::npb::{lu, NpbClass};

    fn two_phase_app(n: usize) -> PhasedApp {
        // Two identical comm+compute phases so remapping mid-run is
        // meaningful.
        let w = lu(n, NpbClass::S);
        PhasedApp::new("lu2", vec![w.program.clone(), w.program])
    }

    fn cheap_config() -> RuntimeConfig {
        RuntimeConfig {
            sa: SaConfig::fast(3),
            remap: RemapAnalysis {
                cost: MigrationCost {
                    image_bytes: 1 << 20,
                    transfer_bw: 12.5e6,
                    restart_cost: 0.02,
                    coordination_cost: 0.02,
                },
                threshold: 0.1,
            },
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn stable_load_runs_without_remapping() {
        let cluster = orange_grove();
        let orch = Orchestrator::new(&cluster, &cluster, cheap_config());
        let app = two_phase_app(8);
        let pool: Vec<_> = cluster.nodes_by_arch(Architecture::Alpha);
        let report = orch
            .run(&app, &pool, &LoadTimeline::idle(cluster.len()))
            .expect("run");
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.remaps, 0);
        assert!(report.total > 0.0);
        assert_eq!(report.migration_total(), 0.0);
        // Both phases stayed on the same mapping.
        assert_eq!(report.phases[0].mapping, report.phases[1].mapping);
    }

    #[test]
    fn heavy_load_on_mapped_nodes_triggers_remap() {
        let cluster = orange_grove();
        let orch = Orchestrator::new(&cluster, &cluster, cheap_config());
        let app = two_phase_app(8);
        // Pool: the 8 Alphas plus 8 Intels; the initial schedule uses some
        // Alphas (they are the fastest nodes).
        let alphas = cluster.nodes_by_arch(Architecture::Alpha);
        let mut pool = alphas.clone();
        pool.extend(cluster.nodes_by_arch(Architecture::IntelPII));
        // After phase 0 is underway, every Alpha gets hammered.
        let mut timeline = LoadTimeline::idle(cluster.len());
        for &node in &alphas {
            timeline = timeline.with(
                node,
                LoadPattern::Step {
                    at: 1.0,
                    before: 1.0,
                    after: 0.25,
                },
            );
        }
        let report = orch.run(&app, &pool, &timeline).expect("run");
        assert_eq!(report.remaps, 1, "{report:?}");
        assert!(report.phases[1].remapped);
        assert!(report.phases[1].migration > 0.0);
        // The remap must leave the hammered Alphas entirely.
        for &bad in &alphas {
            assert!(
                !report.phases[1].mapping.as_slice().contains(&bad),
                "remap should avoid loaded node {bad}"
            );
        }
    }

    #[test]
    fn phase_predictions_track_phase_walls() {
        let cluster = orange_grove();
        let orch = Orchestrator::new(&cluster, &cluster, cheap_config());
        let app = two_phase_app(8);
        let pool: Vec<_> = cluster.nodes_by_arch(Architecture::Alpha);
        let report = orch
            .run(&app, &pool, &LoadTimeline::idle(cluster.len()))
            .expect("run");
        for p in &report.phases {
            let err = (p.predicted - p.wall).abs() / p.wall;
            assert!(err < 0.10, "phase {} error {err}", p.phase);
        }
    }

    #[test]
    fn single_phase_app_degenerates_to_one_schedule() {
        let cluster = orange_grove();
        let orch = Orchestrator::new(&cluster, &cluster, cheap_config());
        let mut p = Program::new(4);
        p.push_all(Op::Compute { seconds: 0.1 });
        let app = PhasedApp::new("one", vec![p]);
        let pool: Vec<_> = cluster.nodes_by_arch(Architecture::Alpha);
        let report = orch
            .run(&app, &pool, &LoadTimeline::idle(cluster.len()))
            .expect("run");
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.remaps, 0);
    }
}
