//! Run-time orchestration of CBES-scheduled applications.
//!
//! The paper's design (§2) calls for more than one-shot placement: "if
//! system conditions, with regard to a running application, change, there
//! should be the capability of generating a new mapping for that
//! application ... taking into account the task remapping costs", and the
//! future-work section (§8) names "application monitoring and remapping
//! capabilities" as the next step. This crate implements that loop over the
//! simulated testbed:
//!
//! 1. a [`PhasedApp`] executes phase by phase (the paper's LAM/MPI trace
//!    *segments*),
//! 2. between phases the [`Orchestrator`] feeds the monitor with the
//!    current background load, re-schedules the *remaining* work under the
//!    forecast conditions, and
//! 3. a [`cbes_core::remap::RemapAnalysis`] decides whether migrating pays
//!    for itself; if it does, the migration delay is charged and execution
//!    continues on the new mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod faults;
pub mod orchestrator;
pub mod phased;

pub use error::RuntimeError;
pub use faults::{Disturbance, NoFaults, Perturbation};
pub use orchestrator::{Orchestrator, PhaseReport, RunReport, RuntimeConfig};
pub use phased::PhasedApp;
