//! Lock-free metric primitives: counters, gauges, and log-linear bucket
//! histograms with mergeable snapshots and percentile queries.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event count. Updates are single
/// `fetch_add`s — wait-free, shareable across threads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement (queue depth, rate, ...).
/// Stores `f64` bits in one atomic cell.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Replace the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear buckets, bounding relative bucket width to
/// `2^-SUB_BITS` (6.25 %).
const SUB_BITS: usize = 4;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` domain: values `0..16` map to
/// exact unit buckets, and each of the 60 octaves `[2^4, 2^64)`
/// contributes 16 more (the top index is `59·16 + 31 = 975`).
const NUM_BUCKETS: usize = (64 - SUB_BITS + 1) * SUB;

/// Index of the log-linear bucket containing `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let shift = msb - SUB_BITS;
        (v >> shift) as usize + (shift << SUB_BITS)
    }
}

/// Inclusive value range `[lo, hi]` covered by bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        (idx as u64, idx as u64)
    } else {
        let shift = idx / SUB - 1;
        let sub = (idx - (shift << SUB_BITS)) as u128;
        let hi = ((sub + 1) << shift) - 1;
        ((sub as u64) << shift, hi.min(u64::MAX as u128) as u64)
    }
}

/// A lock-free log-linear histogram over `u64` values (for CBES:
/// microseconds). `record` touches one bucket plus four summary cells,
/// all relaxed atomics — safe to hammer from every worker thread.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Start a timer that records its elapsed microseconds on drop.
    pub fn start_timer(&self) -> HistogramTimer<'_> {
        HistogramTimer {
            hist: self,
            start: Instant::now(),
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the whole distribution. Concurrent
    /// `record`s may or may not be included (each one atomically), so a
    /// snapshot taken while writers run is a valid histogram of *some*
    /// prefix-plus-subset of the recorded values; once writers quiesce
    /// it is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
                count += c;
            }
        }
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if min == u64::MAX { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// Records elapsed wall time into a [`Histogram`] on drop.
pub struct HistogramTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// A frozen, serialisable copy of a [`Histogram`]: sparse bucket counts
/// plus summary statistics. Snapshots merge associatively and
/// commutatively, so per-thread or per-process histograms can be
/// combined in any order with a deterministic result.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)` pairs, ascending by index, zeros omitted.
    pub buckets: Vec<(u32, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self`. Bucket counts add; min/max widen.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(a, ca)), Some(&(b, cb))) if a == b => {
                    merged.push((a, ca + cb));
                    i += 1;
                    j += 1;
                }
                (Some(&(a, ca)), Some(&(b, _))) if a < b => {
                    merged.push((a, ca));
                    i += 1;
                }
                (Some(_), Some(&(b, cb))) => {
                    merged.push((b, cb));
                    j += 1;
                }
                (Some(&(a, ca)), None) => {
                    merged.push((a, ca));
                    i += 1;
                }
                (None, Some(&(b, cb))) => {
                    merged.push((b, cb));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        let was_empty = self.count == 0;
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.min = if was_empty {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q·count)`-th smallest observation
    /// (within 6.25 % of the true value). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                let (_, hi) = bucket_bounds(idx as usize);
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn small_values_get_exact_unit_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_cover_u64() {
        // Every bucket's hi + 1 must be the next bucket's lo, from 0 up
        // through the top of the u64 range.
        let mut expect_lo = 0u64;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(
                lo, expect_lo,
                "bucket {idx} must start where the last ended"
            );
            assert!(hi >= lo);
            // Both endpoints map back to this bucket.
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            if hi == u64::MAX {
                assert_eq!(
                    idx,
                    NUM_BUCKETS - 1,
                    "only the last bucket reaches u64::MAX"
                );
                return;
            }
            expect_lo = hi + 1;
        }
        panic!("buckets must reach u64::MAX");
    }

    #[test]
    fn bucket_width_is_within_relative_error_bound() {
        for v in [17u64, 100, 1000, 12_345, 1 << 20, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            // Width ≤ lo / 16 ⇒ ≤ 6.25 % relative error at the lower edge.
            assert!(
                (hi - lo) as f64 <= lo as f64 / 16.0 + 1.0,
                "bucket [{lo}, {hi}] too wide for {v}"
            );
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let (p50, p90, p99) = (s.p50(), s.p90(), s.p99());
        assert!(p50 <= p90 && p90 <= s.p95() && s.p95() <= p99, "{s:?}");
        assert!(p99 <= s.max);
        // Uniform 1..=1000: p50 within a bucket of 500.
        assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.07, "p50 {p50}");
        assert!((p90 as f64 - 900.0).abs() / 900.0 < 0.07, "p90 {p90}");
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn quantile_edges_and_empty() {
        let empty = HistogramSnapshot::default();
        assert!(empty.is_empty());
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.mean(), 0.0);

        let h = Histogram::new();
        h.record(7);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 7);
        assert_eq!(s.quantile(1.0), 7);
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 7);
    }

    #[test]
    fn merge_is_deterministic_across_concurrent_recorders() {
        // 8 threads record disjoint, known streams into per-thread
        // histograms; merging the snapshots in any order must equal a
        // single histogram fed everything.
        let per_thread: Vec<Histogram> = (0..8).map(|_| Histogram::new()).collect();
        crossbeam::scope(|s| {
            for (t, h) in per_thread.iter().enumerate() {
                s.spawn(move |_| {
                    for i in 0..5_000u64 {
                        h.record(t as u64 * 10_000 + i % 997);
                    }
                });
            }
        })
        .unwrap();

        let reference = Histogram::new();
        for t in 0..8u64 {
            for i in 0..5_000u64 {
                reference.record(t * 10_000 + i % 997);
            }
        }

        let snaps: Vec<HistogramSnapshot> = per_thread.iter().map(|h| h.snapshot()).collect();
        let mut forward = HistogramSnapshot::default();
        for s in &snaps {
            forward.merge(s);
        }
        let mut backward = HistogramSnapshot::default();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        assert_eq!(forward, backward, "merge order must not matter");
        assert_eq!(
            forward,
            reference.snapshot(),
            "merge must equal single-writer"
        );
        assert_eq!(forward.count, 40_000);
    }

    #[test]
    fn concurrent_single_histogram_loses_nothing() {
        let h = Histogram::new();
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for i in 0..10_000u64 {
                        h.record(i % 1000);
                    }
                });
            }
        })
        .unwrap();
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 80_000);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let h = Histogram::new();
        for v in [0u64, 1, 15, 16, 17, 1000, 123_456_789] {
            h.record(v);
        }
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn timer_records_a_duration() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
    }
}
