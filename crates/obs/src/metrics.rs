//! Lock-free metric primitives: counters, gauges, and log-linear bucket
//! histograms with mergeable snapshots and percentile queries.
//!
//! Every counter and histogram additionally maintains a **per-second
//! sliding window** so a live registry can answer "how many in the last
//! 1 s / 10 s / 60 s" and "rolling p99 over the last 10 s" instead of
//! only process-lifetime totals. Counters keep a ring of per-second
//! delta slots (lock-free); histograms keep a small ring of cumulative
//! checkpoints, one per active second, and answer window queries by
//! subtracting the checkpoint at the window start from the current
//! snapshot. Both are driven by the process-epoch second clock; the
//! `*_at` variants take an explicit second stamp for deterministic
//! tests.

use crate::span::now_sec;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Per-second window slots kept per counter: one more than the longest
/// supported window (60 s) so the slot being overwritten for the
/// current second never aliases a slot still inside the window.
const WINDOW_SLOTS: u64 = 61;

/// Cumulative histogram checkpoints retained per histogram — enough to
/// answer any window up to 60 s with one spare for the in-progress
/// second.
const CHECKPOINT_CAPACITY: usize = 64;

/// One per-second delta slot of a counter's sliding window.
#[derive(Debug)]
struct WindowSlot {
    /// The second this slot currently belongs to.
    stamp: AtomicU64,
    /// Events counted during that second.
    count: AtomicU64,
}

/// A monotonically increasing event count. Updates are single
/// `fetch_add`s plus one lock-free window-slot touch — wait-free,
/// shareable across threads.
#[derive(Debug)]
pub struct Counter {
    total: AtomicU64,
    slots: Box<[WindowSlot]>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter {
            total: AtomicU64::new(0),
            slots: (0..WINDOW_SLOTS)
                .map(|_| WindowSlot {
                    // u64::MAX marks a slot no second has claimed yet.
                    stamp: AtomicU64::new(u64::MAX),
                    count: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.add_at(n, now_sec());
    }

    /// Add `n`, attributing it to second `sec` of the process clock
    /// (the deterministic-test entry point; [`Counter::add`] stamps the
    /// current second).
    pub fn add_at(&self, n: u64, sec: u64) {
        self.total.fetch_add(n, Ordering::Relaxed);
        let slot = &self.slots[(sec % WINDOW_SLOTS) as usize];
        if slot.stamp.load(Ordering::Relaxed) != sec {
            // One writer wins the re-stamp and zeroes the stale count;
            // racing adds from the same second then accumulate on top.
            // An add racing exactly at the second boundary may land in
            // the adjacent second — windows are advisory, totals exact.
            if slot.stamp.swap(sec, Ordering::Relaxed) != sec {
                slot.count.store(0, Ordering::Relaxed);
            }
        }
        slot.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Events counted during the last `secs` seconds (including the
    /// in-progress second). `secs` is clamped to the 60 s the slot ring
    /// retains.
    pub fn window(&self, secs: u64) -> u64 {
        self.window_at(secs, now_sec())
    }

    /// [`Counter::window`] evaluated at an explicit current second.
    pub fn window_at(&self, secs: u64, now: u64) -> u64 {
        let secs = secs.clamp(1, WINDOW_SLOTS - 1);
        // Seconds [start, now] are inside the window.
        let start = (now + 1).saturating_sub(secs);
        self.slots
            .iter()
            .filter(|s| {
                let stamp = s.stamp.load(Ordering::Relaxed);
                stamp >= start && stamp <= now
            })
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-value-wins instantaneous measurement (queue depth, rate, ...).
/// Stores `f64` bits in one atomic cell.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Replace the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear buckets, bounding relative bucket width to
/// `2^-SUB_BITS` (6.25 %).
const SUB_BITS: usize = 4;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` domain: values `0..16` map to
/// exact unit buckets, and each of the 60 octaves `[2^4, 2^64)`
/// contributes 16 more (the top index is `59·16 + 31 = 975`).
const NUM_BUCKETS: usize = (64 - SUB_BITS + 1) * SUB;

/// Index of the log-linear bucket containing `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let shift = msb - SUB_BITS;
        (v >> shift) as usize + (shift << SUB_BITS)
    }
}

/// Inclusive value range `[lo, hi]` covered by bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        (idx as u64, idx as u64)
    } else {
        let shift = idx / SUB - 1;
        let sub = (idx - (shift << SUB_BITS)) as u128;
        let hi = ((sub + 1) << shift) - 1;
        ((sub as u64) << shift, hi.min(u64::MAX as u128) as u64)
    }
}

/// A lock-free log-linear histogram over `u64` values (for CBES:
/// microseconds). `record` touches one bucket plus four summary cells,
/// all relaxed atomics — safe to hammer from every worker thread. The
/// first record of each new second additionally pushes one cumulative
/// checkpoint (a short mutex-guarded ring write, once per second, off
/// the steady-state path) so window queries can subtract "the state at
/// the window start" from the current snapshot.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// The second the most recent record (or window query) observed.
    last_sec: AtomicU64,
    /// `(second, cumulative-at-start-of-that-second)` checkpoints,
    /// ascending by stamp.
    checkpoints: Mutex<VecDeque<(u64, HistogramSnapshot)>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            last_sec: AtomicU64::new(0),
            checkpoints: Mutex::new(VecDeque::new()),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.record_at(v, now_sec());
    }

    /// Record one observation at an explicit second stamp of the
    /// process clock (the deterministic-test entry point;
    /// [`Histogram::record`] stamps the current second).
    pub fn record_at(&self, v: u64, sec: u64) {
        self.maybe_rotate(sec);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// On the first touch of a new second, checkpoint the cumulative
    /// state. The checkpoint is stamped `last + 1` — the cumulative
    /// value at the *start* of every second in `(last, sec]` is the
    /// same, because nothing was recorded in between, so the
    /// greatest-stamp-≤-T lookup in [`Histogram::window_snapshot_at`]
    /// stays exact across idle gaps.
    fn maybe_rotate(&self, sec: u64) {
        let last = self.last_sec.load(Ordering::Relaxed);
        if sec > last
            && self
                .last_sec
                .compare_exchange(last, sec, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            let snap = self.snapshot();
            let mut cps = self.checkpoints.lock();
            if cps.back().is_none_or(|(s, _)| *s < last + 1) {
                cps.push_back((last + 1, snap));
                if cps.len() > CHECKPOINT_CAPACITY {
                    cps.pop_front();
                }
            }
        }
    }

    /// The distribution of observations recorded during the last
    /// `window_secs` seconds (including the in-progress second), as a
    /// snapshot-minus-checkpoint difference. Concurrent records racing
    /// a second boundary may shift by one second; once writers quiesce
    /// the window is exact.
    pub fn window_snapshot(&self, window_secs: u64) -> HistogramSnapshot {
        self.window_snapshot_at(window_secs, now_sec())
    }

    /// [`Histogram::window_snapshot`] evaluated at an explicit current
    /// second.
    pub fn window_snapshot_at(&self, window_secs: u64, now: u64) -> HistogramSnapshot {
        // An idle histogram still rotates on query, so data older than
        // the window can never leak in through a missing checkpoint.
        self.maybe_rotate(now);
        let current = self.snapshot();
        let last = self.last_sec.load(Ordering::Relaxed);
        let window_secs = window_secs.max(1);
        // Seconds [start, now] are inside the window. The window is the
        // cumulative state at the start of second `now + 1` minus the
        // cumulative state at the start of second `start`; both
        // boundaries resolve through the checkpoint ring unless no
        // record has happened at or past the boundary yet, in which
        // case the live snapshot *is* the boundary state.
        let start = (now + 1).saturating_sub(window_secs);
        let cps = self.checkpoints.lock();
        let state_at = |boundary: u64| -> HistogramSnapshot {
            if last < boundary {
                // Everything recorded so far happened strictly before
                // `boundary`, so the live cumulative state is exact.
                return current.clone();
            }
            // The greatest checkpoint stamped at or before `boundary`
            // carries the cumulative state at its start. Boundaries
            // older than the (bounded) checkpoint history resolve to
            // empty — the window degrades to "everything", never to a
            // negative count.
            let mut state: Option<&HistogramSnapshot> = None;
            for (stamp, snap) in cps.iter() {
                if *stamp <= boundary {
                    state = Some(snap);
                } else {
                    break;
                }
            }
            state.cloned().unwrap_or_default()
        };
        state_at(now + 1).sub(&state_at(start))
    }

    /// Record a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Start a timer that records its elapsed microseconds on drop.
    pub fn start_timer(&self) -> HistogramTimer<'_> {
        HistogramTimer {
            hist: self,
            start: Instant::now(),
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the whole distribution. Concurrent
    /// `record`s may or may not be included (each one atomically), so a
    /// snapshot taken while writers run is a valid histogram of *some*
    /// prefix-plus-subset of the recorded values; once writers quiesce
    /// it is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
                count += c;
            }
        }
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if min == u64::MAX { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// Records elapsed wall time into a [`Histogram`] on drop.
pub struct HistogramTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// A frozen, serialisable copy of a [`Histogram`]: sparse bucket counts
/// plus summary statistics. Snapshots merge associatively and
/// commutatively, so per-thread or per-process histograms can be
/// combined in any order with a deterministic result.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)` pairs, ascending by index, zeros omitted.
    pub buckets: Vec<(u32, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self`. Bucket counts add; min/max widen.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(a, ca)), Some(&(b, cb))) if a == b => {
                    merged.push((a, ca + cb));
                    i += 1;
                    j += 1;
                }
                (Some(&(a, ca)), Some(&(b, _))) if a < b => {
                    merged.push((a, ca));
                    i += 1;
                }
                (Some(_), Some(&(b, cb))) => {
                    merged.push((b, cb));
                    j += 1;
                }
                (Some(&(a, ca)), None) => {
                    merged.push((a, ca));
                    i += 1;
                }
                (None, Some(&(b, cb))) => {
                    merged.push((b, cb));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        let was_empty = self.count == 0;
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.min = if was_empty {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
    }

    /// The difference `self − base`: the distribution of observations
    /// recorded between the moment `base` was captured and the moment
    /// `self` was — the window primitive. `base` must be an earlier
    /// snapshot of the same histogram (bucket counts subtract
    /// saturating, so a mismatched pair degrades rather than panics).
    /// `min`/`max` are re-derived from the differenced buckets (bucket
    /// bounds, so within the 6.25 % bucket width rather than exact).
    pub fn sub(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        if base.count == 0 {
            return self.clone();
        }
        let mut buckets: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let mut j = 0usize;
        for &(idx, c) in &self.buckets {
            while j < base.buckets.len() && base.buckets[j].0 < idx {
                j += 1;
            }
            let b = match base.buckets.get(j) {
                Some(&(bidx, bc)) if bidx == idx => bc,
                _ => 0,
            };
            let diff = c.saturating_sub(b);
            if diff > 0 {
                buckets.push((idx, diff));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
        let (min, max) = match (buckets.first(), buckets.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => (
                bucket_bounds(lo as usize).0.max(self.min),
                bucket_bounds(hi as usize).1.min(self.max),
            ),
            _ => (0, 0),
        };
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(base.sum),
            min,
            max,
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q·count)`-th smallest observation
    /// (within 6.25 % of the true value). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                let (_, hi) = bucket_bounds(idx as usize);
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn small_values_get_exact_unit_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_cover_u64() {
        // Every bucket's hi + 1 must be the next bucket's lo, from 0 up
        // through the top of the u64 range.
        let mut expect_lo = 0u64;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(
                lo, expect_lo,
                "bucket {idx} must start where the last ended"
            );
            assert!(hi >= lo);
            // Both endpoints map back to this bucket.
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            if hi == u64::MAX {
                assert_eq!(
                    idx,
                    NUM_BUCKETS - 1,
                    "only the last bucket reaches u64::MAX"
                );
                return;
            }
            expect_lo = hi + 1;
        }
        panic!("buckets must reach u64::MAX");
    }

    #[test]
    fn bucket_width_is_within_relative_error_bound() {
        for v in [17u64, 100, 1000, 12_345, 1 << 20, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            // Width ≤ lo / 16 ⇒ ≤ 6.25 % relative error at the lower edge.
            assert!(
                (hi - lo) as f64 <= lo as f64 / 16.0 + 1.0,
                "bucket [{lo}, {hi}] too wide for {v}"
            );
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let (p50, p90, p99) = (s.p50(), s.p90(), s.p99());
        assert!(p50 <= p90 && p90 <= s.p95() && s.p95() <= p99, "{s:?}");
        assert!(p99 <= s.max);
        // Uniform 1..=1000: p50 within a bucket of 500.
        assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.07, "p50 {p50}");
        assert!((p90 as f64 - 900.0).abs() / 900.0 < 0.07, "p90 {p90}");
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn quantile_edges_and_empty() {
        let empty = HistogramSnapshot::default();
        assert!(empty.is_empty());
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.mean(), 0.0);

        let h = Histogram::new();
        h.record(7);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 7);
        assert_eq!(s.quantile(1.0), 7);
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 7);
    }

    #[test]
    fn merge_is_deterministic_across_concurrent_recorders() {
        // 8 threads record disjoint, known streams into per-thread
        // histograms; merging the snapshots in any order must equal a
        // single histogram fed everything.
        let per_thread: Vec<Histogram> = (0..8).map(|_| Histogram::new()).collect();
        crossbeam::scope(|s| {
            for (t, h) in per_thread.iter().enumerate() {
                s.spawn(move |_| {
                    for i in 0..5_000u64 {
                        h.record(t as u64 * 10_000 + i % 997);
                    }
                });
            }
        })
        .unwrap();

        let reference = Histogram::new();
        for t in 0..8u64 {
            for i in 0..5_000u64 {
                reference.record(t * 10_000 + i % 997);
            }
        }

        let snaps: Vec<HistogramSnapshot> = per_thread.iter().map(|h| h.snapshot()).collect();
        let mut forward = HistogramSnapshot::default();
        for s in &snaps {
            forward.merge(s);
        }
        let mut backward = HistogramSnapshot::default();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        assert_eq!(forward, backward, "merge order must not matter");
        assert_eq!(
            forward,
            reference.snapshot(),
            "merge must equal single-writer"
        );
        assert_eq!(forward.count, 40_000);
    }

    #[test]
    fn concurrent_single_histogram_loses_nothing() {
        let h = Histogram::new();
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for i in 0..10_000u64 {
                        h.record(i % 1000);
                    }
                });
            }
        })
        .unwrap();
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 80_000);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let h = Histogram::new();
        for v in [0u64, 1, 15, 16, 17, 1000, 123_456_789] {
            h.record(v);
        }
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn timer_records_a_duration() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn counter_windows_report_recent_seconds_only() {
        let c = Counter::new();
        c.add_at(5, 100);
        c.add_at(3, 109);
        c.add_at(2, 110);
        assert_eq!(c.get(), 10, "totals stay exact");
        assert_eq!(c.window_at(1, 110), 2, "last 1s = the current second");
        assert_eq!(c.window_at(10, 110), 5, "seconds 101..=110");
        assert_eq!(c.window_at(60, 110), 10, "seconds 51..=110");
        assert_eq!(c.window_at(10, 200), 0, "old slots age out of the window");
        // A slot reused for a much later second forgets its old count.
        c.add_at(1, 100 + 61);
        assert_eq!(c.window_at(1, 161), 1);
    }

    #[test]
    fn histogram_windows_subtract_the_checkpoint_at_the_window_start() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record_at(v, 100);
        }
        h.record_at(5000, 105);
        let w1 = h.window_snapshot_at(1, 105);
        assert_eq!(w1.count, 1, "only the second-105 record is in a 1s window");
        assert!(w1.p50() >= 5000 - 320 && w1.p50() <= 5120, "{w1:?}");
        let w10 = h.window_snapshot_at(10, 105);
        assert_eq!(w10.count, 4, "a 10s window reaches back to second 96");
        let later = h.window_snapshot_at(10, 200);
        assert_eq!(later.count, 0, "an idle histogram's windows drain to empty");
        assert_eq!(h.snapshot().count, 4, "cumulative state is untouched");
    }

    #[test]
    fn window_rotation_at_bucket_boundaries_never_double_counts() {
        // Satellite: record exactly one observation per second across a
        // run of seconds, then assert every 1-second window sees exactly
        // one observation and the sum of disjoint windows equals the
        // total — a rotation bug (checkpoint stamped on the wrong side
        // of the boundary) would double-count or drop at the seams.
        let h = Histogram::new();
        // Values at histogram bucket boundaries (16 is the first
        // log-linear bucket edge, 32/64 are octave edges).
        let values = [15u64, 16, 17, 31, 32, 33, 63, 64, 65, 127];
        for (i, v) in values.iter().enumerate() {
            h.record_at(*v, 10 + i as u64);
        }
        let mut windowed_total = 0u64;
        for i in 0..values.len() as u64 {
            let w = h.window_snapshot_at(1, 10 + i);
            assert_eq!(w.count, 1, "second {} must hold exactly one record", 10 + i);
            assert_eq!(w.sum, values[i as usize], "the right record, too");
            windowed_total += w.count;
        }
        assert_eq!(
            windowed_total,
            h.snapshot().count,
            "no loss, no double count"
        );
        // A window spanning everything equals the cumulative snapshot.
        let all = h.window_snapshot_at(60, 10 + values.len() as u64 - 1);
        assert_eq!(all.count, values.len() as u64);
        assert_eq!(all.sum, values.iter().sum::<u64>());
    }

    #[test]
    fn sub_recovers_the_increment_between_two_snapshots() {
        let h = Histogram::new();
        h.record_at(100, 1);
        h.record_at(200, 1);
        let early = h.snapshot();
        h.record_at(300, 2);
        h.record_at(400, 2);
        let late = h.snapshot();
        let diff = late.sub(&early);
        assert_eq!(diff.count, 2);
        assert_eq!(diff.sum, 700);
        assert!(diff.min >= 288 && diff.min <= 300, "{diff:?}");
        assert!(diff.max >= 400 && diff.max <= 416, "{diff:?}");
        // Subtracting an empty base is the identity.
        assert_eq!(late.sub(&HistogramSnapshot::default()), late);
        // Subtracting everything leaves an empty window.
        assert!(late.sub(&late).is_empty());
    }

    // Satellite proptest: sliding-window snapshots from several
    // instances merge into a tier-wide window whose p99 never exceeds
    // the largest per-instance p99 (shared bucketisation makes the
    // bound exact), and whose count is the sum of the parts.
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]
        fn merged_window_p99_is_bounded_by_the_max_of_the_parts(
            seed in 0u64..u64::MAX,
            instances in 1usize..6,
            per_instance in 1usize..200,
        ) {
            use rand::{RngExt, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut parts: Vec<HistogramSnapshot> = Vec::new();
            for _ in 0..instances {
                let h = Histogram::new();
                // Spread records over a few seconds, then query a
                // window wide enough to cover them all.
                let n = rng.random_range(1..per_instance + 1);
                for i in 0..n {
                    let v = rng.random_range(0u64..2_000_000);
                    h.record_at(v, 100 + (i % 5) as u64);
                }
                parts.push(h.window_snapshot_at(10, 104));
            }
            let mut merged = HistogramSnapshot::default();
            for p in &parts {
                merged.merge(p);
            }
            // Shared bucketisation makes the bound exact at bucket
            // granularity; `quantile` additionally clamps to the
            // snapshot's own `max`, which can pull a part's p99 below
            // its bucket's upper bound while the merged snapshot (with
            // a larger max from another part) keeps the full bucket —
            // so allow one log-linear bucket width (≤ 1/16) of slack.
            let bound = |v: u64| v + v / 16 + 1;
            let max_part_p99 = parts.iter().map(|p| p.p99()).max().unwrap_or(0);
            proptest::prop_assert!(
                merged.p99() <= bound(max_part_p99),
                "merged p99 {} > max part p99 {} (+1 bucket)",
                merged.p99(),
                max_part_p99
            );
            proptest::prop_assert_eq!(
                merged.count,
                parts.iter().map(|p| p.count).sum::<u64>()
            );
            for q in [0.5f64, 0.9, 0.99] {
                let max_part = parts.iter().map(|p| p.quantile(q)).max().unwrap_or(0);
                proptest::prop_assert!(merged.quantile(q) <= bound(max_part));
            }
        }
    }
}
