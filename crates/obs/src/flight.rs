//! Anomaly flight recorder: a bounded ring of recent operational
//! events that can be dumped to a JSONL snapshot — together with the
//! current span ring — when a trigger fires (shed-rate spike, rolling
//! p99 budget breach, health transition, replication-lag jump) or on
//! demand via the `DumpFlight` protocol action.
//!
//! The recorder is deliberately cheap: recording an event is one
//! mutex push into a `VecDeque`, and nothing is written to disk until
//! a trigger fires. Automatic dumps are debounced so a sustained
//! anomaly produces one file every few seconds, not thousands.

use crate::span::{now_sec, now_us};
use crate::SpanRing;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of events retained in the ring; older events are
/// evicted (and counted as dropped) once the ring is full.
const FLIGHT_CAPACITY: usize = 1024;

/// Minimum seconds between two automatic dumps from the same
/// recorder. On-demand dumps (`dump`) ignore the debounce.
const DUMP_DEBOUNCE_SECS: u64 = 5;

/// Environment variable naming the directory flight dumps are written
/// to. Falls back to the system temp directory when unset.
pub const FLIGHT_DIR_ENV: &str = "CBES_FLIGHT_DIR";

/// One recorded operational event: what happened, when, and which
/// trace (if any) it was part of.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Microseconds since the process epoch.
    pub at_us: u64,
    /// Short machine-readable event kind, e.g. `shed` or `health`.
    pub kind: String,
    /// Human-readable detail for the dump file.
    pub detail: String,
    /// Trace id the event belongs to; 0 when untraced.
    pub trace: u64,
}

/// Bounded ring of recent [`FlightEvent`]s with debounced auto-dump.
pub struct FlightRecorder {
    events: Mutex<VecDeque<FlightEvent>>,
    dropped: AtomicU64,
    recorded: AtomicU64,
    last_dump_sec: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FlightRecorder {
            events: Mutex::new(VecDeque::with_capacity(64)),
            dropped: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            // u64::MAX would wrap the debounce check; 0 means "never
            // dumped" and always permits the first dump.
            last_dump_sec: AtomicU64::new(0),
        }
    }

    /// Records an event, evicting the oldest when the ring is full.
    /// `trace` is the owning trace id, or 0 when untraced.
    pub fn record(&self, kind: &str, detail: String, trace: u64) {
        let event = FlightEvent {
            at_us: now_us(),
            kind: kind.to_string(),
            detail,
            trace,
        };
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock();
        if events.len() == FLIGHT_CAPACITY {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Total events recorded since process start (including evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted unexported because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies the buffered events without draining them.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Dumps the recorder (and a snapshot of `spans`) to a JSONL file
    /// if no automatic dump happened in the last
    /// [`DUMP_DEBOUNCE_SECS`] seconds. Returns the path when a dump
    /// was written; `None` when debounced or on I/O failure (a
    /// trigger must never take the serving path down).
    pub fn auto_dump(&self, reason: &str, spans: &SpanRing) -> Option<PathBuf> {
        let now = now_sec();
        let last = self.last_dump_sec.load(Ordering::Relaxed);
        if last != 0 && now < last.saturating_add(DUMP_DEBOUNCE_SECS) {
            return None;
        }
        if self
            .last_dump_sec
            .compare_exchange(last, now.max(1), Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            // Another thread is dumping this second; one file is enough.
            return None;
        }
        self.dump(reason, spans).ok().map(|(path, _)| path)
    }

    /// Unconditionally dumps the recorder (and a snapshot of `spans`)
    /// to a JSONL file, returning the path and the number of events
    /// written. Used by the on-demand `DumpFlight` protocol action.
    pub fn dump(&self, reason: &str, spans: &SpanRing) -> std::io::Result<(PathBuf, usize)> {
        let dir = std::env::var_os(FLIGHT_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!(
            "cbes-flight-{}-{}.jsonl",
            std::process::id(),
            now_us()
        ));
        let events = self.snapshot();
        let span_records = spans.snapshot();
        let mut out = Vec::with_capacity(4096);
        let header = serde_json::json!({
            "flight_dump": reason,
            "at_us": now_us(),
            "pid": std::process::id(),
            "events": events.len(),
            "spans": span_records.len(),
        });
        out.extend_from_slice(header.to_string().as_bytes());
        out.push(b'\n');
        for event in &events {
            match serde_json::to_string(event) {
                Ok(line) => {
                    out.extend_from_slice(line.as_bytes());
                    out.push(b'\n');
                }
                Err(_) => continue,
            }
        }
        for record in &span_records {
            out.extend_from_slice(record.to_json_line().as_bytes());
            out.push(b'\n');
        }
        let mut file = std::fs::File::create(&path)?;
        file.write_all(&out)?;
        Ok((path, events.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let recorder = FlightRecorder::new();
        for i in 0..(FLIGHT_CAPACITY + 10) {
            recorder.record("test", format!("event {i}"), 0);
        }
        assert_eq!(recorder.len(), FLIGHT_CAPACITY);
        assert_eq!(recorder.dropped(), 10);
        assert_eq!(recorder.recorded(), (FLIGHT_CAPACITY + 10) as u64);
        let events = recorder.snapshot();
        assert_eq!(events[0].detail, "event 10");
        // Snapshot does not drain.
        assert_eq!(recorder.len(), FLIGHT_CAPACITY);
    }

    #[test]
    fn dump_writes_header_events_and_spans() {
        let dir = std::env::temp_dir().join(format!("cbes-flight-test-{}", std::process::id()));
        // The dump dir is taken from the environment by `dump`; point
        // it at a private directory for this test.
        std::env::set_var(FLIGHT_DIR_ENV, &dir);
        let recorder = FlightRecorder::new();
        recorder.record("shed", "queue full".to_string(), 7);
        let spans = SpanRing::new(8);
        drop(spans.span_rooted("test.span", 7, 0));
        let (path, events) = recorder
            .dump("test_trigger", &spans)
            .expect("flight dump should write");
        std::env::remove_var(FLIGHT_DIR_ENV);
        assert_eq!(events, 1);
        let body = std::fs::read_to_string(&path).expect("dump file should be readable");
        let mut lines = body.lines();
        let header = lines.next().expect("dump should have a header line");
        assert!(header.contains("\"flight_dump\":\"test_trigger\""));
        assert!(body.contains("\"kind\":\"shed\""));
        assert!(body.contains("\"name\":\"test.span\""));
        assert!(body.contains("\"trace\":7"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_dump_debounces_repeated_triggers() {
        let dir = std::env::temp_dir().join(format!("cbes-flight-debounce-{}", std::process::id()));
        std::env::set_var(FLIGHT_DIR_ENV, &dir);
        let recorder = FlightRecorder::new();
        recorder.record("shed", "spike".to_string(), 0);
        let spans = SpanRing::new(8);
        let first = recorder.auto_dump("shed_spike", &spans);
        let second = recorder.auto_dump("shed_spike", &spans);
        std::env::remove_var(FLIGHT_DIR_ENV);
        assert!(first.is_some(), "first trigger should dump");
        assert!(
            second.is_none(),
            "second trigger within debounce should not"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
