//! CBES observability: lock-free metric primitives, latency histograms,
//! lightweight tracing spans, and a process-wide registry rendering one
//! JSON snapshot.
//!
//! CBES is a run-time service; its value proposition is that mapping
//! evaluation is cheap enough to call on-line. This crate makes that
//! claim *measurable* from a live process instead of only from offline
//! bench harnesses:
//!
//! * [`Counter`] / [`Gauge`] — single atomic cells, wait-free to update.
//! * [`Histogram`] — a log-linear bucket histogram (16 sub-buckets per
//!   power of two, ≤ 6.25 % relative bucket width) whose `record` is a
//!   handful of atomic adds. [`HistogramSnapshot`]s are mergeable and
//!   answer p50/p90/p99 queries.
//! * [`SpanRing`] / [`SpanGuard`] — tracing spans recording name,
//!   monotonic start, duration, parent, and owning trace id, drained
//!   into a bounded in-memory ring with optional JSONL export.
//!   [`mint_trace_id`] mints process-unique trace ids and
//!   [`SpanRing::span_rooted`] joins a remote trace carried in from
//!   the wire, so one routed request yields one connected trace.
//! * [`FlightRecorder`] — a bounded ring of recent anomaly events
//!   that dumps a JSONL snapshot (events + spans) when a trigger
//!   fires, debounced, off the hot path when idle.
//! * [`Registry`] — a named collection of all of the above; one
//!   [`Registry::snapshot`] renders every instrument as a serialisable
//!   [`MetricsSnapshot`]. [`Registry::global`] is the process-wide
//!   instance the library crates record into.
//!
//! Everything is hand-rolled on `std::sync::atomic` — no registry
//! dependencies beyond the workspace's vendored stand-ins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod metrics;
pub mod names;
pub mod registry;
pub mod span;

pub use flight::{FlightEvent, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HistogramTimer};
pub use registry::{MetricsSnapshot, Registry};
pub use span::{current_trace, mint_trace_id, SpanGuard, SpanRecord, SpanRing};
