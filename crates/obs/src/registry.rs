//! A named collection of instruments rendering one JSON snapshot.

use crate::flight::FlightRecorder;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::names;
use crate::span::{SpanGuard, SpanRing};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Default span-ring capacity for registries.
const SPAN_CAPACITY: usize = 4096;

/// Sliding windows (in seconds) rendered into snapshots as
/// `name#1s` / `name#10s` / `name#60s` suffix keys.
const SNAPSHOT_WINDOWS: [u64; 3] = [1, 10, 60];

/// A registry of named counters, gauges, and histograms plus a span
/// ring. Instrument lookup takes a short lock and returns an `Arc`;
/// call sites cache the `Arc` and update it wait-free thereafter.
///
/// [`Registry::global`] is the process-wide instance that the library
/// crates (`cbes-core`, `cbes-netmodel`, ...) record into; servers and
/// tests may also construct private registries to keep their metrics
/// isolated per instance.
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    spans: SpanRing,
    flight: FlightRecorder,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with the default span capacity.
    pub fn new() -> Self {
        Registry::with_span_capacity(SPAN_CAPACITY)
    }

    /// An empty registry whose span ring holds `capacity` spans.
    pub fn with_span_capacity(capacity: usize) -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: SpanRing::new(capacity),
            flight: FlightRecorder::new(),
        }
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.counters
            .lock()
            .entry(name)
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.gauges
            .lock()
            .entry(name)
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.histograms
            .lock()
            .entry(name)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// This registry's span ring.
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Open a span on this registry's ring.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.spans.span(name)
    }

    /// This registry's anomaly flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Render every instrument into one serialisable snapshot.
    ///
    /// Besides the lifetime totals, every counter contributes sliding
    /// `name#1s` / `name#10s` / `name#60s` window entries (zeroes are
    /// skipped) and every histogram contributes windowed snapshots
    /// under the same suffix keys (empty windows are skipped), so a
    /// merged tier snapshot reports rates and rolling quantiles
    /// without any schema change — counters add and histograms merge
    /// exactly as the totals do. Two derived counters surface loss:
    /// `spans.dropped` (ring evictions) and `flight.events` (flight
    /// recorder events seen).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (k, v) in self.counters.lock().iter() {
            counters.insert(k.to_string(), v.get());
            for w in SNAPSHOT_WINDOWS {
                let windowed = v.window(w);
                if windowed > 0 {
                    counters.insert(format!("{k}#{w}s"), windowed);
                }
            }
        }
        counters.insert(names::SPANS_DROPPED.to_string(), self.spans.dropped());
        counters.insert(names::FLIGHT_EVENTS.to_string(), self.flight.recorded());
        let mut histograms: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        for (k, v) in self.histograms.lock().iter() {
            histograms.insert(k.to_string(), v.snapshot());
            for w in SNAPSHOT_WINDOWS {
                let windowed = v.window_snapshot(w);
                if windowed.count > 0 {
                    histograms.insert(format!("{k}#{w}s"), windowed);
                }
            }
        }
        MetricsSnapshot {
            counters,
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms,
            spans_buffered: self.spans.len() as u64,
            spans_dropped: self.spans.dropped(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.lock().len())
            .field("gauges", &self.gauges.lock().len())
            .field("histograms", &self.histograms.lock().len())
            .field("spans", &self.spans)
            .finish()
    }
}

/// One point-in-time rendering of a [`Registry`] — the payload of the
/// server's `Metrics` protocol action.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Spans currently buffered in the ring.
    pub spans_buffered: u64,
    /// Spans evicted from the ring since start.
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`: counters add, gauges last-wins,
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
        self.spans_buffered += other.spans_buffered;
        self.spans_dropped += other.spans_dropped;
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot always serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let r = Registry::new();
        r.counter("requests").add(3);
        r.counter("requests").add(2);
        assert_eq!(r.counter("requests").get(), 5);
        r.gauge("depth").set(7.0);
        r.histogram("lat").record(10);
        r.histogram("lat").record(20);
        let s = r.snapshot();
        assert_eq!(s.counters["requests"], 5);
        assert_eq!(s.gauges["depth"], 7.0);
        assert_eq!(s.histograms["lat"].count, 2);
    }

    #[test]
    fn snapshot_serialises_and_roundtrips() {
        let r = Registry::new();
        r.counter("a").incr();
        r.histogram("h").record(42);
        {
            let _s = r.span("req");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans_buffered, 1);
        let back: MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_namespaced_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("server.served").add(10);
        b.counter("core.compares").add(4);
        b.counter("server.served").add(1);
        a.histogram("lat").record(5);
        b.histogram("lat").record(500);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["server.served"], 11);
        assert_eq!(merged.counters["core.compares"], 4);
        assert_eq!(merged.histograms["lat"].count, 2);
        assert_eq!(merged.histograms["lat"].min, 5);
        assert_eq!(merged.histograms["lat"].max, 500);
    }

    #[test]
    fn snapshot_exposes_window_keys_and_loss_counters() {
        let r = Registry::new();
        r.counter("req").add(4);
        r.histogram("lat").record(100);
        let s = r.snapshot();
        assert_eq!(s.counters["req"], 4);
        assert_eq!(s.counters["req#60s"], 4, "fresh increments are in-window");
        assert_eq!(s.counters[names::SPANS_DROPPED], 0);
        assert_eq!(s.counters[names::FLIGHT_EVENTS], 0);
        assert_eq!(s.histograms["lat#60s"].count, 1);
        // Window entries merge exactly like totals: counters add.
        let mut merged = s.clone();
        merged.merge(&s);
        assert_eq!(merged.counters["req#60s"], 8);
        assert_eq!(merged.histograms["lat#60s"].count, 2);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = Registry::global().counter("obs.test.singleton");
        let before = c.get();
        Registry::global().counter("obs.test.singleton").incr();
        assert_eq!(c.get(), before + 1);
    }
}
