//! Lightweight tracing: spans recording name, trace membership,
//! monotonic start, duration, and parent, collected into a bounded
//! in-memory ring.
//!
//! A [`SpanGuard`] costs two `Instant::now()` calls and one short
//! mutex-guarded push on drop — cheap enough for request-rate events
//! (per `Compare`, per calibration round), not meant for the inner SA
//! loop (use the sched `TelemetrySink` there).
//!
//! Parent linkage is tracked per thread: a span opened while another is
//! live on the same thread records that span as its parent, giving a
//! hierarchy (`request` → `evaluate_mapping`) without any allocation at
//! record time.
//!
//! Trace linkage crosses *processes*: a root span minted with
//! [`mint_trace_id`] (or joined from a remote parent with
//! [`SpanRing::span_rooted`]) stamps a `trace` id into the same
//! thread-local context, and every span opened beneath it — in any ring
//! — inherits that id. [`current_trace`] exposes the live `(trace,
//! span)` pair so protocol clients can forward it on the wire.

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide monotonic clock origin spans are stamped against.
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Seconds since the process epoch — the clock windowed metrics rotate
/// on (see `metrics`).
pub(crate) fn now_sec() -> u64 {
    process_epoch().elapsed().as_secs()
}

/// Microseconds since the process epoch.
pub(crate) fn now_us() -> u64 {
    process_epoch().elapsed().as_micros() as u64
}

thread_local! {
    /// Id of the innermost live span on this thread (0 = none).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    /// Trace id the innermost rooted span joined (0 = untraced).
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide span id source. Ids are unique across *all* rings so the
/// thread-local parent link stays unambiguous even when nested spans land
/// in different rings (e.g. a server-registry request span enclosing a
/// global-registry `compare` span).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Mint a process-unique, cross-process-unlikely-to-collide trace id
/// (never 0). Built from a per-process random seed (so two clients
/// minting concurrently do not collide) mixed with a process-local
/// sequence number — no wall-clock involved.
pub fn mint_trace_id() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    static SEED: OnceLock<u64> = OnceLock::new();
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let seed = *SEED.get_or_init(|| {
        let state = std::collections::hash_map::RandomState::new();
        let mut h = state.build_hasher();
        h.write_u64(std::process::id() as u64);
        h.finish()
    });
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    // splitmix64 finalizer: full-period mix of seed + sequence.
    let mut z = seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let id = z ^ (z >> 31);
    id.max(1)
}

/// The live trace context of this thread: `(trace_id, span_id)` of the
/// innermost open span when it belongs to a trace, `None` when the
/// current work is untraced. Protocol clients stamp outgoing request
/// envelopes from this.
pub fn current_trace() -> Option<(u64, u64)> {
    let trace = CURRENT_TRACE.with(|c| c.get());
    if trace == 0 {
        None
    } else {
        Some((trace, CURRENT_SPAN.with(|c| c.get())))
    }
}

/// One finished span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"compare"`).
    pub name: &'static str,
    /// Trace this span belongs to (0 = untraced).
    pub trace: u64,
    /// Unique id within this ring (1-based).
    pub id: u64,
    /// Id of the enclosing span on the same thread (or the remote
    /// parent for rooted spans), 0 for roots.
    pub parent: u64,
    /// Start offset in microseconds since the first span-related call in
    /// this process (monotonic clock).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

impl SpanRecord {
    /// Render as one JSON line (the JSONL export format).
    pub fn to_json_line(&self) -> String {
        // Names are static identifiers — no escaping needed.
        format!(
            "{{\"name\":\"{}\",\"trace\":{},\"id\":{},\"parent\":{},\"start_us\":{},\"dur_us\":{}}}",
            self.name, self.trace, self.id, self.parent, self.start_us, self.dur_us
        )
    }
}

struct RingInner {
    records: VecDeque<SpanRecord>,
    dropped: u64,
}

/// A bounded ring of finished spans. When full, the oldest span is
/// evicted and counted in [`SpanRing::dropped`] — recording never blocks
/// on a slow consumer.
pub struct SpanRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

impl SpanRing {
    /// A ring holding at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            inner: Mutex::new(RingInner {
                records: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Open a span; it records itself into the ring when dropped. The
    /// parent link and trace id are inherited from the innermost live
    /// span on this thread.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_SPAN.with(|c| c.replace(id));
        let trace = CURRENT_TRACE.with(|c| c.get());
        SpanGuard {
            ring: self,
            name,
            id,
            parent,
            trace,
            prev_span: parent,
            prev_trace: trace,
            start_us: now_us(),
            start: Instant::now(),
        }
    }

    /// Open a span that *joins a remote trace*: its parent is
    /// `parent_span` (a span id from another process, 0 for a trace
    /// root) and its trace id is `trace`. Until the guard drops, spans
    /// opened on this thread — in any ring — nest beneath it and carry
    /// the same trace id; the previous context is restored afterwards.
    pub fn span_rooted(&self, name: &'static str, trace: u64, parent_span: u64) -> SpanGuard<'_> {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let prev_span = CURRENT_SPAN.with(|c| c.replace(id));
        let prev_trace = CURRENT_TRACE.with(|c| c.replace(trace));
        SpanGuard {
            ring: self,
            name,
            id,
            parent: parent_span,
            trace,
            prev_span,
            prev_trace,
            start_us: now_us(),
            start: Instant::now(),
        }
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True when no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Take every buffered span, oldest first, leaving the ring empty.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.inner.lock().records.drain(..).collect()
    }

    /// Copy every buffered span, oldest first, *without* draining —
    /// flight-recorder dumps must not consume the ring.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner.lock().records.iter().copied().collect()
    }

    /// Copy the buffered spans belonging to `trace`, oldest first,
    /// without draining (the `Trace` protocol action's data source).
    pub fn of_trace(&self, trace: u64) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .records
            .iter()
            .filter(|r| r.trace == trace && trace != 0)
            .copied()
            .collect()
    }

    /// Drain and render as JSONL (one span object per line).
    pub fn drain_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.drain() {
            let _ = writeln!(out, "{}", r.to_json_line());
        }
        out
    }

    fn push(&self, record: SpanRecord) {
        let mut inner = self.inner.lock();
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(record);
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// A live span; finishes (and records itself) on drop.
pub struct SpanGuard<'a> {
    ring: &'a SpanRing,
    name: &'static str,
    id: u64,
    parent: u64,
    trace: u64,
    prev_span: u64,
    prev_trace: u64,
    start_us: u64,
    start: Instant,
}

impl SpanGuard<'_> {
    /// This span's id (usable as an explicit parent reference).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace this span belongs to (0 = untraced).
    pub fn trace(&self) -> u64 {
        self.trace
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        CURRENT_SPAN.with(|c| c.set(self.prev_span));
        CURRENT_TRACE.with(|c| c.set(self.prev_trace));
        self.ring.push(SpanRecord {
            name: self.name,
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            start_us: self.start_us,
            dur_us: self.start.elapsed().as_micros() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_name_duration_and_order() {
        let ring = SpanRing::new(16);
        {
            let _a = ring.span("first");
        }
        {
            let _b = ring.span("second");
        }
        let spans = ring.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "first");
        assert_eq!(spans[1].name, "second");
        assert!(spans[0].start_us <= spans[1].start_us);
        assert!(ring.is_empty());
    }

    #[test]
    fn nesting_links_parents_on_one_thread() {
        let ring = SpanRing::new(16);
        {
            let outer = ring.span("outer");
            let outer_id = outer.id();
            {
                let inner = ring.span("inner");
                assert_eq!(inner.parent, outer_id);
            }
        }
        let spans = ring.drain();
        // Inner finishes (and records) first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].parent, spans[1].id);
        assert_eq!(spans[1].parent, 0, "outer is a root span");
        // A span opened after both must be a root again.
        {
            let _c = ring.span("after");
        }
        assert_eq!(ring.drain()[0].parent, 0);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let ring = SpanRing::new(4);
        for _ in 0..10 {
            let _s = ring.span("x");
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn jsonl_export_is_parseable() {
        let ring = SpanRing::new(8);
        {
            let _a = ring.span("alpha");
        }
        let jsonl = ring.drain_jsonl();
        let line = jsonl.lines().next().expect("one line");
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
        assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("alpha"));
        assert!(v.get("dur_us").and_then(|d| d.as_u64()).is_some());
        assert!(v.get("trace").and_then(|t| t.as_u64()).is_some());
    }

    #[test]
    fn concurrent_spans_do_not_cross_thread_parents() {
        let ring = SpanRing::new(1024);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let _outer = ring.span("t-outer");
                        let _inner = ring.span("t-inner");
                    }
                });
            }
        });
        let spans = ring.drain();
        assert_eq!(spans.len(), 400);
        let by_id: std::collections::HashMap<u64, &SpanRecord> =
            spans.iter().map(|s| (s.id, s)).collect();
        for s in &spans {
            if s.name == "t-inner" {
                // Parent must exist and be an outer span, never an inner
                // from another thread.
                let p = by_id.get(&s.parent).expect("parent recorded");
                assert_eq!(p.name, "t-outer");
            }
        }
    }

    #[test]
    fn rooted_spans_join_the_remote_trace_and_children_inherit_it() {
        let ring = SpanRing::new(16);
        let other = SpanRing::new(16);
        assert_eq!(current_trace(), None, "untraced outside any root");
        {
            let root = ring.span_rooted("server.request", 77, 5);
            assert_eq!(root.trace(), 77);
            assert_eq!(current_trace(), Some((77, root.id())));
            {
                // A child in a *different* ring still inherits the trace.
                let child = other.span("core.evaluate");
                assert_eq!(child.trace(), 77);
                assert_eq!(child.parent, root.id());
            }
        }
        assert_eq!(current_trace(), None, "context restored after the root");
        let root = &ring.drain()[0];
        assert_eq!(root.trace, 77);
        assert_eq!(root.parent, 5, "remote parent preserved");
        let child = &other.drain()[0];
        assert_eq!(child.trace, 77);
    }

    #[test]
    fn of_trace_filters_without_draining() {
        let ring = SpanRing::new(16);
        {
            let _a = ring.span_rooted("a", 11, 0);
        }
        {
            let _b = ring.span_rooted("b", 22, 0);
        }
        {
            let _c = ring.span("untraced");
        }
        let t11 = ring.of_trace(11);
        assert_eq!(t11.len(), 1);
        assert_eq!(t11[0].name, "a");
        assert!(ring.of_trace(0).is_empty(), "trace 0 never matches");
        assert_eq!(ring.len(), 3, "of_trace must not drain");
        assert_eq!(ring.snapshot().len(), 3);
        assert_eq!(ring.len(), 3, "snapshot must not drain");
    }

    #[test]
    fn minted_trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let id = mint_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "trace ids must not repeat");
        }
    }
}
