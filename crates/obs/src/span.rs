//! Lightweight tracing: spans recording name, monotonic start,
//! duration, and parent, collected into a bounded in-memory ring.
//!
//! A [`SpanGuard`] costs two `Instant::now()` calls and one short
//! mutex-guarded push on drop — cheap enough for request-rate events
//! (per `Compare`, per calibration round), not meant for the inner SA
//! loop (use the sched `TelemetrySink` there).
//!
//! Parent linkage is tracked per thread: a span opened while another is
//! live on the same thread records that span as its parent, giving a
//! hierarchy (`request` → `evaluate_mapping`) without any allocation at
//! record time.

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide monotonic clock origin spans are stamped against.
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// Id of the innermost live span on this thread (0 = none).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide span id source. Ids are unique across *all* rings so the
/// thread-local parent link stays unambiguous even when nested spans land
/// in different rings (e.g. a server-registry request span enclosing a
/// global-registry `compare` span).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// One finished span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"compare"`).
    pub name: &'static str,
    /// Unique id within this ring (1-based).
    pub id: u64,
    /// Id of the enclosing span on the same thread, 0 for roots.
    pub parent: u64,
    /// Start offset in microseconds since the first span-related call in
    /// this process (monotonic clock).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

impl SpanRecord {
    /// Render as one JSON line (the JSONL export format).
    pub fn to_json_line(&self) -> String {
        // Names are static identifiers — no escaping needed.
        format!(
            "{{\"name\":\"{}\",\"id\":{},\"parent\":{},\"start_us\":{},\"dur_us\":{}}}",
            self.name, self.id, self.parent, self.start_us, self.dur_us
        )
    }
}

struct RingInner {
    records: VecDeque<SpanRecord>,
    dropped: u64,
}

/// A bounded ring of finished spans. When full, the oldest span is
/// evicted and counted in [`SpanRing::dropped`] — recording never blocks
/// on a slow consumer.
pub struct SpanRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

impl SpanRing {
    /// A ring holding at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            inner: Mutex::new(RingInner {
                records: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Open a span; it records itself into the ring when dropped.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_SPAN.with(|c| c.replace(id));
        SpanGuard {
            ring: self,
            name,
            id,
            parent,
            start_us: process_epoch().elapsed().as_micros() as u64,
            start: Instant::now(),
        }
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True when no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Take every buffered span, oldest first, leaving the ring empty.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.inner.lock().records.drain(..).collect()
    }

    /// Drain and render as JSONL (one span object per line).
    pub fn drain_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.drain() {
            let _ = writeln!(out, "{}", r.to_json_line());
        }
        out
    }

    fn push(&self, record: SpanRecord) {
        let mut inner = self.inner.lock();
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(record);
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// A live span; finishes (and records itself) on drop.
pub struct SpanGuard<'a> {
    ring: &'a SpanRing,
    name: &'static str,
    id: u64,
    parent: u64,
    start_us: u64,
    start: Instant,
}

impl SpanGuard<'_> {
    /// This span's id (usable as an explicit parent reference).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        CURRENT_SPAN.with(|c| c.set(self.parent));
        self.ring.push(SpanRecord {
            name: self.name,
            id: self.id,
            parent: self.parent,
            start_us: self.start_us,
            dur_us: self.start.elapsed().as_micros() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_name_duration_and_order() {
        let ring = SpanRing::new(16);
        {
            let _a = ring.span("first");
        }
        {
            let _b = ring.span("second");
        }
        let spans = ring.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "first");
        assert_eq!(spans[1].name, "second");
        assert!(spans[0].start_us <= spans[1].start_us);
        assert!(ring.is_empty());
    }

    #[test]
    fn nesting_links_parents_on_one_thread() {
        let ring = SpanRing::new(16);
        {
            let outer = ring.span("outer");
            let outer_id = outer.id();
            {
                let inner = ring.span("inner");
                assert_eq!(inner.parent, outer_id);
            }
        }
        let spans = ring.drain();
        // Inner finishes (and records) first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].parent, spans[1].id);
        assert_eq!(spans[1].parent, 0, "outer is a root span");
        // A span opened after both must be a root again.
        {
            let _c = ring.span("after");
        }
        assert_eq!(ring.drain()[0].parent, 0);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let ring = SpanRing::new(4);
        for _ in 0..10 {
            let _s = ring.span("x");
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn jsonl_export_is_parseable() {
        let ring = SpanRing::new(8);
        {
            let _a = ring.span("alpha");
        }
        let jsonl = ring.drain_jsonl();
        let line = jsonl.lines().next().expect("one line");
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
        assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("alpha"));
        assert!(v.get("dur_us").and_then(|d| d.as_u64()).is_some());
    }

    #[test]
    fn concurrent_spans_do_not_cross_thread_parents() {
        let ring = SpanRing::new(1024);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let _outer = ring.span("t-outer");
                        let _inner = ring.span("t-inner");
                    }
                });
            }
        });
        let spans = ring.drain();
        assert_eq!(spans.len(), 400);
        let by_id: std::collections::HashMap<u64, &SpanRecord> =
            spans.iter().map(|s| (s.id, s)).collect();
        for s in &spans {
            if s.name == "t-inner" {
                // Parent must exist and be an outer span, never an inner
                // from another thread.
                let p = by_id.get(&s.parent).expect("parent recorded");
                assert_eq!(p.name, "t-outer");
            }
        }
    }
}
