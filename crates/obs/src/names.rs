//! Canonical metric and span names — the single source of truth.
//!
//! Every instrumentation call site in the workspace names its metric
//! through a constant from this module. A typo in a literal name
//! silently forks a counter (both halves keep counting, each one low);
//! a typo in a constant path is a compile error. `cbes-analyze`'s
//! `metric_names` rule enforces the convention, and its `drift` rule
//! checks that [`SERVER_ACTION_COUNTERS`] stays aligned with the wire
//! protocol's action table and that no two constants collide.

// ---- server (cbes-server daemon) -----------------------------------

/// Requests served to completion.
pub const SERVER_SERVED: &str = "server.served";
/// Requests that produced an error reply.
pub const SERVER_ERRORS: &str = "server.errors";
/// Requests shed by admission control (queue full).
pub const SERVER_OVERLOADED: &str = "server.overloaded";
/// Connections dropped for exceeding the idle/read deadline.
pub const SERVER_TIMEOUTS: &str = "server.timeouts";
/// Connections accepted.
pub const SERVER_CONNECTIONS: &str = "server.connections";
/// Connections dropped mid-request (peer vanished, I/O error).
pub const SERVER_DROPPED_CONNECTIONS: &str = "server.dropped_connections";
/// Request frames rejected for exceeding the size limit.
pub const SERVER_OVERSIZED_FRAMES: &str = "server.oversized_frames";
/// Admission-queue wait time, microseconds.
pub const SERVER_QUEUE_WAIT_US: &str = "server.queue_wait_us";
/// Request service time (dequeue to reply), microseconds.
pub const SERVER_SERVICE_TIME_US: &str = "server.service_time_us";
/// Current admission-queue depth.
pub const SERVER_QUEUE_DEPTH: &str = "server.queue_depth";

/// Per-action served counters, indexed by
/// `cbes_server::protocol::Request::action_index`. Entry `i` must be
/// `"server.action."` followed by `ACTIONS[i]` — checked by
/// `cbes-analyze`'s drift rule.
pub const SERVER_ACTION_COUNTERS: [&str; 20] = [
    "server.action.register_profile",
    "server.action.compare",
    "server.action.best_of",
    "server.action.schedule",
    "server.action.observe_load",
    "server.action.observe_partial",
    "server.action.stats",
    "server.action.metrics",
    "server.action.shutdown",
    "server.action.route",
    "server.action.replicate",
    "server.action.membership",
    "server.action.batch",
    "server.action.trace",
    "server.action.dump_flight",
    "server.action.stage",
    "server.action.apply",
    "server.action.accept",
    "server.action.rollback",
    "server.action.artifact_status",
];

/// Admitted requests shed by the per-instance evaluation rate cap.
pub const SERVER_RATE_LIMITED: &str = "server.rate_limited";
/// Candidate mappings evaluated through `Batch` requests (one count
/// per candidate, so `batch_candidates / action.batch` is the mean
/// batch size).
pub const SERVER_BATCH_CANDIDATES: &str = "server.batch_candidates";
/// Event-loop readiness wakeups (one per epoll/poll return).
pub const SERVER_LOOP_WAKEUPS: &str = "server.loop_wakeups";

// ---- tracing / flight recorder -------------------------------------

/// Span records evicted from a ring before export (silent trace loss).
pub const SPANS_DROPPED: &str = "spans.dropped";
/// Flight-recorder events recorded since process start.
pub const FLIGHT_EVENTS: &str = "flight.events";
/// Flight-recorder JSONL dumps written (triggered or on demand).
pub const FLIGHT_DUMPS: &str = "flight.dumps";
/// Span: one traced client-side request issued by the CLI.
pub const SPAN_CLI_REQUEST: &str = "cli.request";
/// Span: the router forwarding one request to the serving tier.
pub const SPAN_ROUTER_FORWARD: &str = "router.forward";

// ---- client (RetryingClient) ---------------------------------------

/// Retry attempts made after shed/transport failures.
pub const CLIENT_RETRIES: &str = "client.retries";
/// Requests abandoned after exhausting the retry budget.
pub const CLIENT_RETRY_GIVEUPS: &str = "client.retry_giveups";

// ---- router (cbes-router scale-out tier) ---------------------------

/// Requests dispatched to their consistent-hash primary instance.
pub const ROUTER_ROUTED: &str = "router.routed";
/// Fan-out sends to non-primary instances (broadcast, merge, leader).
pub const ROUTER_FORWARDED: &str = "router.forwarded";
/// Requests served by a replica after the primary was unavailable.
pub const ROUTER_FAILED_OVER: &str = "router.failed_over";
/// Requests abandoned after exhausting every replica and retry cycle.
pub const ROUTER_GIVEUPS: &str = "router.giveups";
/// Heartbeat probe sweeps completed across the membership table.
pub const ROUTER_HEARTBEATS: &str = "router.heartbeats";
/// Snapshot replications pushed from the leader to followers.
pub const ROUTER_REPLICATIONS: &str = "router.replications";
/// Instance health-state transitions in the membership table.
pub const ROUTER_TRANSITIONS: &str = "router.instance_transitions";
/// Leader epoch minus the slowest live follower epoch.
pub const ROUTER_REPLICATION_LAG: &str = "router.replication_lag_epochs";
/// Instances currently `Healthy` in the membership table.
pub const ROUTER_INSTANCES_HEALTHY: &str = "router.instances.healthy";
/// Instances currently `Suspect`.
pub const ROUTER_INSTANCES_SUSPECT: &str = "router.instances.suspect";
/// Instances currently `Down`.
pub const ROUTER_INSTANCES_DOWN: &str = "router.instances.down";

// ---- core (CbesService) --------------------------------------------

/// `compare`/`best_of` calls evaluated.
pub const CORE_COMPARES: &str = "core.compares";
/// Candidate mappings predicted (one per mapping per compare).
pub const CORE_PREDICTIONS: &str = "core.predictions";
/// End-to-end compare latency, microseconds.
pub const CORE_COMPARE_US: &str = "core.compare_us";
/// Snapshot-epoch publish latency, microseconds.
pub const CORE_EPOCH_PUBLISH_US: &str = "core.epoch_publish_us";
/// Current snapshot epoch.
pub const CORE_EPOCH: &str = "core.epoch";
/// Node health-state transitions observed.
pub const CORE_HEALTH_TRANSITIONS: &str = "core.health.transitions";
/// Nodes currently `Healthy`.
pub const CORE_HEALTH_HEALTHY: &str = "core.health.healthy";
/// Nodes currently `Suspect`.
pub const CORE_HEALTH_SUSPECT: &str = "core.health.suspect";
/// Nodes currently `Down`.
pub const CORE_HEALTH_DOWN: &str = "core.health.down";
/// Span: publishing one monitoring sweep as a new epoch.
pub const SPAN_CORE_PUBLISH_EPOCH: &str = "core.publish_epoch";
/// Span: evaluating one candidate mapping (eq. 4–8).
pub const SPAN_CORE_EVALUATE_MAPPING: &str = "core.evaluate_mapping";
/// Span: evaluating one batch of candidate mappings (SoA path).
pub const SPAN_CORE_BATCH_EVALUATE: &str = "core.batch_evaluate";

// ---- netmodel ------------------------------------------------------

/// Calibration campaigns completed.
pub const NETMODEL_CALIBRATIONS: &str = "netmodel.calibrations";
/// Per-round calibration wall time, microseconds.
pub const NETMODEL_CALIBRATION_ROUND_US: &str = "netmodel.calibration_round_us";
/// Forecast refresh latency, microseconds.
pub const NETMODEL_FORECAST_REFRESH_US: &str = "netmodel.forecast_refresh_us";
/// Span: one full latency-calibration campaign.
pub const SPAN_NETMODEL_CALIBRATE: &str = "netmodel.calibrate";

// ---- reconfig (artifact lifecycle) ---------------------------------

/// Artifacts staged into the store (validated + journalled).
pub const RECONFIG_STAGED: &str = "reconfig.staged";
/// Artifact applies: activations under a soak (one epoch bump each).
pub const RECONFIG_APPLIES: &str = "reconfig.applies";
/// Soaking artifacts promoted to active.
pub const RECONFIG_ACCEPTS: &str = "reconfig.accepts";
/// Rollbacks, operator-initiated and automatic together.
pub const RECONFIG_ROLLBACKS: &str = "reconfig.rollbacks";
/// Rollbacks fired by the soak monitor on a telemetry regression.
pub const RECONFIG_AUTO_ROLLBACKS: &str = "reconfig.auto_rollbacks";
/// The active artifact version (0 = boot configuration).
pub const RECONFIG_ACTIVE_VERSION: &str = "reconfig.active_version";

// ---- static analysis (cbes analyze) --------------------------------

/// Unwaived findings reported by the most recent `cbes analyze` run.
pub const ANALYZE_FINDINGS: &str = "analyze.findings";
/// Waived findings (each carrying a reason) from the most recent run.
pub const ANALYZE_WAIVED: &str = "analyze.waived";
/// Per-rule finding counters, `analyze.rule.<rule>`, in the analyzer's
/// `ALL_RULES` declaration order — kept aligned with
/// `cbes_analyze::rules::ALL_RULES` by the drift rule.
pub const ANALYZE_RULE_COUNTERS: [&str; 9] = [
    "analyze.rule.panic_path",
    "analyze.rule.determinism",
    "analyze.rule.metric_names",
    "analyze.rule.forbid_unsafe",
    "analyze.rule.lock_order",
    "analyze.rule.blocking_hot_path",
    "analyze.rule.unsafe_audit",
    "analyze.rule.error_swallow",
    "analyze.rule.drift",
];

// ---- faults / chaos ------------------------------------------------

/// Faults injected into the node-health model.
pub const FAULTS_INJECTED: &str = "faults.injected";
/// Chaos-harness scenario runs started.
pub const CHAOS_RUNS: &str = "chaos.runs";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_counters_share_the_prefix() {
        for name in SERVER_ACTION_COUNTERS {
            assert!(name.starts_with("server.action."), "{name}");
        }
    }

    #[test]
    fn all_names_are_distinct() {
        let all = [
            SERVER_SERVED,
            SERVER_ERRORS,
            SERVER_OVERLOADED,
            SERVER_TIMEOUTS,
            SERVER_CONNECTIONS,
            SERVER_DROPPED_CONNECTIONS,
            SERVER_OVERSIZED_FRAMES,
            SERVER_QUEUE_WAIT_US,
            SERVER_SERVICE_TIME_US,
            SERVER_QUEUE_DEPTH,
            SERVER_RATE_LIMITED,
            SERVER_BATCH_CANDIDATES,
            SERVER_LOOP_WAKEUPS,
            ROUTER_ROUTED,
            ROUTER_FORWARDED,
            ROUTER_FAILED_OVER,
            ROUTER_GIVEUPS,
            ROUTER_HEARTBEATS,
            ROUTER_REPLICATIONS,
            ROUTER_TRANSITIONS,
            ROUTER_REPLICATION_LAG,
            ROUTER_INSTANCES_HEALTHY,
            ROUTER_INSTANCES_SUSPECT,
            ROUTER_INSTANCES_DOWN,
            CLIENT_RETRIES,
            CLIENT_RETRY_GIVEUPS,
            CORE_COMPARES,
            CORE_PREDICTIONS,
            CORE_COMPARE_US,
            CORE_EPOCH_PUBLISH_US,
            CORE_EPOCH,
            CORE_HEALTH_TRANSITIONS,
            CORE_HEALTH_HEALTHY,
            CORE_HEALTH_SUSPECT,
            CORE_HEALTH_DOWN,
            SPAN_CORE_PUBLISH_EPOCH,
            SPAN_CORE_EVALUATE_MAPPING,
            SPAN_CORE_BATCH_EVALUATE,
            SPANS_DROPPED,
            FLIGHT_EVENTS,
            FLIGHT_DUMPS,
            SPAN_CLI_REQUEST,
            SPAN_ROUTER_FORWARD,
            NETMODEL_CALIBRATIONS,
            NETMODEL_CALIBRATION_ROUND_US,
            NETMODEL_FORECAST_REFRESH_US,
            SPAN_NETMODEL_CALIBRATE,
            RECONFIG_STAGED,
            RECONFIG_APPLIES,
            RECONFIG_ACCEPTS,
            RECONFIG_ROLLBACKS,
            RECONFIG_AUTO_ROLLBACKS,
            RECONFIG_ACTIVE_VERSION,
            ANALYZE_FINDINGS,
            ANALYZE_WAIVED,
            FAULTS_INJECTED,
            CHAOS_RUNS,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for name in all
            .into_iter()
            .chain(SERVER_ACTION_COUNTERS)
            .chain(ANALYZE_RULE_COUNTERS)
        {
            assert!(seen.insert(name), "duplicate metric name {name}");
        }
    }

    #[test]
    fn analyze_rule_counters_share_the_prefix() {
        for name in ANALYZE_RULE_COUNTERS {
            assert!(name.starts_with("analyze.rule."), "{name}");
        }
    }
}
