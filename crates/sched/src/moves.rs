//! Shared search-state machinery: an injective assignment of ranks to pool
//! nodes plus the neighbourhood move operators used by the annealing and
//! genetic schedulers.

use cbes_cluster::NodeId;
use cbes_core::mapping::Mapping;
use rand::rngs::StdRng;
use rand::RngExt;

/// Search state: `assigned[r]` is the node of rank `r`; `spare` holds the
/// pool nodes currently unused. Together they always partition the pool, so
/// both move operators are O(1) and trivially reversible.
#[derive(Debug, Clone)]
pub struct SearchState {
    assigned: Vec<NodeId>,
    spare: Vec<NodeId>,
}

/// A reversible neighbourhood move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Swap the nodes of two ranks (changes which rank talks from where,
    /// leaving the node set fixed).
    Swap {
        /// First rank.
        a: usize,
        /// Second rank.
        b: usize,
    },
    /// Replace rank `rank`'s node with spare node `spare_idx` (changes the
    /// node set itself).
    Replace {
        /// The rank whose node is replaced.
        rank: usize,
        /// Index into the spare list.
        spare_idx: usize,
    },
}

impl SearchState {
    /// A random injective assignment of `n` ranks drawn from `pool`
    /// (partial Fisher–Yates).
    ///
    /// # Panics
    /// Panics if the pool is smaller than `n` (validated upstream).
    pub fn random(pool: &[NodeId], n: usize, rng: &mut StdRng) -> Self {
        assert!(pool.len() >= n, "pool too small");
        let mut nodes = pool.to_vec();
        for i in 0..n {
            let j = rng.random_range(i..nodes.len());
            nodes.swap(i, j);
        }
        let spare = nodes.split_off(n);
        SearchState {
            assigned: nodes,
            spare,
        }
    }

    /// Wrap an existing assignment, with the given spare nodes.
    pub fn from_parts(assigned: Vec<NodeId>, spare: Vec<NodeId>) -> Self {
        SearchState { assigned, spare }
    }

    /// The current assignment as a [`Mapping`].
    pub fn mapping(&self) -> Mapping {
        Mapping::new(self.assigned.clone())
    }

    /// The current assignment slice.
    pub fn assigned(&self) -> &[NodeId] {
        &self.assigned
    }

    /// Currently unused pool nodes.
    pub fn spare(&self) -> &[NodeId] {
        &self.spare
    }

    /// Propose a random move: a rank-swap with probability `swap_prob`
    /// (always, when no spare nodes exist), otherwise a node replacement.
    pub fn propose(&self, swap_prob: f64, rng: &mut StdRng) -> Move {
        let n = self.assigned.len();
        let do_swap = self.spare.is_empty() || n >= 2 && rng.random_range(0.0..1.0) < swap_prob;
        if do_swap && n >= 2 {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            Move::Swap { a, b }
        } else {
            Move::Replace {
                rank: rng.random_range(0..n),
                spare_idx: rng.random_range(0..self.spare.len()),
            }
        }
    }

    /// Apply a move in place. Applying the same move again undoes it.
    pub fn apply(&mut self, mv: Move) {
        match mv {
            Move::Swap { a, b } => self.assigned.swap(a, b),
            Move::Replace { rank, spare_idx } => {
                std::mem::swap(&mut self.assigned[rank], &mut self.spare[spare_idx]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn pool(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn is_partition(s: &SearchState, pool: &[NodeId]) -> bool {
        let mut all: Vec<NodeId> = s.assigned().iter().chain(s.spare()).copied().collect();
        all.sort_unstable();
        let mut p = pool.to_vec();
        p.sort_unstable();
        all == p
    }

    #[test]
    fn random_state_is_injective_partition() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = pool(10);
        for _ in 0..50 {
            let s = SearchState::random(&p, 6, &mut rng);
            assert!(s.mapping().is_injective());
            assert!(is_partition(&s, &p));
            assert_eq!(s.spare().len(), 4);
        }
    }

    #[test]
    fn moves_preserve_partition_and_are_involutive() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = pool(8);
        let mut s = SearchState::random(&p, 5, &mut rng);
        for _ in 0..200 {
            let before = s.assigned().to_vec();
            let mv = s.propose(0.5, &mut rng);
            s.apply(mv);
            assert!(is_partition(&s, &p));
            assert!(s.mapping().is_injective());
            s.apply(mv);
            assert_eq!(s.assigned(), &before[..], "move must be involutive");
            s.apply(mv); // leave the state perturbed for the next round
        }
    }

    #[test]
    fn full_pool_forces_swaps() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = pool(4);
        let s = SearchState::random(&p, 4, &mut rng);
        assert!(s.spare().is_empty());
        for _ in 0..20 {
            assert!(matches!(s.propose(0.0, &mut rng), Move::Swap { .. }));
        }
    }

    #[test]
    fn random_states_vary_with_seed() {
        let p = pool(12);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let s1 = SearchState::random(&p, 8, &mut r1);
        let s2 = SearchState::random(&p, 8, &mut r2);
        assert_ne!(s1.assigned(), s2.assigned());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// For any pool size, assignment arity, seed, and move count,
            /// the state stays an injective partition of the pool.
            #[test]
            fn moves_always_preserve_invariants(
                pool_n in 2u32..24,
                n_frac in 0.1f64..1.0,
                seed in 0u64..1000,
                moves in 0usize..64,
                swap_prob in 0.0f64..1.0,
            ) {
                let pool: Vec<NodeId> = (0..pool_n).map(NodeId).collect();
                let n = ((pool_n as f64 * n_frac) as usize).clamp(1, pool_n as usize);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut s = SearchState::random(&pool, n, &mut rng);
                for _ in 0..moves {
                    let mv = s.propose(swap_prob, &mut rng);
                    s.apply(mv);
                    prop_assert!(s.mapping().is_injective());
                    let mut all: Vec<NodeId> =
                        s.assigned().iter().chain(s.spare()).copied().collect();
                    all.sort_unstable();
                    let mut p = pool.clone();
                    p.sort_unstable();
                    prop_assert_eq!(all, p);
                }
            }
        }
    }

    #[test]
    fn random_covers_the_mapping_space() {
        // Every pool node should appear in some random 2-of-4 assignment.
        let p = pool(4);
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = BTreeSet::new();
        for _ in 0..100 {
            let s = SearchState::random(&p, 2, &mut rng);
            seen.extend(s.assigned().iter().copied());
        }
        assert_eq!(seen.len(), 4);
    }
}
