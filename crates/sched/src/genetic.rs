//! A genetic-algorithm scheduler — the paper's named future-work direction
//! ("we further intend to investigate the suitability of other scheduling
//! algorithms, e.g. genetic algorithms", §8).
//!
//! Individuals are injective mappings; fitness is the (negated) CBES
//! prediction. Uniform crossover with injectivity repair, tournament
//! selection, elitism, and the same swap/replace mutations the annealer
//! uses.

use crate::moves::SearchState;
use crate::telemetry::{NullSink, TelemetrySink};
use crate::{SchedError, ScheduleRequest, ScheduleResult, Scheduler};
use cbes_cluster::NodeId;
use cbes_core::eval::Evaluator;
use cbes_core::mapping::Mapping;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Genetic algorithm configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Generations to evolve.
    pub generations: u32,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-child probability of a mutation move.
    pub mutation_prob: f64,
    /// Individuals copied unchanged into the next generation.
    pub elites: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GaConfig {
    /// A moderate configuration (~`population × generations` evaluations).
    pub fn fast(seed: u64) -> Self {
        GaConfig {
            population: 40,
            generations: 60,
            tournament: 3,
            mutation_prob: 0.4,
            elites: 2,
            seed,
        }
    }
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig::fast(1)
    }
}

/// The genetic-algorithm scheduler.
#[derive(Debug, Clone)]
pub struct GeneticScheduler {
    config: GaConfig,
}

struct Individual {
    genes: Vec<NodeId>,
    energy: f64,
}

impl GeneticScheduler {
    /// A GA scheduler with the given configuration.
    pub fn new(config: GaConfig) -> Self {
        GeneticScheduler { config }
    }

    /// Uniform crossover with injectivity repair: each gene comes from a
    /// random parent unless already used, in which case it is filled from
    /// the unused pool nodes afterwards.
    fn crossover(a: &[NodeId], b: &[NodeId], pool: &[NodeId], rng: &mut StdRng) -> Vec<NodeId> {
        let n = a.len();
        let mut child: Vec<Option<NodeId>> = vec![None; n];
        let mut used: Vec<NodeId> = Vec::with_capacity(n);
        for i in 0..n {
            let gene = if rng.random_range(0.0..1.0) < 0.5 {
                a[i]
            } else {
                b[i]
            };
            if !used.contains(&gene) {
                used.push(gene);
                child[i] = Some(gene);
            }
        }
        // Repair holes with unused pool nodes, in shuffled order.
        let mut free: Vec<NodeId> = pool.iter().copied().filter(|n| !used.contains(n)).collect();
        for i in 0..free.len() {
            let j = rng.random_range(i..free.len());
            free.swap(i, j);
        }
        let mut fi = 0;
        child
            .into_iter()
            .map(|g| {
                g.unwrap_or_else(|| {
                    let n = free[fi];
                    fi += 1;
                    n
                })
            })
            .collect()
    }

    fn mutate(genes: &mut [NodeId], pool: &[NodeId], rng: &mut StdRng) {
        let n = genes.len();
        let free: Vec<NodeId> = pool
            .iter()
            .copied()
            .filter(|p| !genes.contains(p))
            .collect();
        if !free.is_empty() && rng.random_range(0.0..1.0) < 0.5 {
            let i = rng.random_range(0..n);
            genes[i] = free[rng.random_range(0..free.len())];
        } else if n >= 2 {
            let i = rng.random_range(0..n);
            let mut j = rng.random_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            genes.swap(i, j);
        }
    }

    fn tournament<'p>(&self, pop: &'p [Individual], rng: &mut StdRng) -> &'p Individual {
        let mut best: Option<&Individual> = None;
        for _ in 0..self.config.tournament.max(1) {
            let c = &pop[rng.random_range(0..pop.len())];
            if best.is_none_or(|b| c.energy < b.energy) {
                best = Some(c);
            }
        }
        best.expect("tournament size >= 1")
    }
}

impl Scheduler for GeneticScheduler {
    fn name(&self) -> &'static str {
        "GA"
    }

    fn schedule(&mut self, req: &ScheduleRequest<'_>) -> Result<ScheduleResult, SchedError> {
        req.validate()?;
        let mut clock = NullSink;
        let start = clock.clock();
        let ev: Evaluator<'_> = req.evaluator();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = req.num_procs();
        let mut evals = 0u64;

        let mut pop: Vec<Individual> = (0..self.config.population.max(2))
            .map(|_| {
                let genes = SearchState::random(req.pool(), n, &mut rng)
                    .assigned()
                    .to_vec();
                let energy = ev.predict_time(&Mapping::new(genes.clone()));
                evals += 1;
                Individual { genes, energy }
            })
            .collect();

        for _ in 0..self.config.generations {
            pop.sort_by(|a, b| a.energy.partial_cmp(&b.energy).expect("finite energies"));
            let mut next: Vec<Individual> = pop
                .iter()
                .take(self.config.elites.min(pop.len()))
                .map(|i| Individual {
                    genes: i.genes.clone(),
                    energy: i.energy,
                })
                .collect();
            while next.len() < pop.len() {
                let pa = self.tournament(&pop, &mut rng);
                let pb = self.tournament(&pop, &mut rng);
                let mut genes = Self::crossover(&pa.genes, &pb.genes, req.pool(), &mut rng);
                if rng.random_range(0.0..1.0) < self.config.mutation_prob {
                    Self::mutate(&mut genes, req.pool(), &mut rng);
                }
                let energy = ev.predict_time(&Mapping::new(genes.clone()));
                evals += 1;
                next.push(Individual { genes, energy });
            }
            pop = next;
        }
        pop.sort_by(|a, b| a.energy.partial_cmp(&b.energy).expect("finite energies"));
        let best = &pop[0];
        Ok(ScheduleResult {
            mapping: Mapping::new(best.genes.clone()),
            predicted_time: best.energy,
            score: best.energy,
            evaluations: evals,
            elapsed: clock.clock().saturating_sub(start),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use cbes_core::snapshot::SystemSnapshot;

    #[test]
    fn ga_finds_valid_good_mapping() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 0.05, 500, 8192);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let r = GeneticScheduler::new(GaConfig::fast(2))
            .schedule(&req)
            .unwrap();
        assert!(r.mapping.is_injective());
        // Must co-locate the communication-bound ring on one switch.
        let m = r.mapping.as_slice();
        let sw: Vec<_> = m.iter().map(|&n| c.node(n).switch).collect();
        assert!(sw.iter().all(|&s| s == sw[0]), "got {:?}", r.mapping);
    }

    #[test]
    fn crossover_preserves_injectivity() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool: Vec<NodeId> = (0..8).map(NodeId).collect();
        let a: Vec<NodeId> = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let b: Vec<NodeId> = vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)];
        for _ in 0..100 {
            let child = GeneticScheduler::crossover(&a, &b, &pool, &mut rng);
            let mut sorted = child.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "child not injective: {child:?}");
            assert!(child.iter().all(|n| pool.contains(n)));
        }
    }

    #[test]
    fn mutation_preserves_injectivity() {
        let mut rng = StdRng::seed_from_u64(6);
        let pool: Vec<NodeId> = (0..6).map(NodeId).collect();
        let mut genes = vec![NodeId(0), NodeId(2), NodeId(4)];
        for _ in 0..100 {
            GeneticScheduler::mutate(&mut genes, &pool, &mut rng);
            let mut sorted = genes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
        }
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 1.0, 50, 4096);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let a = GeneticScheduler::new(GaConfig::fast(3))
            .schedule(&req)
            .unwrap();
        let b = GeneticScheduler::new(GaConfig::fast(3))
            .schedule(&req)
            .unwrap();
        assert_eq!(a.mapping, b.mapping);
    }
}
