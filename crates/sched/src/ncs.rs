//! The NCS baseline: the CS annealer with the communication term removed
//! (paper §6). Its cost function "assigns an evaluation score to each
//! mapping under consideration but cannot predict execution times".

use crate::sa::{Objective, SaConfig, SaScheduler};
use crate::{SchedError, ScheduleRequest, ScheduleResult, Scheduler};

/// Simulated annealing over computation speeds and CPU loads only,
/// ignoring communication latency effects.
#[derive(Debug, Clone)]
pub struct NcsScheduler {
    inner: SaScheduler,
}

impl NcsScheduler {
    /// An NCS scheduler with the given annealing configuration.
    pub fn new(config: SaConfig) -> Self {
        NcsScheduler {
            inner: SaScheduler::with_objective(config, Objective::ComputeOnly),
        }
    }
}

impl Scheduler for NcsScheduler {
    fn name(&self) -> &'static str {
        "NCS"
    }

    fn schedule(&mut self, req: &ScheduleRequest<'_>) -> Result<ScheduleResult, SchedError> {
        self.inner.schedule(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use cbes_core::snapshot::SystemSnapshot;

    #[test]
    fn ncs_ignores_communication_topology() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        // Pure-compute profile restricted to the 4 Alphas: every injective
        // mapping has the same NCS score.
        let p = ring_profile(2, 1.0, 300, 8192);
        let pool: Vec<_> = c.node_ids().take(4).collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let r = NcsScheduler::new(SaConfig::fast(2)).schedule(&req).unwrap();
        // Score is the compute-only term: exactly (x+o)/speed = 1.05.
        assert!((r.score - 1.05).abs() < 1e-9, "score {}", r.score);
        // But the *full* prediction exceeds the score (communication cost
        // exists, NCS just can't see it).
        assert!(r.predicted_time > r.score);
    }

    #[test]
    fn ncs_still_avoids_slow_nodes() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(3, 10.0, 5, 128);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let r = NcsScheduler::new(SaConfig::fast(4)).schedule(&req).unwrap();
        for (_, node) in r.mapping.iter() {
            assert!(c.node(node).speed > 0.9, "NCS must pick Alphas");
        }
    }
}
