//! CBES schedulers.
//!
//! The paper's default scheduler (**CS**) is a simulated-annealing search
//! whose energy function is the CBES mapping evaluation (eq. 4). Two
//! baselines frame the experiments: **NCS**, the same annealer with the
//! communication term dropped, and **RS**, a uniformly random mapping.
//! Additionally this crate provides a greedy list scheduler (a HEFT-flavoured
//! baseline) and a genetic-algorithm scheduler (the paper's named
//! future-work direction, §8).
//!
//! All schedulers work over a *pool* of candidate nodes (the resources made
//! available to the application by policy, §2) and return injective mappings
//! (one process per node), matching the paper's experimental setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod genetic;
pub mod greedy;
pub mod moves;
pub mod ncs;
pub mod random;
pub mod sa;
pub mod telemetry;

pub use genetic::{GaConfig, GeneticScheduler};
pub use greedy::GreedyScheduler;
pub use ncs::NcsScheduler;
pub use random::RandomScheduler;
pub use sa::{SaConfig, SaScheduler};
pub use telemetry::{NullSink, RecordingSink, StageStats, TelemetrySink};

use cbes_cluster::NodeId;
use cbes_core::eval::Evaluator;
use cbes_core::mapping::Mapping;
use cbes_core::snapshot::SystemSnapshot;
use cbes_trace::AppProfile;
use std::fmt;
use std::time::Duration;

/// A scheduling request: find a good mapping of `profile`'s processes onto
/// nodes drawn from `pool`, under the system conditions in `snapshot`.
///
/// The pool is filtered against the snapshot's health view at construction:
/// nodes classified `Down` are removed before any scheduler sees them, so
/// *no* scheduler — deterministic or randomised — can assign a process to a
/// down node.
pub struct ScheduleRequest<'a> {
    /// The application to schedule.
    pub profile: &'a AppProfile,
    /// Current system conditions.
    pub snapshot: &'a SystemSnapshot<'a>,
    /// Usable candidate nodes (the given pool minus `Down` nodes).
    usable: Vec<NodeId>,
    /// Nodes in the pool as requested, before health filtering.
    requested: usize,
}

impl<'a> ScheduleRequest<'a> {
    /// Build a request. `Down` nodes are dropped from `pool` here.
    pub fn new(
        profile: &'a AppProfile,
        snapshot: &'a SystemSnapshot<'a>,
        pool: &'a [NodeId],
    ) -> Self {
        let usable: Vec<NodeId> = pool
            .iter()
            .copied()
            .filter(|&n| snapshot.is_usable(n))
            .collect();
        ScheduleRequest {
            profile,
            snapshot,
            usable,
            requested: pool.len(),
        }
    }

    /// The candidate nodes schedulers may draw from (post health filter).
    pub fn pool(&self) -> &[NodeId] {
        &self.usable
    }

    /// Nodes excluded from the requested pool because they are `Down`.
    pub fn excluded_down(&self) -> usize {
        self.requested - self.usable.len()
    }

    /// Number of processes to place.
    pub fn num_procs(&self) -> usize {
        self.profile.num_procs()
    }

    /// An evaluator bound to this request's profile and snapshot.
    pub fn evaluator(&self) -> Evaluator<'a> {
        Evaluator::new(self.profile, self.snapshot)
    }

    /// Validate pool size and profile non-emptiness. The pool check runs
    /// against the *usable* pool, so a cluster with too many down nodes
    /// fails loudly instead of over-packing the survivors.
    pub fn validate(&self) -> Result<(), SchedError> {
        if self.num_procs() == 0 {
            return Err(SchedError::EmptyProfile);
        }
        if self.usable.len() < self.num_procs() {
            return Err(SchedError::PoolTooSmall {
                need: self.num_procs(),
                have: self.usable.len(),
                down: self.excluded_down(),
            });
        }
        Ok(())
    }
}

/// The outcome of one scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// The selected mapping.
    pub mapping: Mapping,
    /// Full CBES execution-time prediction for the selected mapping
    /// (seconds). For NCS this is the *normalised prediction* the paper's
    /// tables report: the chosen mapping re-evaluated with the full
    /// operation.
    pub predicted_time: f64,
    /// The scheduler's own objective value for the selected mapping (equals
    /// `predicted_time` for CS; the compute-only score for NCS).
    pub score: f64,
    /// Number of mapping evaluations performed.
    pub evaluations: u64,
    /// Wall-clock scheduler time (the paper's "approximate scheduler time").
    pub elapsed: Duration,
}

/// Scheduler errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The candidate pool has fewer usable nodes than the application has
    /// processes.
    PoolTooSmall {
        /// Processes to place.
        need: usize,
        /// Usable pool size (after dropping `Down` nodes).
        have: usize,
        /// Nodes excluded from the requested pool because they are `Down`.
        down: usize,
    },
    /// The profile has no processes.
    EmptyProfile,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::PoolTooSmall { need, have, down } => {
                write!(
                    f,
                    "pool has {have} usable nodes ({down} down) but {need} processes must be placed"
                )
            }
            SchedError::EmptyProfile => write!(f, "profile has no processes"),
        }
    }
}

impl std::error::Error for SchedError {}

/// A mapping scheduler.
pub trait Scheduler {
    /// Human-readable scheduler name ("CS", "NCS", "RS", ...).
    fn name(&self) -> &'static str;

    /// Find a mapping for the request.
    fn schedule(&mut self, req: &ScheduleRequest<'_>) -> Result<ScheduleResult, SchedError>;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::Cluster;
    use cbes_trace::{MessageGroup, ProcessProfile};
    use std::collections::BTreeMap;

    /// A 4-process ring-communication profile: each rank exchanges many
    /// messages with its ring neighbours, so same-switch placements win.
    pub fn ring_profile(n: usize, compute: f64, msgs: u64, bytes: u64) -> AppProfile {
        let procs = (0..n)
            .map(|rank| {
                let next = (rank + 1) % n;
                let prev = (rank + n - 1) % n;
                ProcessProfile {
                    rank,
                    x: compute,
                    o: 0.05,
                    b: 0.5,
                    sends: vec![MessageGroup {
                        peer: next,
                        bytes,
                        count: msgs,
                    }],
                    recvs: vec![MessageGroup {
                        peer: prev,
                        bytes,
                        count: msgs,
                    }],
                    profile_speed: 1.0,
                    lambda: 1.0,
                }
            })
            .collect();
        AppProfile {
            name: format!("ring.{n}"),
            procs,
            arch_ratios: BTreeMap::new(),
        }
    }

    pub fn demo() -> Cluster {
        two_switch_demo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::*;

    #[test]
    fn request_validation() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 1.0, 10, 1024);
        let pool: Vec<NodeId> = c.node_ids().collect();
        assert!(ScheduleRequest::new(&p, &snap, &pool).validate().is_ok());
        assert_eq!(
            ScheduleRequest::new(&p, &snap, &pool[..2])
                .validate()
                .unwrap_err(),
            SchedError::PoolTooSmall {
                need: 4,
                have: 2,
                down: 0
            }
        );
        let empty = AppProfile {
            name: "empty".into(),
            procs: vec![],
            arch_ratios: Default::default(),
        };
        assert_eq!(
            ScheduleRequest::new(&empty, &snap, &pool)
                .validate()
                .unwrap_err(),
            SchedError::EmptyProfile
        );
    }

    #[test]
    fn down_nodes_are_filtered_from_every_request_pool() {
        use cbes_core::health::{HealthView, NodeHealth};
        let c = demo();
        let mut snap = SystemSnapshot::no_load(&c, &c);
        let mut states = vec![NodeHealth::Healthy; c.len()];
        states[1] = NodeHealth::Down;
        states[5] = NodeHealth::Down;
        snap.set_health(HealthView::new(states, 2.0));
        let p = ring_profile(4, 1.0, 10, 1024);
        let pool: Vec<NodeId> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        assert_eq!(req.pool().len(), pool.len() - 2);
        assert_eq!(req.excluded_down(), 2);
        assert!(!req.pool().contains(&NodeId(1)));
        assert!(!req.pool().contains(&NodeId(5)));
        // Every scheduler draws from the filtered pool only.
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(SaScheduler::new(SaConfig::fast(3))),
            Box::new(NcsScheduler::new(SaConfig::fast(4))),
            Box::new(GreedyScheduler::new()),
            Box::new(GeneticScheduler::new(GaConfig::fast(5))),
            Box::new(RandomScheduler::new(6)),
        ];
        for s in &mut schedulers {
            let r = s.schedule(&req).unwrap();
            for (_, node) in r.mapping.iter() {
                assert!(
                    node != NodeId(1) && node != NodeId(5),
                    "{} assigned a down node",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn too_many_down_nodes_fail_loudly() {
        use cbes_core::health::{HealthView, NodeHealth};
        let c = demo();
        let mut snap = SystemSnapshot::no_load(&c, &c);
        // All but 2 nodes down; a 4-process app cannot be placed.
        let mut states = vec![NodeHealth::Down; c.len()];
        states[0] = NodeHealth::Healthy;
        states[1] = NodeHealth::Healthy;
        snap.set_health(HealthView::new(states, 2.0));
        let p = ring_profile(4, 1.0, 10, 1024);
        let pool: Vec<NodeId> = c.node_ids().collect();
        let err = ScheduleRequest::new(&p, &snap, &pool)
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            SchedError::PoolTooSmall {
                need: 4,
                have: 2,
                down: c.len() - 2
            }
        );
    }

    #[test]
    fn error_display() {
        assert!(SchedError::PoolTooSmall {
            need: 8,
            have: 3,
            down: 1
        }
        .to_string()
        .contains("8 processes"));
    }
}
