//! Annealer telemetry: an observer the SA inner loop reports into.
//!
//! The hot loop is generic over [`TelemetrySink`], so the disabled path
//! ([`NullSink`]) monomorphises to nothing — no allocation, no branch,
//! no clock read per move. [`RecordingSink`] aggregates per-temperature
//! acceptance rates, the best-energy trace, and the move rate, for
//! diagnosing cooling schedules on real runs.
//!
//! All wall-clock reads in the scheduler crate go through
//! [`TelemetrySink::clock`], so tests can substitute a deterministic
//! clock and `cbes-analyze`'s determinism rule can pin the single
//! waived `Instant::now` call site to [`monotonic`].

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Time elapsed since the crate's private monotonic epoch (the first
/// call). The only real clock read in the scheduler crate; everything
/// else asks a [`TelemetrySink`] for the time.
pub(crate) fn monotonic() -> Duration {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // cbes-analyze: allow(determinism, the one sanctioned wall-clock read; every scheduler path reaches it through TelemetrySink::clock so tests can override it)
    EPOCH.get_or_init(Instant::now).elapsed()
}

/// Observer for one scheduling run's annealing loop. All methods have
/// `&mut self` receivers so sinks can aggregate without interior
/// mutability; the annealer calls them single-threaded.
pub trait TelemetrySink {
    /// One proposed move was evaluated at temperature `temp`.
    fn on_move(&mut self, temp: f64, accepted: bool);
    /// The run's best energy improved to `energy` at evaluation `eval`.
    fn on_improvement(&mut self, eval: u64, energy: f64);
    /// One restart finished with the given best energy.
    fn on_restart(&mut self, best_energy: f64);
    /// Monotonic elapsed time since an arbitrary fixed epoch. Schedulers
    /// time themselves by differencing two reads, so only monotonicity
    /// matters. Override in tests for a deterministic clock.
    fn clock(&mut self) -> Duration {
        monotonic()
    }
}

/// Discards everything. Monomorphised into the annealer this is a set of
/// empty inlined calls, keeping the disabled telemetry path free.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    #[inline(always)]
    fn on_move(&mut self, _temp: f64, _accepted: bool) {}
    #[inline(always)]
    fn on_improvement(&mut self, _eval: u64, _energy: f64) {}
    #[inline(always)]
    fn on_restart(&mut self, _best_energy: f64) {}
}

/// Acceptance statistics for one temperature decade of the cooling
/// schedule (all moves proposed while `10^decade <= temp < 10^(decade+1)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStats {
    /// `floor(log10(temperature))` for this stage.
    pub decade: i32,
    /// Moves proposed in this stage.
    pub proposed: u64,
    /// Moves accepted in this stage.
    pub accepted: u64,
}

impl StageStats {
    /// Fraction of proposed moves that were accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

/// Aggregating sink: per-temperature-decade acceptance rates, the
/// best-energy trace, restart outcomes, and the observed move rate.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    stages: Vec<StageStats>,
    best_trace: Vec<(u64, f64)>,
    restarts: Vec<f64>,
    moves: u64,
    first_move: Option<Duration>,
    last_move: Option<Duration>,
}

impl RecordingSink {
    /// An empty sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Total moves proposed across every restart.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Per-temperature-decade acceptance statistics, in the order the
    /// cooling schedule visited them (hot to cold, repeating per restart).
    pub fn stages(&self) -> &[StageStats] {
        &self.stages
    }

    /// `(evaluation, energy)` pairs at each best-energy improvement, in
    /// chronological order; energies are strictly decreasing within one
    /// restart.
    pub fn best_trace(&self) -> &[(u64, f64)] {
        &self.best_trace
    }

    /// Best energy reached by each finished restart.
    pub fn restart_energies(&self) -> &[f64] {
        &self.restarts
    }

    /// Observed move throughput (moves per second between the first and
    /// last recorded move); 0 before two moves have been seen.
    pub fn moves_per_sec(&self) -> f64 {
        match (self.first_move, self.last_move) {
            (Some(first), Some(last)) if self.moves > 1 => {
                let secs = last.saturating_sub(first).as_secs_f64();
                if secs > 0.0 {
                    self.moves as f64 / secs
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    }
}

impl TelemetrySink for RecordingSink {
    fn on_move(&mut self, temp: f64, accepted: bool) {
        let now = self.clock();
        self.first_move.get_or_insert(now);
        self.last_move = Some(now);
        self.moves += 1;
        let decade = temp.log10().floor() as i32;
        match self.stages.last_mut() {
            Some(stage) if stage.decade == decade => {
                stage.proposed += 1;
                stage.accepted += u64::from(accepted);
            }
            _ => self.stages.push(StageStats {
                decade,
                proposed: 1,
                accepted: u64::from(accepted),
            }),
        }
    }

    fn on_improvement(&mut self, eval: u64, energy: f64) {
        self.best_trace.push((eval, energy));
    }

    fn on_restart(&mut self, best_energy: f64) {
        self.restarts.push(best_energy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_bucket_by_temperature_decade() {
        let mut sink = RecordingSink::new();
        sink.on_move(0.5, true); // decade -1
        sink.on_move(0.2, false); // decade -1
        sink.on_move(0.05, true); // decade -2
        sink.on_move(0.003, false); // decade -3
        let stages = sink.stages();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].decade, -1);
        assert_eq!(stages[0].proposed, 2);
        assert_eq!(stages[0].accepted, 1);
        assert_eq!(stages[1].decade, -2);
        assert!((stages[1].acceptance_rate() - 1.0).abs() < 1e-12);
        assert_eq!(stages[2].acceptance_rate(), 0.0);
        assert_eq!(sink.moves(), 4);
    }

    #[test]
    fn traces_and_restarts_accumulate() {
        let mut sink = RecordingSink::new();
        sink.on_improvement(1, 9.0);
        sink.on_improvement(40, 7.5);
        sink.on_restart(7.5);
        assert_eq!(sink.best_trace(), &[(1, 9.0), (40, 7.5)]);
        assert_eq!(sink.restart_energies(), &[7.5]);
    }

    #[test]
    fn null_sink_is_a_no_op() {
        let mut sink = NullSink;
        sink.on_move(1.0, true);
        sink.on_improvement(1, 1.0);
        sink.on_restart(1.0);
    }
}
