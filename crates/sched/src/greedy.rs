//! A greedy list scheduler (HEFT-flavoured baseline, used by the scheduler
//! ablation benches).
//!
//! Ranks are placed in decreasing order of computational weight; each rank
//! takes the pool node that minimises its own `R_i` plus the λ-corrected
//! communication cost to the peers already placed. Deterministic and cheap
//! (`O(n_procs × pool)` evaluations of partial costs), but with no global
//! view — simulated annealing should beat it on communication-bound apps.

use crate::telemetry::{NullSink, TelemetrySink};
use crate::{SchedError, ScheduleRequest, ScheduleResult, Scheduler};
use cbes_cluster::NodeId;
use cbes_core::mapping::Mapping;

/// Deterministic greedy list scheduler.
#[derive(Debug, Clone, Default)]
pub struct GreedyScheduler;

impl GreedyScheduler {
    /// A greedy scheduler.
    pub fn new() -> Self {
        GreedyScheduler
    }
}

impl Scheduler for GreedyScheduler {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn schedule(&mut self, req: &ScheduleRequest<'_>) -> Result<ScheduleResult, SchedError> {
        req.validate()?;
        let mut clock = NullSink;
        let start = clock.clock();
        let snap = req.snapshot;
        let n = req.num_procs();

        // Place heavy ranks first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let wa = req.profile.procs[a].x + req.profile.procs[a].o;
            let wb = req.profile.procs[b].x + req.profile.procs[b].o;
            wb.partial_cmp(&wa).expect("profile times are finite")
        });

        let mut placed: Vec<Option<NodeId>> = vec![None; n];
        let mut free: Vec<NodeId> = req.pool().to_vec();
        let mut evals = 0u64;

        for &rank in &order {
            let p = &req.profile.procs[rank];
            let mut best: Option<(usize, f64)> = None;
            for (fi, &node) in free.iter().enumerate() {
                // Partial cost of putting `rank` on `node` now.
                let r = (p.x + p.o) * (p.profile_speed / snap.speed(node))
                    / snap.effective_acpu(node).max(f64::MIN_POSITIVE);
                let mut c = 0.0;
                for g in &p.sends {
                    if let Some(peer_node) = placed[g.peer] {
                        c += g.count as f64 * snap.current_latency(node, peer_node, g.bytes);
                    }
                }
                for g in &p.recvs {
                    if let Some(peer_node) = placed[g.peer] {
                        c += g.count as f64 * snap.current_latency(peer_node, node, g.bytes);
                    }
                }
                let cost = r + p.lambda * c;
                evals += 1;
                if best.is_none_or(|(_, bc)| cost < bc) {
                    best = Some((fi, cost));
                }
            }
            let (fi, _) = best.expect("pool validated non-empty");
            placed[rank] = Some(free.swap_remove(fi));
        }

        let mapping = Mapping::new(
            placed
                .into_iter()
                .map(|p| p.expect("every rank placed"))
                .collect(),
        );
        let ev = req.evaluator();
        let predicted_time = ev.predict_time(&mapping);
        Ok(ScheduleResult {
            mapping,
            predicted_time,
            score: predicted_time,
            evaluations: evals,
            elapsed: clock.clock().saturating_sub(start),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use cbes_core::snapshot::SystemSnapshot;

    #[test]
    fn greedy_places_all_ranks_injectively() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(5, 1.0, 50, 2048);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let r = GreedyScheduler::new().schedule(&req).unwrap();
        assert_eq!(r.mapping.len(), 5);
        assert!(r.mapping.is_injective());
    }

    #[test]
    fn greedy_picks_fast_nodes_for_compute_heavy_work() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 10.0, 1, 64);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let r = GreedyScheduler::new().schedule(&req).unwrap();
        for (_, node) in r.mapping.iter() {
            assert!(c.node(node).speed > 0.9);
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 1.0, 100, 4096);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let a = GreedyScheduler::new().schedule(&req).unwrap();
        let b = GreedyScheduler::new().schedule(&req).unwrap();
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn greedy_co_locates_communicating_pairs() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        // Two ranks, huge message volume: both must end on the same switch.
        let p = ring_profile(2, 0.01, 1000, 16384);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let r = GreedyScheduler::new().schedule(&req).unwrap();
        let m = r.mapping.as_slice();
        assert!(c.same_switch(m[0], m[1]), "got {:?}", r.mapping);
    }
}
