//! The default CBES scheduler (CS): simulated annealing with the mapping
//! evaluation operation as the energy function (paper §6, refs \[19\]\[20\]).

use crate::moves::SearchState;
use crate::telemetry::{NullSink, TelemetrySink};
use crate::{SchedError, ScheduleRequest, ScheduleResult, Scheduler};
use cbes_core::eval::Evaluator;
use cbes_core::mapping::Mapping;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which objective the annealer minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Full CBES prediction `max_i (R_i + C_i)` — the CS scheduler.
    FullPrediction,
    /// Computation-only score `max_i R_i` — the NCS baseline (paper §6).
    ComputeOnly,
}

/// Simulated-annealing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    /// Iterations per restart.
    pub iters: u32,
    /// Independent restarts (best result wins).
    pub restarts: u32,
    /// Initial temperature as a fraction of the initial energy.
    pub t0_frac: f64,
    /// Final temperature as a fraction of the initial temperature; the
    /// geometric cooling rate is derived from this and `iters`.
    pub t_end_frac: f64,
    /// Probability that a proposed move is a rank swap (vs. a node
    /// replacement from the spare pool).
    pub swap_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SaConfig {
    /// A fast configuration for interactive scheduling (~2k evaluations).
    pub fn fast(seed: u64) -> Self {
        SaConfig {
            iters: 2_000,
            restarts: 1,
            t0_frac: 0.05,
            t_end_frac: 1e-4,
            swap_prob: 0.5,
            seed,
        }
    }

    /// A thorough configuration (~20k evaluations over 2 restarts).
    pub fn thorough(seed: u64) -> Self {
        SaConfig {
            iters: 10_000,
            restarts: 2,
            t0_frac: 0.08,
            t_end_frac: 1e-5,
            swap_prob: 0.5,
            seed,
        }
    }

    /// Geometric cooling factor per iteration.
    fn cooling(&self) -> f64 {
        if self.iters <= 1 {
            return 1.0;
        }
        self.t_end_frac.powf(1.0 / (self.iters as f64 - 1.0))
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig::fast(1)
    }
}

/// The simulated-annealing scheduler. With [`Objective::FullPrediction`]
/// this is the paper's CS; `cbes-sched::NcsScheduler` wraps the same core
/// with [`Objective::ComputeOnly`].
#[derive(Debug, Clone)]
pub struct SaScheduler {
    config: SaConfig,
    objective: Objective,
}

impl SaScheduler {
    /// The CS scheduler with the given configuration.
    pub fn new(config: SaConfig) -> Self {
        SaScheduler {
            config,
            objective: Objective::FullPrediction,
        }
    }

    /// An annealer with an explicit objective (used by NCS and ablations).
    pub fn with_objective(config: SaConfig, objective: Objective) -> Self {
        SaScheduler { config, objective }
    }

    /// The configured objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    fn energy(&self, ev: &Evaluator<'_>, m: &Mapping) -> f64 {
        match self.objective {
            Objective::FullPrediction => ev.predict_time(m),
            Objective::ComputeOnly => ev.compute_only_score(m),
        }
    }

    /// One annealing run from a random initial state; returns the best
    /// mapping, its energy, and the number of evaluations.
    ///
    /// Generic over the sink so the disabled-telemetry path
    /// ([`NullSink`]) compiles to the bare loop.
    fn anneal<S: TelemetrySink>(
        &self,
        req: &ScheduleRequest<'_>,
        ev: &Evaluator<'_>,
        rng: &mut StdRng,
        sink: &mut S,
    ) -> (Mapping, f64, u64) {
        let n = req.num_procs();
        let mut state = SearchState::random(req.pool(), n, rng);
        let mut current = self.energy(ev, &state.mapping());
        let mut evals = 1u64;
        let mut best = (state.mapping(), current);
        sink.on_improvement(evals, current);

        let mut temp = (current * self.config.t0_frac).max(f64::MIN_POSITIVE);
        let cooling = self.config.cooling();

        for _ in 0..self.config.iters {
            let mv = state.propose(self.config.swap_prob, rng);
            state.apply(mv);
            let cand = self.energy(ev, &state.mapping());
            evals += 1;
            let accept = cand <= current || {
                let p = (-(cand - current) / temp).exp();
                rng.random_range(0.0..1.0) < p
            };
            sink.on_move(temp, accept);
            if accept {
                current = cand;
                if current < best.1 {
                    best = (state.mapping(), current);
                    sink.on_improvement(evals, current);
                }
            } else {
                state.apply(mv); // undo
            }
            temp *= cooling;
        }
        sink.on_restart(best.1);
        (best.0, best.1, evals)
    }

    /// Like [`Scheduler::schedule`], reporting the annealing loop's
    /// progress into `sink` (per-temperature acceptance, best-energy
    /// trace, move rate).
    pub fn schedule_with_sink<S: TelemetrySink>(
        &mut self,
        req: &ScheduleRequest<'_>,
        sink: &mut S,
    ) -> Result<ScheduleResult, SchedError> {
        req.validate()?;
        let start = sink.clock();
        let ev = req.evaluator();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut evals = 0u64;
        let mut best: Option<(Mapping, f64)> = None;
        for _ in 0..self.config.restarts.max(1) {
            let (m, e, n) = self.anneal(req, &ev, &mut rng, sink);
            evals += n;
            if best.as_ref().is_none_or(|(_, be)| e < *be) {
                best = Some((m, e));
            }
        }
        let (mapping, score) = best.expect("at least one restart runs");
        // The tables report NCS mappings re-evaluated with the full
        // operation ("normalised prediction"); for CS this is the score.
        let predicted_time = ev.predict_time(&mapping);
        Ok(ScheduleResult {
            mapping,
            predicted_time,
            score,
            evaluations: evals,
            elapsed: sink.clock().saturating_sub(start),
        })
    }
}

impl Scheduler for SaScheduler {
    fn name(&self) -> &'static str {
        match self.objective {
            Objective::FullPrediction => "CS",
            Objective::ComputeOnly => "NCS",
        }
    }

    fn schedule(&mut self, req: &ScheduleRequest<'_>) -> Result<ScheduleResult, SchedError> {
        self.schedule_with_sink(req, &mut NullSink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use cbes_core::snapshot::SystemSnapshot;

    #[test]
    fn cs_finds_same_switch_mapping_for_comm_heavy_ring() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        // Communication-dominated: many messages, small compute.
        let p = ring_profile(4, 0.05, 500, 8192);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        // Restarts make the stochastic search robust to the RNG stream
        // (a single fast() run can stall in a cross-switch local optimum).
        let mut cs = SaScheduler::new(SaConfig {
            restarts: 4,
            ..SaConfig::fast(7)
        });
        let r = cs.schedule(&req).unwrap();
        // All four ranks on one switch: pairwise same-switch.
        let m = r.mapping.as_slice();
        let sw: Vec<_> = m.iter().map(|&n| c.node(n).switch).collect();
        assert!(
            sw.iter().all(|&s| s == sw[0]),
            "CS should co-locate the ring on one switch, got {:?}",
            r.mapping
        );
        assert!(r.evaluations > 1000);
        assert!(r.mapping.is_injective());
    }

    #[test]
    fn cs_prefers_fast_nodes_for_compute_heavy_app() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        // Compute-dominated: Alphas (nodes 0-3, speed 1.0) must win over
        // Intels (nodes 4-7, speed 0.85).
        let p = ring_profile(3, 10.0, 5, 256);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let mut cs = SaScheduler::new(SaConfig::fast(11));
        let r = cs.schedule(&req).unwrap();
        for (_, node) in r.mapping.iter() {
            assert!(
                c.node(node).speed > 0.9,
                "compute-heavy app must land on Alphas, got {:?}",
                r.mapping
            );
        }
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 1.0, 50, 4096);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let a = SaScheduler::new(SaConfig::fast(3)).schedule(&req).unwrap();
        let b = SaScheduler::new(SaConfig::fast(3)).schedule(&req).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.predicted_time, b.predicted_time);
    }

    #[test]
    fn restarts_never_hurt() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 0.5, 100, 4096);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let single = SaScheduler::new(SaConfig {
            restarts: 1,
            ..SaConfig::fast(5)
        })
        .schedule(&req)
        .unwrap();
        let multi = SaScheduler::new(SaConfig {
            restarts: 3,
            ..SaConfig::fast(5)
        })
        .schedule(&req)
        .unwrap();
        assert!(multi.score <= single.score + 1e-12);
    }

    #[test]
    fn cooling_reaches_configured_floor() {
        let cfg = SaConfig::fast(1);
        let c = cfg.cooling();
        let end = c.powf(cfg.iters as f64 - 1.0);
        assert!((end - cfg.t_end_frac).abs() / cfg.t_end_frac < 1e-6);
    }

    #[test]
    fn pool_too_small_is_reported() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 1.0, 10, 1024);
        let pool: Vec<_> = c.node_ids().take(2).collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let err = SaScheduler::new(SaConfig::fast(1))
            .schedule(&req)
            .unwrap_err();
        assert_eq!(
            err,
            SchedError::PoolTooSmall {
                need: 4,
                have: 2,
                down: 0
            }
        );
    }

    #[test]
    fn recording_sink_captures_a_centurion_run() {
        use crate::telemetry::RecordingSink;
        let c = cbes_cluster::presets::centurion();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(8, 1.0, 50, 4096);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let mut sink = RecordingSink::new();
        let r = SaScheduler::new(SaConfig::fast(3))
            .schedule_with_sink(&req, &mut sink)
            .unwrap();

        // One on_move per iteration; the initial state is the extra eval.
        assert_eq!(sink.moves(), r.evaluations - 1);
        assert_eq!(sink.restart_energies(), &[r.score]);
        assert!(sink.moves_per_sec() > 0.0);

        // The cooling schedule spans several temperature decades, and the
        // cold tail accepts no more often than the hot start.
        let stages = sink.stages();
        assert!(
            stages.len() >= 3,
            "expected several decades, got {stages:?}"
        );
        let first = stages.first().unwrap();
        let last = stages.last().unwrap();
        assert!(first.decade > last.decade, "temperature must fall");
        assert!(
            first.acceptance_rate() >= last.acceptance_rate(),
            "hot stage {first:?} must accept at least as often as cold {last:?}"
        );

        // The best-energy trace is chronological and strictly improving.
        let trace = sink.best_trace();
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[0].0 <= w[1].0, "trace must be chronological");
            assert!(w[0].1 > w[1].1, "best energy must strictly improve");
        }
        assert_eq!(trace.last().unwrap().1, r.score);
    }

    #[test]
    fn telemetry_does_not_perturb_the_search() {
        use crate::telemetry::RecordingSink;
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 1.0, 50, 4096);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let plain = SaScheduler::new(SaConfig::fast(9)).schedule(&req).unwrap();
        let mut sink = RecordingSink::new();
        let recorded = SaScheduler::new(SaConfig::fast(9))
            .schedule_with_sink(&req, &mut sink)
            .unwrap();
        assert_eq!(plain.mapping, recorded.mapping);
        assert_eq!(plain.predicted_time, recorded.predicted_time);
        assert_eq!(plain.evaluations, recorded.evaluations);
    }

    #[test]
    fn elapsed_comes_from_the_sink_clock() {
        use crate::telemetry::TelemetrySink;
        use std::time::Duration;

        /// Deterministic clock: advances 7 ms per read, records nothing.
        struct FrozenClock {
            reads: u32,
        }
        impl TelemetrySink for FrozenClock {
            fn on_move(&mut self, _temp: f64, _accepted: bool) {}
            fn on_improvement(&mut self, _eval: u64, _energy: f64) {}
            fn on_restart(&mut self, _best_energy: f64) {}
            fn clock(&mut self) -> Duration {
                self.reads += 1;
                Duration::from_millis(7) * self.reads
            }
        }

        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 1.0, 50, 4096);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let mut clock = FrozenClock { reads: 0 };
        let r = SaScheduler::new(SaConfig::fast(3))
            .schedule_with_sink(&req, &mut clock)
            .unwrap();
        // The run reads the clock exactly twice: start and finish.
        assert_eq!(clock.reads, 2);
        assert_eq!(r.elapsed, Duration::from_millis(7));
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(SaScheduler::new(SaConfig::fast(1)).name(), "CS");
        assert_eq!(
            SaScheduler::with_objective(SaConfig::fast(1), Objective::ComputeOnly).name(),
            "NCS"
        );
    }
}
