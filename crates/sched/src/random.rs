//! The RS baseline: a uniformly random mapping from the pool (paper §6).
//! "RS picks mappings at random from a pool of nodes considered equivalent.
//! As such, RS requires a negligible amount of time to find a mapping
//! solution."

use crate::moves::SearchState;
use crate::telemetry::{NullSink, TelemetrySink};
use crate::{SchedError, ScheduleRequest, ScheduleResult, Scheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random scheduler. Each call draws a fresh random injective
/// mapping (successive calls use successive RNG states, so repeated
/// scheduling yields the distribution the average-case experiments sample).
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// A random scheduler seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn schedule(&mut self, req: &ScheduleRequest<'_>) -> Result<ScheduleResult, SchedError> {
        req.validate()?;
        let mut clock = NullSink;
        let start = clock.clock();
        let state = SearchState::random(req.pool(), req.num_procs(), &mut self.rng);
        let mapping = state.mapping();
        let ev = req.evaluator();
        let predicted_time = ev.predict_time(&mapping);
        Ok(ScheduleResult {
            mapping,
            predicted_time,
            score: predicted_time,
            evaluations: 1,
            elapsed: clock.clock().saturating_sub(start),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use cbes_core::snapshot::SystemSnapshot;
    use std::collections::BTreeSet;

    #[test]
    fn rs_returns_valid_injective_mappings() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 1.0, 10, 1024);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let mut rs = RandomScheduler::new(9);
        for _ in 0..20 {
            let r = rs.schedule(&req).unwrap();
            assert!(r.mapping.is_injective());
            assert_eq!(r.mapping.len(), 4);
            assert_eq!(r.evaluations, 1);
            for (_, n) in r.mapping.iter() {
                assert!(pool.contains(&n));
            }
        }
    }

    #[test]
    fn rs_samples_different_mappings_across_calls() {
        let c = demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = ring_profile(4, 1.0, 10, 1024);
        let pool: Vec<_> = c.node_ids().collect();
        let req = ScheduleRequest::new(&p, &snap, &pool);
        let mut rs = RandomScheduler::new(10);
        let mappings: BTreeSet<String> = (0..20)
            .map(|_| rs.schedule(&req).unwrap().mapping.to_string())
            .collect();
        assert!(mappings.len() > 5, "RS should vary: {mappings:?}");
    }
}
