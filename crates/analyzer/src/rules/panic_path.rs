//! `panic_path`: the server connection path and the core evaluation
//! path must not panic on bad input.
//!
//! Checked everywhere in a scoped file:
//! - `.unwrap()` — banned, tests included; `.expect("<invariant>")`
//!   documents *why* the value must exist and is allowed.
//! - `.expect(..)` with a non-literal argument — banned; the message
//!   must be a string literal stating the invariant.
//!
//! Checked outside `#[cfg(test)]` only (idiomatic in tests):
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! - slice/array index expressions (`xs[i]`); `assert!`-family macros
//!   stay allowed — they *are* the documented invariant.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::rules::PANIC_PATH;
use crate::source::SourceFile;

/// Files the rule applies to, relative to the workspace root: the
/// daemon's request path and the service/evaluation core it calls into.
pub const SCOPE: [&str; 7] = [
    "crates/server/src/lib.rs",
    "crates/server/src/protocol.rs",
    "crates/server/src/server.rs",
    "crates/server/src/client.rs",
    "crates/core/src/service.rs",
    "crates/core/src/eval.rs",
    "crates/core/src/registry.rs",
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that legitimately precede `[` (slice patterns, array types,
/// array literals) and so do not indicate an index expression.
const NON_INDEX_BEFORE: [&str; 18] = [
    "let", "in", "return", "match", "if", "while", "else", "as", "move", "mut", "ref", "break",
    "continue", "dyn", "where", "impl", "const", "static",
];

/// Run the rule over one scoped file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        let dotted_call = |name: &str| {
            t.is_ident(name)
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        };
        if dotted_call("unwrap") {
            out.push(Finding::new(
                PANIC_PATH,
                &file.path,
                t.line,
                "`unwrap()` in the panic-free path; use `expect(\"<invariant>\")` or handle the error",
            ));
            continue;
        }
        if dotted_call("expect") && !toks.get(i + 2).is_some_and(|a| a.kind == TokKind::Str) {
            out.push(Finding::new(
                PANIC_PATH,
                &file.path,
                t.line,
                "`expect(..)` without a string-literal invariant message",
            ));
            continue;
        }
        if file.in_test_code(i) {
            continue;
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Finding::new(
                PANIC_PATH,
                &file.path,
                t.line,
                format!(
                    "`{}!` in the panic-free path; return a typed error instead",
                    t.text
                ),
            ));
            continue;
        }
        if t.is_punct('[') && i > 0 && is_index_base(&toks[i - 1]) {
            out.push(Finding::new(
                PANIC_PATH,
                &file.path,
                t.line,
                "index expression can panic out of bounds; use `.get(..)` or waive with the documented bound",
            ));
        }
    }
    out
}

/// True when the token before `[` makes it an index expression rather
/// than an array literal, slice pattern, attribute, or type.
fn is_index_base(prev: &crate::lexer::Token) -> bool {
    match prev.kind {
        TokKind::Ident => !NON_INDEX_BEFORE.contains(&prev.text.as_str()),
        TokKind::Punct => prev.is_punct(')') || prev.is_punct(']') || prev.is_punct('?'),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/server/src/server.rs", src))
    }

    #[test]
    fn unwrap_is_flagged_expect_literal_is_not() {
        let f = run("fn a(x: Option<u32>) { x.unwrap(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unwrap"));
        assert!(run("fn a(x: Option<u32>) { x.expect(\"set at startup\"); }").is_empty());
    }

    #[test]
    fn expect_with_computed_message_is_flagged() {
        let f = run("fn a(x: Option<u32>, m: &str) { x.expect(m); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("expect"));
    }

    #[test]
    fn panic_macros_flagged_outside_tests_only() {
        assert_eq!(run("fn a() { panic!(\"boom\"); }").len(), 1);
        assert_eq!(run("fn a() { unreachable!(); }").len(), 1);
        let in_test = "#[cfg(test)] mod t { fn a() { panic!(\"boom\"); } }";
        assert!(run(in_test).is_empty());
    }

    #[test]
    fn index_expressions_flagged_but_not_literals_or_patterns() {
        assert_eq!(run("fn a(xs: &[u32], i: usize) { xs[i]; }").len(), 1);
        assert!(run("fn a() { let xs = [1, 2, 3]; }").is_empty());
        assert!(run("fn a() -> [u8; 2] { let [a, b] = [0u8, 1]; [a, b] }").is_empty());
        assert!(run("fn a(xs: &[u32]) { xs.get(1); }").is_empty());
        assert!(
            run("fn a() { vec![1, 2]; }").is_empty(),
            "macro bracket args"
        );
    }

    #[test]
    fn unwrap_in_tests_is_still_flagged() {
        let src = "#[cfg(test)] mod t { fn a(x: Option<u32>) { x.unwrap(); } }";
        assert_eq!(run(src).len(), 1);
    }
}
