//! `metric_names`: instrumentation call sites must name metrics via
//! the `cbes_obs::names` constants module, never via string literals.
//!
//! A typo in a literal metric name silently forks a counter — the
//! dashboards keep working, each half under-counting. Routing every
//! name through one constants module turns that typo into a compile
//! error (`names::SERVER_SREVED` does not exist).
//!
//! Flagged: `.counter("...")`, `.gauge("...")`, `.histogram("...")`,
//! `.span("...")`, `.span_rooted("...")` with a string-literal
//! argument, outside `#[cfg(test)]` (tests may mint scratch names).

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::rules::METRIC_NAMES;
use crate::source::SourceFile;

/// Instrumentation entry points whose first argument is a metric name.
const INSTRUMENT_FNS: [&str; 5] = ["counter", "gauge", "histogram", "span", "span_rooted"];

/// True when `rel` (workspace-relative path) is in scope: production
/// crates, excluding `cbes-obs` itself (it defines the constants) and
/// this analyzer.
pub fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/")
        && !rel.starts_with("crates/obs/")
        && !rel.starts_with("crates/analyzer/")
}

/// Run the rule over one scoped file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 1..toks.len() {
        if file.in_test_code(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && INSTRUMENT_FNS.contains(&t.text.as_str())
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|a| a.kind == TokKind::Str)
        {
            let name = &toks[i + 2].text;
            out.push(Finding::new(
                METRIC_NAMES,
                &file.path,
                t.line,
                format!(
                    "metric name \"{name}\" is a string literal; use a `cbes_obs::names` constant"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/server/src/server.rs", src))
    }

    #[test]
    fn literal_names_are_flagged() {
        let f = run("fn a(r: &Registry) { r.counter(\"server.served\").incr(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("server.served"));
        assert_eq!(
            run("fn a(r: &Registry) { r.histogram(\"lat\").record(1); }").len(),
            1
        );
    }

    #[test]
    fn constants_and_computed_names_are_fine() {
        assert!(run("fn a(r: &Registry) { r.counter(names::SERVER_SERVED).incr(); }").is_empty());
        assert!(run("fn a(r: &Registry, n: &'static str) { r.span(n); }").is_empty());
        assert_eq!(
            run("fn a(s: &SpanRing) { s.span_rooted(\"lit\", 1, 0); }").len(),
            1
        );
        assert!(
            run("fn a(s: &SpanRing) { s.span_rooted(names::SPAN_CLI_REQUEST, 1, 0); }").is_empty()
        );
    }

    #[test]
    fn tests_may_mint_scratch_names() {
        let src = "#[cfg(test)] mod t { fn a(r: &Registry) { r.counter(\"scratch\"); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn scope_excludes_obs_and_analyzer() {
        assert!(in_scope("crates/server/src/server.rs"));
        assert!(!in_scope("crates/obs/src/registry.rs"));
        assert!(!in_scope("crates/analyzer/src/main.rs"));
        assert!(!in_scope("vendor/serde/src/lib.rs"));
    }
}
