//! `unsafe_audit`: `unsafe` only in the audited-module allowlist, and
//! only as `unsafe { }` blocks carrying a `// SAFETY:` justification.
//!
//! `forbid_unsafe` keeps `#![forbid(unsafe_code)]` on every crate root;
//! the server crate alone downgrades it so the epoll shim can make
//! syscalls. This rule is the complement: *within* that exemption,
//! every `unsafe` token must sit in an allowlisted module, be a block
//! (never `unsafe fn` / `unsafe impl`), and be introduced by a comment
//! run ending just above it that contains `SAFETY:`. Growing
//! [`ALLOWED_MODULES`] is a reviewed diff to this file.

use crate::findings::Finding;
use crate::rules::UNSAFE_AUDIT;
use crate::source::SourceFile;

/// Modules permitted to contain `unsafe` blocks.
pub const ALLOWED_MODULES: &[&str] = &["crates/server/src/epoll.rs"];

/// How many lines of statement head may separate the `SAFETY:` comment
/// run from the `unsafe` token (`let n =\n  unsafe { ... }` wraps).
const SAFETY_COMMENT_GAP: u32 = 3;

/// True when a comment run ending within [`SAFETY_COMMENT_GAP`] lines
/// above `line` contains `SAFETY:`.
fn has_safety_comment(src: &SourceFile, line: u32) -> bool {
    // Last comment strictly above the unsafe token, within the gap.
    let Some(last) = src
        .comments
        .iter()
        .rfind(|c| c.line < line && c.line + SAFETY_COMMENT_GAP >= line)
    else {
        return false;
    };
    // Extend the run upward over contiguous comment lines.
    let mut run_start = last.line;
    while let Some(prev) = src.comments.iter().find(|c| c.line + 1 == run_start) {
        run_start = prev.line;
    }
    src.comments
        .iter()
        .filter(|c| c.line >= run_start && c.line <= last.line)
        .any(|c| c.text.contains("SAFETY:"))
}

/// Run the rule over one file.
pub fn check(src: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let allowed = ALLOWED_MODULES.contains(&src.path.as_str());
    for (i, t) in src.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        if !allowed {
            findings.push(Finding::new(
                UNSAFE_AUDIT,
                &src.path,
                t.line,
                format!(
                    "`unsafe` outside the audited-module allowlist ({})",
                    ALLOWED_MODULES.join(", ")
                ),
            ));
            continue;
        }
        let is_block = src.tokens.get(i + 1).is_some_and(|n| n.is_punct('{'));
        if !is_block {
            findings.push(Finding::new(
                UNSAFE_AUDIT,
                &src.path,
                t.line,
                "only `unsafe { }` blocks are allowed in audited modules \
                 (no `unsafe fn` / `unsafe impl`)",
            ));
            continue;
        }
        if !has_safety_comment(src, t.line) {
            findings.push(Finding::new(
                UNSAFE_AUDIT,
                &src.path,
                t.line,
                "`unsafe` block without a `// SAFETY:` comment immediately above it",
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_outside_the_allowlist_is_flagged() {
        let src = SourceFile::parse(
            "crates/core/src/eval.rs",
            "fn f() { unsafe { fast_path() } }",
        );
        let findings = check(&src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("allowlist"));
    }

    #[test]
    fn audited_block_with_safety_comment_is_clean() {
        let src = SourceFile::parse(
            "crates/server/src/epoll.rs",
            "fn f() {\n\
             // SAFETY: no pointers cross the boundary.\n\
             let fd = unsafe { open() };\n\
             }",
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn audited_block_without_safety_comment_is_flagged() {
        let src = SourceFile::parse(
            "crates/server/src/epoll.rs",
            "fn f() {\n// a comment that is not a justification\nlet fd = unsafe { open() };\n}",
        );
        let findings = check(&src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("SAFETY:"));
    }

    #[test]
    fn wrapped_statement_heads_still_see_the_comment() {
        let src = SourceFile::parse(
            "crates/server/src/epoll.rs",
            "fn f() {\n// SAFETY: kernel copies synchronously.\nlet n =\n    unsafe { poll() };\n}",
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn unsafe_fn_is_flagged_even_in_audited_modules() {
        let src = SourceFile::parse(
            "crates/server/src/epoll.rs",
            "// SAFETY: not enough.\nunsafe fn f() {}",
        );
        let findings = check(&src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("unsafe fn"));
    }
}
