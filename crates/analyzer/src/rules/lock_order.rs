//! `lock_order`: nested lock acquisitions must follow the canonical
//! workspace order.
//!
//! The workspace's named locks are ranked (lower rank = outer lock =
//! acquired first). Holding a lock while acquiring — directly or
//! through a callee, per the call graph — a *lower*-ranked lock is an
//! inversion: two threads doing it in opposite orders deadlock. The
//! canonical order, documented in DESIGN.md §15:
//!
//! 1. reconfig `transition` (serialises artifact lifecycle verbs)
//! 2. artifact store `inner` (journal + lifecycle state)
//! 3. reconfig `soak` (soak monitor state)
//! 4. server rate-limiter bucket `state`
//! 5. router membership `state`
//! 6. core service `monitor` → `health` → `cached`, profile `map`
//! 7. obs leaf locks (registry maps, span buffer, flight ring,
//!    checkpoints) — always innermost, so instrumentation can run
//!    under any of the above.
//!
//! Guards bound with `let` are held to the end of their block;
//! temporary guards to the end of their statement. Both are tracked by
//! a forward scan over the function's token tree extent.

use crate::callgraph::CallGraph;
use crate::findings::Finding;
use crate::rules::LOCK_ORDER;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// One ranked lock: `field` acquired via `.lock()`/`.read()`/`.write()`
/// inside `file` (lock fields are module-private, so acquisitions only
/// occur in the defining file).
#[derive(Debug)]
pub struct NamedLock {
    /// Defining file, workspace-relative.
    pub file: &'static str,
    /// Field name the guard method is called on.
    pub field: &'static str,
    /// Position in the canonical order; lower = acquired first.
    pub rank: u32,
    /// Human-readable name used in findings.
    pub label: &'static str,
}

/// The canonical lock table. Adding a lock is a reviewed diff here.
pub const LOCK_TABLE: &[NamedLock] = &[
    NamedLock {
        file: "crates/server/src/reconfig.rs",
        field: "transition",
        rank: 10,
        label: "reconfig.transition",
    },
    NamedLock {
        file: "crates/reconfig/src/store.rs",
        field: "inner",
        rank: 20,
        label: "store.inner",
    },
    NamedLock {
        file: "crates/server/src/reconfig.rs",
        field: "soak",
        rank: 30,
        label: "reconfig.soak",
    },
    NamedLock {
        file: "crates/server/src/server.rs",
        field: "state",
        rank: 40,
        label: "rate_limiter.state",
    },
    NamedLock {
        file: "crates/router/src/membership.rs",
        field: "state",
        rank: 45,
        label: "membership.state",
    },
    NamedLock {
        file: "crates/core/src/service.rs",
        field: "monitor",
        rank: 50,
        label: "service.monitor",
    },
    NamedLock {
        file: "crates/core/src/service.rs",
        field: "health",
        rank: 51,
        label: "service.health",
    },
    NamedLock {
        file: "crates/core/src/service.rs",
        field: "cached",
        rank: 52,
        label: "service.cached",
    },
    NamedLock {
        file: "crates/core/src/registry.rs",
        field: "map",
        rank: 55,
        label: "registry.map",
    },
    NamedLock {
        file: "crates/obs/src/registry.rs",
        field: "counters",
        rank: 60,
        label: "obs.counters",
    },
    NamedLock {
        file: "crates/obs/src/registry.rs",
        field: "gauges",
        rank: 61,
        label: "obs.gauges",
    },
    NamedLock {
        file: "crates/obs/src/registry.rs",
        field: "histograms",
        rank: 62,
        label: "obs.histograms",
    },
    NamedLock {
        file: "crates/obs/src/span.rs",
        field: "inner",
        rank: 63,
        label: "spans.inner",
    },
    NamedLock {
        file: "crates/obs/src/flight.rs",
        field: "events",
        rank: 64,
        label: "flight.events",
    },
    NamedLock {
        file: "crates/obs/src/metrics.rs",
        field: "checkpoints",
        rank: 65,
        label: "metrics.checkpoints",
    },
];

/// A lock acquisition site inside one function body.
#[derive(Debug, Clone, Copy)]
struct Acquisition {
    /// Index into [`LOCK_TABLE`].
    lock: usize,
    /// Token index of the field identifier.
    token: usize,
    line: u32,
}

/// Guard-method names; an empty argument list distinguishes guard
/// acquisition from `io::Read`/`io::Write` calls, which take buffers.
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Find every ranked acquisition in `tokens[start..=end]` of `file`.
fn acquisitions(src: &SourceFile, start: usize, end: usize) -> Vec<Acquisition> {
    let tokens = &src.tokens;
    let mut out = Vec::new();
    let mut i = start;
    while i + 4 <= end {
        let hit = tokens[i].kind == crate::lexer::TokKind::Ident
            && tokens[i + 1].is_punct('.')
            && GUARD_METHODS.iter().any(|m| tokens[i + 2].is_ident(m))
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_punct(')');
        if hit {
            if let Some(lock) = LOCK_TABLE
                .iter()
                .position(|l| l.file == src.path && l.field == tokens[i].text)
            {
                out.push(Acquisition {
                    lock,
                    token: i,
                    line: tokens[i].line,
                });
            }
        }
        i += 1;
    }
    out
}

/// True when the guard at token `at` is bound to a variable (held to
/// the end of its block): the statement starts with `let` AND the
/// guard is the bound value itself — nothing chained after the
/// acquisition except `unwrap`/`expect`/`?` before the `;`. In
/// `let x = m.lock().is_some();` the guard is a temporary dropped at
/// the semicolon even though the statement is a `let`.
fn is_let_bound(src: &SourceFile, at: usize) -> bool {
    let tokens = &src.tokens;
    let mut i = at;
    while i > 0 {
        let t = &tokens[i - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        i -= 1;
    }
    if !tokens.get(i).is_some_and(|t| t.is_ident("let")) {
        return false;
    }
    // `at` is the field ident; `.lock ( )` occupies at+1..=at+4.
    let mut j = at + 5;
    loop {
        match tokens.get(j) {
            Some(t) if t.is_punct(';') => return true,
            Some(t) if t.is_punct('?') => j += 1,
            Some(t)
                if t.is_punct('.')
                    && tokens
                        .get(j + 1)
                        .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect")) =>
            {
                let mut k = j + 2;
                if tokens.get(k).is_some_and(|t| t.is_punct('(')) {
                    let mut depth = 0i32;
                    while let Some(t) = tokens.get(k) {
                        if t.is_punct('(') {
                            depth += 1;
                        } else if t.is_punct(')') {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                j = k;
            }
            _ => return false,
        }
    }
}

/// Run the rule: direct nesting inside each function plus one level of
/// call-site checking against callee transitive lock sets.
pub fn check(sources: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    // Per-fn acquisitions and direct lock sets.
    let per_fn: Vec<Vec<Acquisition>> = graph
        .fns
        .iter()
        .map(|f| acquisitions(&sources[f.src], f.body.0, f.body.1))
        .collect();

    // Transitive lock closure per fn, to a fixpoint (the graph may have
    // cycles; each pass only ever grows sets, so this terminates).
    let mut closure: Vec<BTreeSet<usize>> = per_fn
        .iter()
        .map(|acqs| acqs.iter().map(|a| a.lock).collect())
        .collect();
    loop {
        let mut changed = false;
        for (i, f) in graph.fns.iter().enumerate() {
            let mut add: BTreeSet<usize> = BTreeSet::new();
            for call in &f.calls {
                for callee in graph.resolve_for(i, &call.name) {
                    add.extend(closure[callee].iter().copied());
                }
            }
            let before = closure[i].len();
            closure[i].extend(add);
            changed |= closure[i].len() != before;
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    for (fi, f) in graph.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let src = &sources[f.src];
        if per_fn[fi].is_empty() && f.calls.is_empty() {
            continue;
        }
        scan_fn(src, fi, f, &per_fn[fi], graph, &closure, &mut findings);
    }
    findings
}

/// A guard currently held during the forward scan.
struct Held {
    lock: usize,
    /// Brace depth (relative to the body) at acquisition.
    depth: u32,
    /// `let`-bound guards live to the end of their block; temporaries
    /// to the end of their statement.
    let_bound: bool,
}

fn scan_fn(
    src: &SourceFile,
    fi: usize,
    f: &crate::callgraph::FnDef,
    acqs: &[Acquisition],
    graph: &CallGraph,
    closure: &[BTreeSet<usize>],
    findings: &mut Vec<Finding>,
) {
    let tokens = &src.tokens;
    let mut acq_at = acqs.iter().map(|a| (a.token, *a)).collect::<Vec<_>>();
    acq_at.sort_by_key(|(t, _)| *t);
    let mut call_at: Vec<(usize, &crate::callgraph::CallSite)> =
        f.calls.iter().map(|c| (c.token, c)).collect();
    call_at.sort_by_key(|(t, _)| *t);

    let mut held: Vec<Held> = Vec::new();
    let mut depth: u32 = 0;
    let mut ai = 0;
    let mut ci = 0;
    let end = f.body.1.min(tokens.len().saturating_sub(1));
    for (i, t) in tokens.iter().enumerate().take(end + 1).skip(f.body.0) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            // A block end releases `let` guards of that block, and
            // temporaries whose statement the block terminated (a
            // `for`/`match`/`if` header guard ends with its block).
            held.retain(|h| h.depth <= depth && (h.let_bound || h.depth < depth));
        } else if t.is_punct(';') {
            held.retain(|h| h.let_bound || h.depth != depth);
        }

        while ci < call_at.len() && call_at[ci].0 < i {
            ci += 1;
        }
        if ci < call_at.len() && call_at[ci].0 == i && !held.is_empty() {
            let call = call_at[ci].1;
            // The worst lock a callee (transitively) acquires versus
            // every lock currently held.
            for callee in graph.resolve_for(fi, &call.name) {
                let mut worst: Option<usize> = None;
                for &acquired in &closure[callee] {
                    for h in &held {
                        if LOCK_TABLE[acquired].rank < LOCK_TABLE[h.lock].rank
                            && worst.is_none_or(|w| LOCK_TABLE[acquired].rank < LOCK_TABLE[w].rank)
                        {
                            worst = Some(acquired);
                        }
                    }
                }
                if let Some(acquired) = worst {
                    let outer = held
                        .iter()
                        .max_by_key(|h| LOCK_TABLE[h.lock].rank)
                        .expect("held is non-empty");
                    findings.push(Finding::new(
                        LOCK_ORDER,
                        &src.path,
                        call.line,
                        format!(
                            "call to `{}` acquires `{}` (rank {}) while `{}` (rank {}) is held \
                             — inverts the canonical lock order",
                            call.name,
                            LOCK_TABLE[acquired].label,
                            LOCK_TABLE[acquired].rank,
                            LOCK_TABLE[outer.lock].label,
                            LOCK_TABLE[outer.lock].rank,
                        ),
                    ));
                    break; // one finding per call site
                }
            }
        }

        while ai < acq_at.len() && acq_at[ai].0 < i {
            ai += 1;
        }
        if ai < acq_at.len() && acq_at[ai].0 == i {
            let acq = acq_at[ai].1;
            for h in &held {
                if LOCK_TABLE[acq.lock].rank < LOCK_TABLE[h.lock].rank {
                    findings.push(Finding::new(
                        LOCK_ORDER,
                        &src.path,
                        acq.line,
                        format!(
                            "`{}` (rank {}) acquired while holding `{}` (rank {}) \
                             — inverts the canonical lock order",
                            LOCK_TABLE[acq.lock].label,
                            LOCK_TABLE[acq.lock].rank,
                            LOCK_TABLE[h.lock].label,
                            LOCK_TABLE[h.lock].rank,
                        ),
                    ));
                    break;
                }
            }
            held.push(Held {
                lock: acq.lock,
                depth,
                let_bound: is_let_bound(src, i),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::parse(*p, s))
            .collect();
        let graph = CallGraph::build(&sources);
        check(&sources, &graph)
    }

    #[test]
    fn direct_inversion_is_flagged() {
        let findings = run(&[(
            "crates/server/src/reconfig.rs",
            "fn bad(&self) { let _s = self.soak.lock(); let _t = self.transition.lock(); }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("reconfig.transition"));
    }

    #[test]
    fn canonical_order_is_clean() {
        let findings = run(&[(
            "crates/server/src/reconfig.rs",
            "fn good(&self) { let _t = self.transition.lock(); *self.soak.lock() = None; }",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn temporaries_release_at_statement_end() {
        let findings = run(&[(
            "crates/server/src/reconfig.rs",
            "fn fine(&self) { let x = self.soak.lock().is_some(); drop(x); \
             let _t = self.transition.lock(); }",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn transitive_inversion_through_a_callee_is_flagged() {
        let findings = run(&[(
            "crates/server/src/reconfig.rs",
            "fn locks_transition(&self) { let _t = self.transition.lock(); }\n\
             fn bad(&self) { let _s = self.soak.lock(); self.locks_transition(); }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("locks_transition"));
    }
}
