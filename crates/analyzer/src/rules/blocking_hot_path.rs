//! `blocking_hot_path`: no blocking primitive may be reachable from an
//! event-loop entry point.
//!
//! The static twin of the serve-path p99 budget: the reactor and the
//! worker run loops must never stall on work whose latency is decided
//! by a disk or a peer. Reachability is computed over the workspace
//! call graph from the entry points below; any reachable call to a
//! blocking primitive — `fsync`-family durability calls,
//! `std::thread::sleep`, a deadline-less `connect`, an unbounded
//! channel `recv()` — is flagged with a witness call path.
//!
//! Deliberate blocking (a worker's idle wait on its shard channel, the
//! journal's durability contract) is waived at the site with a reason,
//! so every blocking call on the hot path is a reviewed decision.

use crate::callgraph::CallGraph;
use crate::findings::Finding;
use crate::rules::BLOCKING_HOT_PATH;
use crate::source::SourceFile;

/// Hot-path entry points, as `(file, fn name)` pairs: the reactor's
/// event loop and poll dispatch, and the worker pool's run loop.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/server/src/server.rs", "run"),
    ("crates/server/src/server.rs", "worker_loop"),
    ("crates/server/src/epoll.rs", "wait"),
];

/// Module prefixes the serving tier never calls back into: client
/// stubs, the CLI driver, and the bench harness all live on the *other*
/// side of the socket. Name-based resolution would otherwise route
/// generic verbs (`schedule`, `call`, `request`) into these modules
/// and manufacture impossible reachability chains.
pub const NON_CALLEE_MODULES: &[&str] = &[
    "crates/server/src/client.rs",
    "crates/router/src/client.rs",
    "crates/cli/src/",
    "crates/bench/src/",
];

/// One matched blocking primitive.
struct Site {
    /// Token index of the primitive's identifier.
    token: usize,
    line: u32,
    what: &'static str,
}

/// Find blocking-primitive call sites in `tokens[start..=end]`.
fn blocking_sites(src: &SourceFile, start: usize, end: usize) -> Vec<Site> {
    let tokens = &src.tokens;
    let mut out = Vec::new();
    let at = |i: usize| tokens.get(i);
    for i in start..=end.min(tokens.len().saturating_sub(1)) {
        if tokens[i].kind != crate::lexer::TokKind::Ident {
            continue;
        }
        let name = tokens[i].text.as_str();
        let line = tokens[i].line;
        let called = at(i + 1).is_some_and(|t| t.is_punct('('));
        let method = i > 0 && tokens[i - 1].is_punct('.');
        let what: Option<&'static str> = match name {
            "sync_all" | "sync_data" if called && method => Some("fsync-family durability call"),
            "fsync" | "fdatasync" if called => Some("fsync-family durability call"),
            "sleep"
                if called
                    && i >= 2
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':') =>
            {
                Some("thread sleep")
            }
            "recv" if method && called && at(i + 2).is_some_and(|t| t.is_punct(')')) => {
                Some("unbounded channel recv")
            }
            "connect"
                if called
                    && i >= 2
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':') =>
            {
                Some("deadline-less blocking connect")
            }
            _ => None,
        };
        if let Some(what) = what {
            if !src.in_test_code(i) {
                out.push(Site {
                    token: i,
                    line,
                    what,
                });
            }
        }
    }
    out
}

/// Run the rule over the whole workspace.
pub fn check(sources: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    let entries: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.in_test
                && ENTRY_POINTS
                    .iter()
                    .any(|(file, name)| sources[f.src].path == *file && f.name == *name)
        })
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() {
        return Vec::new();
    }
    let admit = |f: &crate::callgraph::FnDef, _name: &str| {
        let path = &sources[f.src].path;
        !NON_CALLEE_MODULES.iter().any(|m| path.starts_with(m))
    };
    let pred = graph.reachable_from(&entries, &admit);

    let mut findings = Vec::new();
    let mut seen: Vec<(usize, usize)> = Vec::new(); // (src, token) dedupe
    for &fi in pred.keys() {
        let f = &graph.fns[fi];
        let src = &sources[f.src];
        for site in blocking_sites(src, f.body.0, f.body.1) {
            if seen.contains(&(f.src, site.token)) {
                continue;
            }
            seen.push((f.src, site.token));
            findings.push(Finding::new(
                BLOCKING_HOT_PATH,
                &src.path,
                site.line,
                format!(
                    "{} reachable from event-loop entry via {}",
                    site.what,
                    graph.path_to(&pred, fi),
                ),
            ));
        }
    }
    // Stable output order: by file then line.
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::parse(*p, s))
            .collect();
        let graph = CallGraph::build(&sources);
        check(&sources, &graph)
    }

    #[test]
    fn fsync_reachable_from_the_event_loop_is_flagged() {
        let findings = run(&[
            (
                "crates/server/src/server.rs",
                "fn run(&mut self) { self.handle(); }\nfn handle(&mut self) { persist(); }",
            ),
            (
                "crates/reconfig/src/store.rs",
                "fn persist() { file.sync_all().unwrap(); }",
            ),
        ]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("run -> handle -> persist"));
        assert_eq!(findings[0].file, "crates/reconfig/src/store.rs");
    }

    #[test]
    fn unreachable_blocking_calls_are_not_flagged() {
        let findings = run(&[
            ("crates/server/src/server.rs", "fn run(&mut self) {}"),
            (
                "crates/reconfig/src/store.rs",
                "fn persist() { file.sync_all().unwrap(); }",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn sleep_and_unbounded_recv_in_run_loops_are_flagged() {
        let findings = run(&[(
            "crates/server/src/server.rs",
            "fn worker_loop(rx: &Receiver<u8>) { \
               while let Ok(_x) = rx.recv() { std::thread::sleep(d); } \
               let _soon = rx.recv_timeout(d); }",
        )]);
        assert_eq!(findings.len(), 2, "{findings:#?}");
    }

    #[test]
    fn deadline_bounded_calls_are_clean() {
        let findings = run(&[(
            "crates/server/src/server.rs",
            "fn run(&mut self) { let s = TcpStream::connect_timeout(&addr, d); drop(s); }",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
