//! `drift`: the wire protocol, the client, the CLI, the metric-name
//! constants, and the docs must describe the same system.
//!
//! Sub-checks (all unwaivable — the fix is to update the lagging side):
//! 1. `Request` enum variants ↔ the `ACTIONS` name table (count and
//!    snake-case correspondence, in declaration order).
//! 2. Every action has a `Client` method of the same name.
//! 3. Every action has a CLI `request` subcommand arm.
//! 4. Every `Request` variant has a DESIGN.md protocol-table row.
//! 5. `cbes_obs::names::SERVER_ACTION_COUNTERS` is exactly
//!    `server.action.<action>` per action, in order; metric-name
//!    constants in `names.rs` are pairwise distinct.
//! 6. Exit codes documented in the CLI usage text and DESIGN.md match
//!    `CliError::exit_code`.
//! 7. When the router crate exists: `FORWARD_MODES` covers every action
//!    with a valid mode, hash-routed actions have `RoutingClient`
//!    methods, the CLI exposes the `route` command with its `serve` and
//!    `status` arms, and DESIGN.md tables every `(action, mode)` pair.
//! 8. When the reconfig crate exists: the CLI exposes the `artifact`
//!    command with its full lifecycle arm set (`stage`, `apply`,
//!    `accept`, `rollback`, `status`, `list`), so the admin action
//!    family cannot grow without an operator entry point.
//! 9. When the analyzer crate exists: its `ALL_RULES` registry (an
//!    array of ident constants, resolved through their string values),
//!    the CLI's `analyze` command, the `analyze.rule.<rule>` counter
//!    table in `names.rs`, and the DESIGN.md rule documentation all
//!    agree — a new rule cannot ship without its CLI exposure, its
//!    metric name, and its docs.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::rules::DRIFT;
use crate::source::SourceFile;
use std::collections::HashMap;
use std::path::Path;

const PROTOCOL: &str = "crates/server/src/protocol.rs";
const CLIENT: &str = "crates/server/src/client.rs";
const COMMANDS: &str = "crates/cli/src/commands.rs";
const CLI_ERROR: &str = "crates/cli/src/error.rs";
const CLI_LIB: &str = "crates/cli/src/lib.rs";
const OBS_NAMES: &str = "crates/obs/src/names.rs";
const DESIGN: &str = "DESIGN.md";
const ROUTER_PLAN: &str = "crates/router/src/plan.rs";
const ROUTER_CLIENT: &str = "crates/router/src/client.rs";
const ANALYZER_RULES: &str = "crates/analyzer/src/rules/mod.rs";

/// Run every drift sub-check against the tree rooted at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();

    let Some(proto) = parse(root, PROTOCOL, &mut out) else {
        return out;
    };
    let variants = enum_variants(&proto, "Request");
    let actions = const_str_array(&proto, "ACTIONS");
    if variants.is_empty() {
        out.push(Finding::new(DRIFT, PROTOCOL, 0, "no `enum Request` found"));
    }
    if actions.is_empty() {
        out.push(Finding::new(
            DRIFT,
            PROTOCOL,
            0,
            "no `ACTIONS` string table found",
        ));
    }
    if !variants.is_empty() && !actions.is_empty() {
        if variants.len() != actions.len() {
            out.push(Finding::new(
                DRIFT,
                PROTOCOL,
                0,
                format!(
                    "`Request` has {} variants but `ACTIONS` lists {} names",
                    variants.len(),
                    actions.len()
                ),
            ));
        }
        for (v, a) in variants.iter().zip(&actions) {
            if &snake_case(v) != a {
                out.push(Finding::new(
                    DRIFT,
                    PROTOCOL,
                    0,
                    format!(
                        "variant `{v}` is paired with action \"{a}\" (expected \"{}\")",
                        snake_case(v)
                    ),
                ));
            }
        }
    }

    if let Some(client) = parse(root, CLIENT, &mut out) {
        for a in &actions {
            if !has_fn(&client, a) {
                out.push(Finding::new(
                    DRIFT,
                    CLIENT,
                    0,
                    format!("action \"{a}\" has no client method `fn {a}`"),
                ));
            }
        }
    }

    if let Some(commands) = parse(root, COMMANDS, &mut out) {
        for a in &actions {
            let sub = cli_subcommand(a);
            if !has_str(&commands, &sub) {
                out.push(Finding::new(
                    DRIFT,
                    COMMANDS,
                    0,
                    format!("action \"{a}\" has no CLI `request` subcommand arm \"{sub}\""),
                ));
            }
        }
    }

    if let Some(design) = read(root, DESIGN, &mut out) {
        for v in &variants {
            let marker = format!("`{v}");
            let in_table = design
                .lines()
                .any(|l| l.trim_start().starts_with('|') && l.contains(&marker));
            if !in_table {
                out.push(Finding::new(
                    DRIFT,
                    DESIGN,
                    0,
                    format!("protocol variant `{v}` has no row in the DESIGN.md protocol table"),
                ));
            }
        }
    }

    if let Some(names) = parse(root, OBS_NAMES, &mut out) {
        let counters = const_str_array(&names, "SERVER_ACTION_COUNTERS");
        if counters.len() != actions.len() {
            out.push(Finding::new(
                DRIFT,
                OBS_NAMES,
                0,
                format!(
                    "`SERVER_ACTION_COUNTERS` has {} entries for {} protocol actions",
                    counters.len(),
                    actions.len()
                ),
            ));
        }
        for (c, a) in counters.iter().zip(&actions) {
            let expected = format!("server.action.{a}");
            if c != &expected {
                out.push(Finding::new(
                    DRIFT,
                    OBS_NAMES,
                    0,
                    format!("action counter \"{c}\" does not match its action (expected \"{expected}\")"),
                ));
            }
        }
        // Any duplicated name constant silently merges two metrics.
        // Test code is exempt: assertion format strings are not names.
        let mut seen: HashMap<&str, u32> = HashMap::new();
        for (i, t) in names
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TokKind::Str)
        {
            if names.in_test_code(i) {
                continue;
            }
            if let Some(first) = seen.get(t.text.as_str()) {
                out.push(Finding::new(
                    DRIFT,
                    OBS_NAMES,
                    t.line,
                    format!("metric name \"{}\" already defined at line {first}", t.text),
                ));
            } else {
                seen.insert(&t.text, t.line);
            }
        }
    }

    check_exit_codes(root, &mut out);
    check_forward_plan(root, &actions, &mut out);
    check_artifact_family(root, &mut out);
    check_analyzer_registration(root, &mut out);
    out
}

/// Sub-check 9: the analyzer's rule registry vs the CLI, the metric
/// names, and the docs. Skipped entirely when the workspace has no
/// analyzer crate (fixture trees and older trees stay clean).
fn check_analyzer_registration(root: &Path, out: &mut Vec<Finding>) {
    if !root.join("crates/analyzer").is_dir() {
        return;
    }
    let Some(registry) = parse(root, ANALYZER_RULES, out) else {
        return;
    };
    // `ALL_RULES` is an array of ident constants; resolve each ident
    // through its `pub const NAME: &str = "..."` declaration.
    let idents = const_ident_array(&registry, "ALL_RULES");
    if idents.is_empty() {
        out.push(Finding::new(
            DRIFT,
            ANALYZER_RULES,
            0,
            "no `ALL_RULES` rule registry found",
        ));
        return;
    }
    let mut rule_ids = Vec::new();
    for ident in &idents {
        match const_str_value(&registry, ident) {
            Some(v) => rule_ids.push(v),
            None => out.push(Finding::new(
                DRIFT,
                ANALYZER_RULES,
                0,
                format!("`ALL_RULES` entry `{ident}` has no string constant declaration"),
            )),
        }
    }

    if let Some(commands) = parse(root, COMMANDS, out) {
        if !has_fn(&commands, "analyze_static") {
            out.push(Finding::new(
                DRIFT,
                COMMANDS,
                0,
                "analyzer crate present but the CLI has no `fn analyze_static` command",
            ));
        }
    }

    if let Some(names) = parse(root, OBS_NAMES, out) {
        let counters = const_str_array(&names, "ANALYZE_RULE_COUNTERS");
        if counters.len() != rule_ids.len() {
            out.push(Finding::new(
                DRIFT,
                OBS_NAMES,
                0,
                format!(
                    "`ANALYZE_RULE_COUNTERS` has {} entries for {} analyzer rules",
                    counters.len(),
                    rule_ids.len()
                ),
            ));
        }
        for (c, r) in counters.iter().zip(&rule_ids) {
            let expected = format!("analyze.rule.{r}");
            if c != &expected {
                out.push(Finding::new(
                    DRIFT,
                    OBS_NAMES,
                    0,
                    format!(
                        "rule counter \"{c}\" does not match its rule (expected \"{expected}\")"
                    ),
                ));
            }
        }
        for required in ["ANALYZE_FINDINGS", "ANALYZE_WAIVED"] {
            if const_str_value(&names, required).is_none() {
                out.push(Finding::new(
                    DRIFT,
                    OBS_NAMES,
                    0,
                    format!("analyzer summary metric constant `{required}` is not defined"),
                ));
            }
        }
    }

    if let Some(design) = read(root, DESIGN, out) {
        for r in &rule_ids {
            let marker = format!("`{r}`");
            if !design.contains(&marker) {
                out.push(Finding::new(
                    DRIFT,
                    DESIGN,
                    0,
                    format!("analyzer rule `{r}` is not documented in DESIGN.md"),
                ));
            }
        }
    }
}

/// Sub-check 8: the artifact lifecycle CLI vs the reconfig crate.
/// Skipped entirely when the workspace has no reconfig crate (older
/// trees stay clean).
fn check_artifact_family(root: &Path, out: &mut Vec<Finding>) {
    if !root.join("crates/reconfig").is_dir() {
        return;
    }
    let Some(commands) = parse(root, COMMANDS, out) else {
        return;
    };
    if has_fn(&commands, "artifact") {
        for sub in ["stage", "apply", "accept", "rollback", "status", "list"] {
            if !has_str(&commands, sub) {
                out.push(Finding::new(
                    DRIFT,
                    COMMANDS,
                    0,
                    format!("the CLI `artifact` command has no \"{sub}\" arm"),
                ));
            }
        }
    } else {
        out.push(Finding::new(
            DRIFT,
            COMMANDS,
            0,
            "reconfig crate present but the CLI has no `fn artifact` command",
        ));
    }
}

/// Sub-check 7: the router's forwarding plan vs the protocol, the
/// routing client, the CLI, and the docs. Skipped entirely when the
/// workspace has no router crate (older trees stay clean).
fn check_forward_plan(root: &Path, actions: &[String], out: &mut Vec<Finding>) {
    if !root.join("crates/router").is_dir() {
        return;
    }
    let Some(plan) = parse(root, ROUTER_PLAN, out) else {
        return;
    };
    let modes = const_str_array(&plan, "FORWARD_MODES");
    if modes.len() != actions.len() {
        out.push(Finding::new(
            DRIFT,
            ROUTER_PLAN,
            0,
            format!(
                "`FORWARD_MODES` has {} entries for {} protocol actions",
                modes.len(),
                actions.len()
            ),
        ));
    }
    const VOCAB: [&str; 5] = ["hash", "leader", "merge", "broadcast", "local"];
    for m in &modes {
        if !VOCAB.contains(&m.as_str()) {
            out.push(Finding::new(
                DRIFT,
                ROUTER_PLAN,
                0,
                format!(
                    "forwarding mode \"{m}\" is not in the mode vocabulary \
                     (hash | leader | merge | broadcast | local)"
                ),
            ));
        }
    }
    if let Some(client) = parse(root, ROUTER_CLIENT, out) {
        for (a, m) in actions.iter().zip(&modes) {
            if m == "hash" && !has_fn(&client, a) {
                out.push(Finding::new(
                    DRIFT,
                    ROUTER_CLIENT,
                    0,
                    format!("hash-routed action \"{a}\" has no routing-client method `fn {a}`"),
                ));
            }
        }
    }
    if let Some(commands) = parse(root, COMMANDS, out) {
        if has_fn(&commands, "route") {
            for sub in ["serve", "status"] {
                if !has_str(&commands, sub) {
                    out.push(Finding::new(
                        DRIFT,
                        COMMANDS,
                        0,
                        format!("the CLI `route` command has no \"{sub}\" arm"),
                    ));
                }
            }
        } else {
            out.push(Finding::new(
                DRIFT,
                COMMANDS,
                0,
                "router crate present but the CLI has no `fn route` command",
            ));
        }
    }
    if let Some(design) = read(root, DESIGN, out) {
        for (a, m) in actions.iter().zip(&modes) {
            let in_table = design.lines().any(|l| {
                l.trim_start().starts_with('|') && l.contains(a.as_str()) && l.contains(m.as_str())
            });
            if !in_table {
                out.push(Finding::new(
                    DRIFT,
                    DESIGN,
                    0,
                    format!(
                        "action \"{a}\" (mode \"{m}\") has no row in the DESIGN.md \
                         forwarding table"
                    ),
                ));
            }
        }
    }
}

/// Sub-check 6: documented exit codes vs `CliError::exit_code`.
fn check_exit_codes(root: &Path, out: &mut Vec<Finding>) {
    let Some(error) = parse(root, CLI_ERROR, out) else {
        return;
    };
    let classes = ["usage", "transport", "server", "shed"];
    let code_map = exit_code_map(&error);
    for class in classes {
        if !code_map.contains_key(class) {
            out.push(Finding::new(
                DRIFT,
                CLI_ERROR,
                0,
                format!("`CliError::exit_code` has no arm for the `{class}` failure class"),
            ));
        }
    }
    let mut documented: Vec<&'static str> = Vec::new();
    for doc in [CLI_LIB, DESIGN] {
        let Some(text) = read(root, doc, out) else {
            continue;
        };
        for (class, num, line) in doc_exit_pairs(&text) {
            documented.push(class);
            if let Some(actual) = code_map.get(class) {
                if *actual != num {
                    out.push(Finding::new(
                        DRIFT,
                        doc,
                        line,
                        format!("documents exit code {num} for `{class}`, but `CliError::exit_code` returns {actual}"),
                    ));
                }
            }
        }
    }
    for class in classes {
        if !documented.contains(&class) {
            out.push(Finding::new(
                DRIFT,
                DESIGN,
                0,
                format!("exit code for the `{class}` failure class is not documented"),
            ));
        }
    }
}

fn read(root: &Path, rel: &str, out: &mut Vec<Finding>) -> Option<String> {
    match std::fs::read_to_string(root.join(rel)) {
        Ok(text) => Some(text),
        Err(err) => {
            out.push(Finding::new(
                DRIFT,
                rel,
                0,
                format!("drift input unreadable: {err}"),
            ));
            None
        }
    }
}

fn parse(root: &Path, rel: &str, out: &mut Vec<Finding>) -> Option<SourceFile> {
    read(root, rel, out).map(|text| SourceFile::parse(rel, &text))
}

/// `RegisterProfile` → `register_profile`.
fn snake_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for (i, c) in s.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// The `cbes request` subcommand implementing an action.
fn cli_subcommand(action: &str) -> String {
    match action {
        "register_profile" => "register".to_string(),
        "observe_load" => "observe".to_string(),
        _ => action.replace('_', "-"),
    }
}

/// Variant names of `enum <name> { .. }`, in declaration order.
fn enum_variants(f: &SourceFile, name: &str) -> Vec<String> {
    let t = &f.tokens;
    for i in 0..t.len().saturating_sub(2) {
        if !(t[i].is_ident("enum") && t[i + 1].is_ident(name) && t[i + 2].is_punct('{')) {
            continue;
        }
        let mut vars = Vec::new();
        let mut depth = 1usize;
        let mut j = i + 3;
        while j < t.len() && depth > 0 {
            let tok = &t[j];
            if tok.is_punct('{') || tok.is_punct('(') || tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct('}') || tok.is_punct(')') || tok.is_punct(']') {
                depth -= 1;
            } else if depth == 1 && tok.kind == TokKind::Ident {
                // A variant name is a depth-1 ident introducing a unit
                // (`X,`), tuple (`X(..)`), or struct (`X {..}`) variant.
                if t.get(j + 1).is_some_and(|n| {
                    n.is_punct(',') || n.is_punct('(') || n.is_punct('{') || n.is_punct('}')
                }) {
                    vars.push(tok.text.clone());
                }
            }
            j += 1;
        }
        return vars;
    }
    Vec::new()
}

/// String entries of `<NAME>: [&str; N] = ["...", ...]`.
fn const_str_array(f: &SourceFile, name: &str) -> Vec<String> {
    let t = &f.tokens;
    let Some(at) = t.iter().position(|tok| tok.is_ident(name)) else {
        return Vec::new();
    };
    let mut j = at + 1;
    while j < t.len() && !t[j].is_punct('=') {
        j += 1;
    }
    while j < t.len() && !t[j].is_punct('[') {
        j += 1;
    }
    let mut out = Vec::new();
    while j < t.len() && !t[j].is_punct(']') {
        if t[j].kind == TokKind::Str {
            out.push(t[j].text.clone());
        }
        j += 1;
    }
    out
}

/// Ident entries of `<NAME>: [&str; N] = [IDENT, IDENT, ...]` — the
/// type bracket is skipped by walking to `=` first.
fn const_ident_array(f: &SourceFile, name: &str) -> Vec<String> {
    let t = &f.tokens;
    let Some(at) = t.iter().position(|tok| tok.is_ident(name)) else {
        return Vec::new();
    };
    let mut j = at + 1;
    while j < t.len() && !t[j].is_punct('=') {
        j += 1;
    }
    while j < t.len() && !t[j].is_punct('[') {
        j += 1;
    }
    let mut out = Vec::new();
    while j < t.len() && !t[j].is_punct(']') {
        if t[j].kind == TokKind::Ident {
            out.push(t[j].text.clone());
        }
        j += 1;
    }
    out
}

/// The string value of `pub const <NAME>: &str = "...";`, or `None`
/// when no such declaration exists.
fn const_str_value(f: &SourceFile, name: &str) -> Option<String> {
    let t = &f.tokens;
    for i in 0..t.len().saturating_sub(1) {
        if !(t[i].is_ident("const") && t[i + 1].is_ident(name)) {
            continue;
        }
        let mut j = i + 2;
        while j < t.len() && !t[j].is_punct('=') && !t[j].is_punct(';') {
            j += 1;
        }
        if j + 1 < t.len() && t[j].is_punct('=') && t[j + 1].kind == TokKind::Str {
            return Some(t[j + 1].text.clone());
        }
        return None;
    }
    None
}

fn has_fn(f: &SourceFile, name: &str) -> bool {
    let t = &f.tokens;
    (0..t.len().saturating_sub(1)).any(|i| t[i].is_ident("fn") && t[i + 1].is_ident(name))
}

fn has_str(f: &SourceFile, lit: &str) -> bool {
    f.tokens
        .iter()
        .any(|t| t.kind == TokKind::Str && t.text == lit)
}

/// `{class → code}` from the first match arm per class after
/// `fn exit_code`.
fn exit_code_map(f: &SourceFile) -> HashMap<&'static str, i64> {
    let t = &f.tokens;
    let mut map = HashMap::new();
    let Some(start) = t.iter().position(|tok| tok.is_ident("exit_code")) else {
        return map;
    };
    for (class, variant) in [
        ("usage", "Usage"),
        ("transport", "Transport"),
        ("server", "Server"),
        ("shed", "Shed"),
    ] {
        let mut j = start;
        while j < t.len() && !t[j].is_ident(variant) {
            j += 1;
        }
        // Walk from the variant to its `=>` and take the arm's number.
        while j + 2 < t.len() {
            if t[j].is_punct('=') && t[j + 1].is_punct('>') {
                if t[j + 2].kind == TokKind::Num {
                    if let Ok(n) = t[j + 2].text.parse::<i64>() {
                        map.insert(class, n);
                    }
                }
                break;
            }
            j += 1;
        }
    }
    map
}

/// `(class, code, line)` triples harvested from prose near every
/// "exit code" mention — e.g. "exit codes: 2 usage, 3 transport, ...".
fn doc_exit_pairs(text: &str) -> Vec<(&'static str, i64, u32)> {
    let lower = text.to_lowercase();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = lower[from..].find("exit code") {
        let at = from + pos;
        let mut end = (at + 240).min(lower.len());
        while !lower.is_char_boundary(end) {
            end -= 1;
        }
        let line = 1 + lower[..at].matches('\n').count() as u32;
        let words: Vec<&str> = lower[at..end].split_whitespace().collect();
        for w in words.windows(2) {
            let num = w[0].trim_matches(|c: char| !c.is_ascii_alphanumeric());
            let Ok(num) = num.parse::<i64>() else {
                continue;
            };
            if !(0..=9).contains(&num) {
                continue;
            }
            for class in ["usage", "transport", "server", "shed"] {
                if w[1].contains(class) {
                    out.push((class, num, line));
                    break;
                }
            }
        }
        from = at + "exit code".len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_case_matches_action_naming() {
        assert_eq!(snake_case("RegisterProfile"), "register_profile");
        assert_eq!(snake_case("BestOf"), "best_of");
        assert_eq!(snake_case("Stats"), "stats");
    }

    #[test]
    fn enum_variants_walk_struct_and_unit_variants() {
        let src = "
            pub enum Request {
                RegisterProfile { profile: AppProfile },
                Compare { app: String, mappings: Vec<Mapping> },
                Stats,
                Shutdown,
            }
        ";
        let f = SourceFile::parse("protocol.rs", src);
        assert_eq!(
            enum_variants(&f, "Request"),
            vec!["RegisterProfile", "Compare", "Stats", "Shutdown"]
        );
    }

    #[test]
    fn const_str_array_skips_the_type_brackets() {
        let f = SourceFile::parse("x.rs", "pub const ACTIONS: [&str; 2] = [\"a\", \"b\"];");
        assert_eq!(const_str_array(&f, "ACTIONS"), vec!["a", "b"]);
    }

    #[test]
    fn const_ident_array_reads_the_registry_shape() {
        let f = SourceFile::parse(
            "mod.rs",
            "pub const ALL_RULES: [&str; 2] = [PANIC_PATH, DRIFT];",
        );
        assert_eq!(
            const_ident_array(&f, "ALL_RULES"),
            vec!["PANIC_PATH", "DRIFT"]
        );
    }

    #[test]
    fn const_str_value_resolves_ident_constants() {
        let f = SourceFile::parse(
            "mod.rs",
            "pub const PANIC_PATH: &str = \"panic_path\";\npub const N: usize = 3;",
        );
        assert_eq!(
            const_str_value(&f, "PANIC_PATH").as_deref(),
            Some("panic_path")
        );
        assert_eq!(const_str_value(&f, "N"), None);
        assert_eq!(const_str_value(&f, "MISSING"), None);
    }

    #[test]
    fn exit_codes_parse_from_match_arms() {
        let src = "
            impl CliError {
                pub fn exit_code(&self) -> i32 {
                    match self {
                        CliError::Usage(_) => 2,
                        CliError::Transport(_) => 3,
                        CliError::Server { .. } => 4,
                        CliError::Shed { .. } => 5,
                        _ => 1,
                    }
                }
            }
        ";
        let f = SourceFile::parse("error.rs", src);
        let map = exit_code_map(&f);
        assert_eq!(map["usage"], 2);
        assert_eq!(map["transport"], 3);
        assert_eq!(map["server"], 4);
        assert_eq!(map["shed"], 5);
    }

    #[test]
    fn doc_pairs_read_prose_tables() {
        let text = "The CLI maps failures to exit codes (2 usage,\n3 transport, 4 server-reported error, 5 overload-shed).";
        let pairs = doc_exit_pairs(text);
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&("usage", 2, 1)));
        assert!(pairs.contains(&("shed", 5, 1)));
    }
}
