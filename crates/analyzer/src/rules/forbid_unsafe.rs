//! `forbid_unsafe`: every crate root must carry `#![forbid(unsafe_code)]`.
//!
//! The workspace is pure safe Rust; `forbid` (unlike `deny`) cannot be
//! overridden further down the tree, so the attribute at each crate
//! root makes "no unsafe" a structural property rather than a review
//! convention. Crate roots are `src/lib.rs`, `src/main.rs`, and every
//! `src/bin/*.rs` — each is the root of its own compilation unit.

use crate::findings::Finding;
use crate::rules::FORBID_UNSAFE;
use crate::source::SourceFile;

/// True when `rel` (workspace-relative, `/`-separated) is a crate root.
pub fn is_crate_root(rel: &str) -> bool {
    let root_file =
        |name: &str| rel == format!("src/{name}") || rel.ends_with(&format!("/src/{name}"));
    root_file("lib.rs") || root_file("main.rs") || rel.contains("src/bin/")
}

/// Check one crate root for the attribute.
pub fn check(file: &SourceFile) -> Option<Finding> {
    let toks = &file.tokens;
    let found = (0..toks.len().saturating_sub(7)).any(|i| {
        toks[i].is_punct('#')
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('[')
            && toks[i + 3].is_ident("forbid")
            && toks[i + 4].is_punct('(')
            && toks[i + 5].is_ident("unsafe_code")
            && toks[i + 6].is_punct(')')
            && toks[i + 7].is_punct(']')
    });
    if found {
        None
    } else {
        Some(Finding::new(
            FORBID_UNSAFE,
            &file.path,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_presence_is_detected() {
        let ok = SourceFile::parse("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\nfn a() {}");
        assert!(check(&ok).is_none());
        let missing = SourceFile::parse("crates/x/src/lib.rs", "#![warn(missing_docs)]\nfn a() {}");
        let f = check(&missing).expect("missing attribute is a finding");
        assert_eq!(f.rule, FORBID_UNSAFE);
        assert_eq!(f.line, 1);
    }

    #[test]
    fn crate_roots_are_lib_main_and_bins() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(is_crate_root("crates/analyzer/src/main.rs"));
        assert!(is_crate_root("crates/bench/src/bin/run_all.rs"));
        assert!(is_crate_root("vendor/serde/src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/eval.rs"));
    }
}
