//! The rule catalog. Each rule has a stable id used in findings, in
//! waiver annotations, and in the `--rules` CLI filter.

pub mod determinism;
pub mod drift;
pub mod forbid_unsafe;
pub mod metric_names;
pub mod panic_path;

/// Panic-free request/evaluation path lint.
pub const PANIC_PATH: &str = "panic_path";
/// No wall-clock or entropy reads in seeded decision code.
pub const DETERMINISM: &str = "determinism";
/// Metric names must come from the `cbes_obs::names` constants module.
pub const METRIC_NAMES: &str = "metric_names";
/// Every crate root must carry `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE: &str = "forbid_unsafe";
/// Protocol ↔ client ↔ CLI ↔ docs consistency checks.
pub const DRIFT: &str = "drift";
/// Malformed waiver annotations (always checked, never waivable).
pub const WAIVER: &str = "waiver";

/// Every selectable rule, in run order.
pub const ALL_RULES: [&str; 5] = [PANIC_PATH, DETERMINISM, METRIC_NAMES, FORBID_UNSAFE, DRIFT];

/// Whether findings of `rule` can be waived with a
/// `// cbes-analyze: allow(rule, reason)` annotation. Drift findings
/// are unwaivable by design: the fix is to update the lagging side,
/// not to document the lag.
pub fn waivable(rule: &str) -> bool {
    matches!(
        rule,
        "panic_path" | "determinism" | "metric_names" | "forbid_unsafe"
    )
}
