//! The rule catalog. Each rule has a stable id used in findings, in
//! waiver annotations, and in the `--rules` CLI filter.

pub mod blocking_hot_path;
pub mod determinism;
pub mod drift;
pub mod error_swallow;
pub mod forbid_unsafe;
pub mod lock_order;
pub mod metric_names;
pub mod panic_path;
pub mod unsafe_audit;

/// Panic-free request/evaluation path lint.
pub const PANIC_PATH: &str = "panic_path";
/// No wall-clock or entropy reads in seeded decision code.
pub const DETERMINISM: &str = "determinism";
/// Metric names must come from the `cbes_obs::names` constants module.
pub const METRIC_NAMES: &str = "metric_names";
/// Every crate root must carry `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE: &str = "forbid_unsafe";
/// Nested lock acquisitions must follow the canonical workspace order.
pub const LOCK_ORDER: &str = "lock_order";
/// No blocking primitive reachable from an event-loop entry point.
pub const BLOCKING_HOT_PATH: &str = "blocking_hot_path";
/// `unsafe` only in allowlisted modules, only as `// SAFETY:`-commented
/// blocks.
pub const UNSAFE_AUDIT: &str = "unsafe_audit";
/// No discarded `Result`s in crash-safety-critical paths; fsync-family
/// returns may never be ignored.
pub const ERROR_SWALLOW: &str = "error_swallow";
/// Protocol ↔ client ↔ CLI ↔ docs consistency checks.
pub const DRIFT: &str = "drift";
/// Malformed waiver annotations (always checked, never waivable).
pub const WAIVER: &str = "waiver";

/// Every selectable rule, in run order.
pub const ALL_RULES: [&str; 9] = [
    PANIC_PATH,
    DETERMINISM,
    METRIC_NAMES,
    FORBID_UNSAFE,
    LOCK_ORDER,
    BLOCKING_HOT_PATH,
    UNSAFE_AUDIT,
    ERROR_SWALLOW,
    DRIFT,
];

/// Whether findings of `rule` can be waived with a
/// `// cbes-analyze: allow(rule, reason)` annotation. Drift findings
/// are unwaivable by design: the fix is to update the lagging side,
/// not to document the lag.
pub fn waivable(rule: &str) -> bool {
    matches!(
        rule,
        "panic_path"
            | "determinism"
            | "metric_names"
            | "forbid_unsafe"
            | "lock_order"
            | "blocking_hot_path"
            | "unsafe_audit"
            | "error_swallow"
    )
}
