//! `determinism`: seeded decision code must not read wall clocks or
//! ambient entropy.
//!
//! The schedulers, fault schedules, and the MPI simulator back the
//! paper's reproducibility claims: the same seed must produce the same
//! placement, the same fault timeline, the same trace. A stray
//! `Instant::now()` or `thread_rng()` silently breaks that. Timing that
//! genuinely needs a clock flows through `TelemetrySink::clock`, whose
//! one real read carries a waiver.
//!
//! `#[cfg(test)]` code is exempt — tests may time themselves.

use crate::findings::Finding;
use crate::rules::DETERMINISM;
use crate::source::SourceFile;

/// Directory prefixes (workspace-relative) the rule applies to.
pub const SCOPE_PREFIXES: [&str; 3] = [
    "crates/sched/src/",
    "crates/faults/src/",
    "crates/mpisim/src/",
];

/// Run the rule over one scoped file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test_code(i) {
            continue;
        }
        let t = &toks[i];
        // `Instant::now` / `SystemTime::now`
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && toks.get(i + 3).is_some_and(|c| c.is_ident("now"))
        {
            out.push(Finding::new(
                DETERMINISM,
                &file.path,
                t.line,
                format!(
                    "wall-clock read `{}::now` in deterministic decision code; route timing through `TelemetrySink::clock`",
                    t.text
                ),
            ));
        }
        // Unseeded RNG construction.
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("from_os_rng") {
            out.push(Finding::new(
                DETERMINISM,
                &file.path,
                t.line,
                format!(
                    "unseeded RNG (`{}`) in deterministic decision code; seed from the request",
                    t.text
                ),
            ));
        }
        // `rand::random` (but not e.g. `rng.random_range`).
        if t.is_ident("rand")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && toks.get(i + 3).is_some_and(|c| c.is_ident("random"))
        {
            out.push(Finding::new(
                DETERMINISM,
                &file.path,
                t.line,
                "`rand::random` draws from ambient entropy; seed from the request",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/sched/src/sa.rs", src))
    }

    #[test]
    fn clock_reads_are_flagged() {
        assert_eq!(run("fn a() { let t = Instant::now(); }").len(), 1);
        assert_eq!(
            run("fn a() { let t = std::time::SystemTime::now(); }").len(),
            1
        );
        assert!(run("fn a(s: &mut impl TelemetrySink) { let t = s.clock(); }").is_empty());
    }

    #[test]
    fn unseeded_rng_is_flagged_but_seeded_is_not() {
        assert_eq!(run("fn a() { let mut rng = rand::thread_rng(); }").len(), 1);
        assert_eq!(run("fn a() { let x: u8 = rand::random(); }").len(), 1);
        assert!(run("fn a() { let mut rng = StdRng::seed_from_u64(7); }").is_empty());
        assert!(run("fn a(rng: &mut StdRng) { rng.random_range(0..4); }").is_empty());
    }

    #[test]
    fn test_code_may_read_clocks() {
        let src = "#[cfg(test)] mod t { fn a() { let t = Instant::now(); } }";
        assert!(run(src).is_empty());
    }
}
