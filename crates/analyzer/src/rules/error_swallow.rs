//! `error_swallow`: crash-safety-critical paths must not discard
//! `Result`s, and `fsync`-family returns may never be ignored anywhere.
//!
//! The reconfig store's write points and journal replay are the code
//! the crash-safety tests lean on; a `let _ =` or a trailing `.ok();`
//! there silently converts a durability failure into corruption
//! tolerated at the next boot. In those files every discard is flagged.
//! Workspace-wide (vendored crates included), discarding the return of
//! `sync_all` / `sync_data` / `fsync` / `fdatasync` is flagged: an
//! ignored fsync error means the journal may not be on disk while the
//! code behaves as if it were.

use crate::findings::Finding;
use crate::rules::ERROR_SWALLOW;
use crate::source::SourceFile;

/// Files where *any* `Result` discard is flagged, not just fsyncs.
pub const CRITICAL_PATHS: &[&str] = &[
    "crates/reconfig/src/store.rs",
    "crates/reconfig/src/lifecycle.rs",
    "crates/server/src/reconfig.rs",
];

/// Durability calls whose returns may never be ignored, anywhere.
const FSYNC_FAMILY: &[&str] = &["sync_all", "sync_data", "fsync", "fdatasync"];

/// Scan forward from `i` to the end of the statement (`;` at the same
/// delimiter depth), returning the index just past it.
fn statement_end(src: &SourceFile, i: usize) -> usize {
    let tokens = &src.tokens;
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                break; // statement ends with its enclosing block
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    j
}

/// Whether any token in `[start, end)` is an fsync-family identifier;
/// returns its name.
fn fsync_in(src: &SourceFile, start: usize, end: usize) -> Option<&'static str> {
    src.tokens[start..end.min(src.tokens.len())]
        .iter()
        .find_map(|t| FSYNC_FAMILY.iter().find(|f| t.is_ident(f)).copied())
}

/// Run the rule over one file.
pub fn check(src: &SourceFile) -> Vec<Finding> {
    let critical = CRITICAL_PATHS.contains(&src.path.as_str());
    let tokens = &src.tokens;
    let mut findings = Vec::new();
    let mut flagged_lines: Vec<u32> = Vec::new();
    let flag = |findings: &mut Vec<Finding>, flagged: &mut Vec<u32>, line: u32, message: String| {
        if !flagged.contains(&line) {
            flagged.push(line);
            findings.push(Finding::new(ERROR_SWALLOW, &src.path, line, message));
        }
    };

    for i in 0..tokens.len() {
        if src.in_test_code(i) {
            continue;
        }
        // `let _ = ...;` — a wildcard discard.
        if tokens[i].is_ident("let")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            let end = statement_end(src, i + 3);
            if let Some(call) = fsync_in(src, i + 3, end) {
                flag(
                    &mut findings,
                    &mut flagged_lines,
                    tokens[i].line,
                    format!(
                        "`let _ =` discards the result of `{call}` — an ignored fsync error \
                             means the journal may not be durable"
                    ),
                );
            } else if critical {
                flag(
                    &mut findings,
                    &mut flagged_lines,
                    tokens[i].line,
                    "`let _ =` discards a value in a crash-safety-critical path".to_string(),
                );
            }
            continue;
        }
        // `....ok();` — a Result downgraded and dropped.
        if tokens[i].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("ok"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct(';'))
        {
            // Receiver chain: walk back to the start of the statement.
            let mut start = i;
            while start > 0 {
                let t = &tokens[start - 1];
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                start -= 1;
            }
            if let Some(call) = fsync_in(src, start, i) {
                flag(
                    &mut findings,
                    &mut flagged_lines,
                    tokens[i + 1].line,
                    format!(
                        "`.ok()` discards the result of `{call}` — an ignored fsync error \
                             means the journal may not be durable"
                    ),
                );
            } else if critical {
                flag(
                    &mut findings,
                    &mut flagged_lines,
                    tokens[i + 1].line,
                    "`.ok();` discards a `Result` in a crash-safety-critical path".to_string(),
                );
            }
            continue;
        }
        // A bare `file.sync_all()...;` statement whose value is dropped
        // (the compiler's unused-Result lint catches the plain form;
        // this also catches `.map_err(...)`-style launder-and-drop).
        if tokens[i].is_punct('.')
            && tokens
                .get(i + 1)
                .is_some_and(|t| FSYNC_FAMILY.iter().any(|f| t.is_ident(f)))
        {
            let mut start = i;
            while start > 0 {
                let t = &tokens[start - 1];
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                start -= 1;
            }
            // Statement-position call (not a `let`/assignment/return and
            // not inside a wider expression): starts at the receiver.
            let starts_statement = !tokens[start..i].iter().any(|t| {
                t.is_ident("let")
                    || t.is_ident("return")
                    || t.is_ident("match")
                    || t.is_ident("if")
                    || t.is_punct('=')
                    || t.is_punct('?')
            });
            let end = statement_end(src, i);
            let ends_plain = tokens
                .get(end.saturating_sub(1))
                .is_some_and(|t| t.is_punct(';'));
            let has_propagation = tokens[i..end]
                .iter()
                .any(|t| t.is_punct('?') || t.is_ident("expect") || t.is_ident("unwrap"));
            if starts_statement && ends_plain && !has_propagation {
                let call = tokens[i + 1].text.clone();
                flag(
                    &mut findings,
                    &mut flagged_lines,
                    tokens[i + 1].line,
                    format!(
                        "the result of `{call}` is dropped — fsync-family errors must be \
                         handled or propagated"
                    ),
                );
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(path, src))
    }

    #[test]
    fn let_discard_in_a_critical_path_is_flagged() {
        let findings = run(
            "crates/reconfig/src/store.rs",
            "fn replay() { let _ = parse(line); }",
        );
        assert_eq!(findings.len(), 1, "{findings:#?}");
    }

    #[test]
    fn let_discard_elsewhere_is_tolerated_unless_fsync() {
        assert!(run(
            "crates/server/src/server.rs",
            "fn f(w: &TcpStream) { let _ = w.write(&[1]); }",
        )
        .is_empty());
        let findings = run(
            "crates/server/src/server.rs",
            "fn f(file: &File) { let _ = file.sync_all(); }",
        );
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("sync_all"));
    }

    #[test]
    fn trailing_ok_discard_is_flagged_in_critical_paths() {
        let findings = run(
            "crates/reconfig/src/store.rs",
            "fn cleanup(tmp: &Path) { std::fs::remove_file(tmp).ok(); }",
        );
        assert_eq!(findings.len(), 1, "{findings:#?}");
        // `.ok()` feeding a consumer is not a discard.
        assert!(run(
            "crates/reconfig/src/store.rs",
            "fn read(p: &Path) -> Option<String> { std::fs::read_to_string(p).ok() }",
        )
        .is_empty());
    }

    #[test]
    fn fsync_ok_discard_is_flagged_everywhere() {
        let findings = run(
            "vendor/thing/src/lib.rs",
            "fn f(file: &File) { file.sync_data().ok(); }",
        );
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("sync_data"));
    }

    #[test]
    fn propagated_fsyncs_are_clean() {
        assert!(run(
            "crates/reconfig/src/store.rs",
            "fn persist(f: &File) -> io::Result<()> { f.sync_all()?; Ok(()) }",
        )
        .is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(run(
            "crates/reconfig/src/store.rs",
            "#[cfg(test)] mod tests { fn t() { let _ = parse(line); } }",
        )
        .is_empty());
    }
}
