//! A lightweight Rust lexer: just enough tokenisation for lint rules.
//!
//! The lexer understands the parts of Rust's lexical grammar that can
//! *hide* tokens from a naive text search — line and (nested) block
//! comments, string/raw-string/char literals, lifetimes — and emits a
//! flat token stream with line numbers. It performs no parsing; the rule
//! engine matches token patterns (e.g. `.` `unwrap` `(`) over the
//! stream, which cannot be fooled by occurrences inside strings or
//! comments the way `grep` can.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `fn`, `Instant`, ...).
    Ident,
    /// A numeric literal.
    Num,
    /// A string literal (plain, raw, or byte); `text` is the content
    /// without quotes or raw-string hashes.
    Str,
    /// A character literal or a lifetime (`'a'`, `'static`).
    Char,
    /// A single punctuation character (`.`, `[`, `::` is two tokens).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokKind,
    /// The token's text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == ch.to_string().as_bytes()
    }
}

/// One comment (line or block), kept out of the token stream so rules
/// never match inside it; waiver annotations are parsed from these.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
            _src: src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphanumeric() || c == '_' => self.ident(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        (self.tokens, self.comments)
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated; tolerate
            }
        }
        self.comments.push(Comment { line, text });
    }

    /// A plain (escaped) string literal starting at the current `"`.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push('\\');
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// A raw string starting at the current `"`, terminated by `"` plus
    /// `hashes` `#` characters.
    fn raw_string(&mut self, hashes: usize, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break 'scan;
                }
                text.push('"');
                for _ in 0..matched {
                    text.push('#');
                }
                continue;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // Lifetime: `'` ident-start, not followed by a closing quote.
        // Char literal: everything else (`'x'`, `'\n'`, `'\u{1F600}'`).
        let next = self.peek(1);
        let is_lifetime = matches!(next, Some(c) if c.is_alphanumeric() || c == '_')
            && self.peek(2) != Some('\'');
        self.bump(); // the quote
        if is_lifetime {
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Char, text, line);
            return;
        }
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push('\\');
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => text.push(c),
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` and `1.max(2)` do not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Raw/byte string prefixes: `r"..."`, `r#"..."#`, `b"..."`,
        // `br#"..."#`. The prefix ident is consumed into the literal.
        if text == "r" || text == "br" {
            let mut hashes = 0usize;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some('"') {
                for _ in 0..hashes {
                    self.bump();
                }
                self.raw_string(hashes, line);
                return;
            }
        }
        if text == "b" && self.peek(0) == Some('"') {
            self.string(line);
            return;
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* a nested */ block */
            let s = "unwrap() inside a string";
            let r = r#"raw with "quotes" and unwrap"#;
            call();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"panic".to_string()));
        assert!(ids.contains(&"call".to_string()));
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let ids = idents("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_literals_lex_as_chars() {
        let (toks, _) = lex("let c = 'x'; let n = '\\n'; let q = '\\'';");
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let (toks, _) = lex("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let (toks, _) = lex("for i in 0..10 { 1.5f64.max(2.0); }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5f64", "2.0"]);
        assert!(toks.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let (_, comments) = lex("x();\n// cbes-analyze: allow(panic_path, reason here)\ny();");
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("allow(panic_path"));
    }
}
