//! Findings and the machine-readable report.
//!
//! The crate is dependency-free, so the JSON report is emitted by hand;
//! the format is flat and stable so CI tooling can consume it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One analysis finding — waived or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`panic_path`, `determinism`, ...).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// True when an `allow(rule, reason)` waiver annotation covers the
    /// site.
    pub waived: bool,
    /// The waiver's documented reason, when waived.
    pub reason: Option<String>,
}

impl Finding {
    /// An unwaived finding.
    pub fn new(rule: &'static str, file: &str, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
            waived: false,
            reason: None,
        }
    }
}

/// The full result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, waived ones included.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Rule ids that ran.
    pub rules_run: Vec<&'static str>,
}

impl Report {
    /// Findings not covered by a waiver — these fail the run.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Findings covered by a waiver — reported but not fatal.
    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived)
    }

    /// Per-rule `(unwaived, waived)` counts, sorted by rule id.
    pub fn counts_by_rule(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for rule in &self.rules_run {
            counts.entry(rule).or_default();
        }
        for f in &self.findings {
            let entry = counts.entry(f.rule).or_default();
            if f.waived {
                entry.1 += 1;
            } else {
                entry.0 += 1;
            }
        }
        counts
    }

    /// Human-readable diagnostics: one `file:line rule message` per
    /// finding, then a per-rule summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = if f.waived { "waived" } else { "error" };
            let _ = writeln!(
                out,
                "{}: [{}] {}:{} {}",
                tag, f.rule, f.file, f.line, f.message
            );
            if let Some(reason) = &f.reason {
                let _ = writeln!(out, "        waiver reason: {reason}");
            }
        }
        let _ = writeln!(out, "cbes-analyze: {} files scanned", self.files_scanned);
        for (rule, (unwaived, waived)) in self.counts_by_rule() {
            let _ = writeln!(out, "  {rule}: {unwaived} finding(s), {waived} waived");
        }
        out
    }

    /// Machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let rules: Vec<String> = self.rules_run.iter().map(|r| json_str(r)).collect();
        let _ = writeln!(out, "  \"rules_run\": [{}],", rules.join(", "));
        let _ = writeln!(out, "  \"unwaived_count\": {},", self.unwaived().count());
        let _ = writeln!(out, "  \"waived_count\": {},", self.waived().count());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"file\": {}, \"line\": {}, \"waived\": {}, \"message\": {}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                f.waived,
                json_str(&f.message),
            );
            if let Some(reason) = &f.reason {
                let _ = write!(out, ", \"reason\": {}", json_str(reason));
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escape a string as a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_split_waived_from_unwaived() {
        let mut report = Report {
            rules_run: vec!["panic_path"],
            ..Report::default()
        };
        report
            .findings
            .push(Finding::new("panic_path", "a.rs", 3, "unwrap"));
        let mut waived = Finding::new("panic_path", "a.rs", 9, "index");
        waived.waived = true;
        waived.reason = Some("bounded".to_string());
        report.findings.push(waived);
        let counts = report.counts_by_rule();
        assert_eq!(counts["panic_path"], (1, 1));
        assert_eq!(report.unwaived().count(), 1);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_report_contains_findings() {
        let mut report = Report {
            rules_run: vec!["determinism"],
            files_scanned: 2,
            ..Report::default()
        };
        report.findings.push(Finding::new(
            "determinism",
            "sched/sa.rs",
            7,
            "Instant::now in decision path",
        ));
        let json = report.render_json();
        assert!(json.contains("\"unwaived_count\": 1"));
        assert!(json.contains("\"file\": \"sched/sa.rs\""));
        assert!(json.contains("\"line\": 7"));
    }
}
