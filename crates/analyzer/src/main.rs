//! CLI entry point for `cbes-analyze`.
//!
//! ```text
//! cbes-analyze [--workspace] [--root DIR] [--rules a,b,c] [--json PATH]
//! ```
//!
//! Exits 0 when the tree is clean, 1 when any unwaived finding remains,
//! and 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use cbes_analyze::{analyze, rules, Options};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cbes-analyze [options]

  --workspace     analyze the workspace rooted at the current directory
                  (the default when no --root is given)
  --root DIR      analyze the workspace rooted at DIR
  --rules a,b,c   run only the named rules
                  (panic_path, determinism, metric_names, forbid_unsafe,
                   lock_order, blocking_hot_path, unsafe_audit, error_swallow,
                   drift)
  --json PATH     also write the machine-readable findings report to PATH

exits 0 when clean, 1 when any unwaived finding remains, 2 on usage or I/O errors";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("cbes-analyze: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root = std::path::PathBuf::from(".");
    let mut selected: Vec<&'static str> = rules::ALL_RULES.to_vec();
    let mut json_path = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => root = std::path::PathBuf::from("."),
            "--root" => {
                root = args.next().ok_or("--root needs a directory")?.into();
            }
            "--rules" => {
                let list = args.next().ok_or("--rules needs a comma-separated list")?;
                selected = Vec::new();
                for name in list.split(',') {
                    let id = rules::ALL_RULES
                        .iter()
                        .find(|r| **r == name.trim())
                        .ok_or_else(|| format!("unknown rule `{}`", name.trim()))?;
                    selected.push(id);
                }
            }
            "--json" => {
                json_path = Some(args.next().ok_or("--json needs a file path")?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let opts = Options {
        root,
        rules: selected,
    };
    let report = analyze(&opts)?;
    print!("{}", report.render_text());
    if let Some(path) = json_path {
        std::fs::write(&path, report.render_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(report.unwaived().count() == 0)
}
