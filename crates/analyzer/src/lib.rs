//! `cbes-analyze`: workspace-aware static analysis for the CBES
//! codebase.
//!
//! A dependency-free Rust lexer plus a rule engine enforcing the
//! invariants the serving stack depends on but the compiler cannot
//! see: panic-free request handling ([`rules::panic_path`]), seeded
//! determinism in decision code ([`rules::determinism`]), centralised
//! metric naming ([`rules::metric_names`]), workspace-wide
//! `#![forbid(unsafe_code)]` ([`rules::forbid_unsafe`]), and
//! protocol/CLI/docs consistency ([`rules::drift`]).
//!
//! On top of the flat stream sit a brace-aware token-tree parser
//! ([`token_tree`]) and a workspace call graph ([`callgraph`]), which
//! power the structural rules: canonical lock ordering
//! ([`rules::lock_order`]), no blocking primitives reachable from the
//! event loop ([`rules::blocking_hot_path`]), audited `unsafe` blocks
//! ([`rules::unsafe_audit`]), and no swallowed `Result`s in
//! crash-safety-critical paths ([`rules::error_swallow`]).
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p cbes-analyze -- --workspace
//! ```
//!
//! Sites that are provably fine carry a
//! `// cbes-analyze: allow(<rule>, <reason>)` waiver; waivers are
//! counted and reported, and drift findings cannot be waived.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod engine;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod token_tree;

pub use engine::{analyze, Options};
pub use findings::{Finding, Report};
