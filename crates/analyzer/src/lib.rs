//! `cbes-analyze`: workspace-aware static analysis for the CBES
//! codebase.
//!
//! A dependency-free Rust lexer plus a rule engine enforcing the
//! invariants the serving stack depends on but the compiler cannot
//! see: panic-free request handling ([`rules::panic_path`]), seeded
//! determinism in decision code ([`rules::determinism`]), centralised
//! metric naming ([`rules::metric_names`]), workspace-wide
//! `#![forbid(unsafe_code)]` ([`rules::forbid_unsafe`]), and
//! protocol/CLI/docs consistency ([`rules::drift`]).
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p cbes-analyze -- --workspace
//! ```
//!
//! Sites that are provably fine carry a
//! `// cbes-analyze: allow(<rule>, <reason>)` waiver; waivers are
//! counted and reported, and drift findings cannot be waived.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod source;

pub use engine::{analyze, Options};
pub use findings::{Finding, Report};
