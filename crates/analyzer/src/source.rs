//! A lexed source file with waiver annotations and `#[cfg(test)]`
//! region tracking — the unit the rule engine works on.

use crate::lexer::{lex, Comment, Token};

/// A per-site waiver: `// cbes-analyze: allow(<rule>, <reason>)`.
///
/// A waiver covers findings of `rule` on its own line and on the line
/// immediately after it (so it can trail the offending expression or sit
/// on its own line above it). The reason is mandatory; it is carried
/// into the report so waivers stay auditable.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id the waiver applies to.
    pub rule: String,
    /// Why the site is exempt (free text, no parentheses).
    pub reason: String,
    /// 1-based line of the waiver comment.
    pub line: u32,
}

/// A waiver annotation the parser could not accept (missing reason,
/// unparseable form). These become unwaivable findings: a waiver that
/// does not say *why* is worse than none.
#[derive(Debug, Clone)]
pub struct BadWaiver {
    /// 1-based line of the malformed annotation.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// The marker every waiver annotation starts with.
pub const WAIVER_MARKER: &str = "cbes-analyze:";

fn parse_waivers(comments: &[Comment]) -> (Vec<Waiver>, Vec<BadWaiver>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(at) = c.text.find(WAIVER_MARKER) else {
            continue;
        };
        let rest = c.text[at + WAIVER_MARKER.len()..].trim();
        let Some(body) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.rfind(')').map(|end| &r[..end]))
        else {
            bad.push(BadWaiver {
                line: c.line,
                problem: format!("expected `{WAIVER_MARKER} allow(<rule>, <reason>)`"),
            });
            continue;
        };
        let (rule, reason) = match body.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (body.trim(), ""),
        };
        if rule.is_empty() || reason.is_empty() {
            bad.push(BadWaiver {
                line: c.line,
                problem: "waiver must name a rule and give a non-empty reason".to_string(),
            });
            continue;
        }
        waivers.push(Waiver {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line: c.line,
        });
    }
    (waivers, bad)
}

/// A lexed file ready for rule matching.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used in findings.
    pub path: String,
    /// The token stream (comments excluded).
    pub tokens: Vec<Token>,
    /// Every comment, in source order — rules that audit comment
    /// conventions (`// SAFETY:`) read these.
    pub comments: Vec<Comment>,
    /// Parsed waiver annotations.
    pub waivers: Vec<Waiver>,
    /// Malformed waiver annotations.
    pub bad_waivers: Vec<BadWaiver>,
    /// Token-index ranges `[start, end)` covered by `#[cfg(test)]`.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lex `src` (logically located at `path`) and precompute waivers
    /// and test regions.
    pub fn parse(path: impl Into<String>, src: &str) -> SourceFile {
        let (tokens, comments) = lex(src);
        let (waivers, bad_waivers) = parse_waivers(&comments);
        let test_ranges = find_test_ranges(&tokens);
        SourceFile {
            path: path.into(),
            tokens,
            comments,
            waivers,
            bad_waivers,
            test_ranges,
        }
    }

    /// True when token index `i` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| i >= start && i < end)
    }

    /// The waiver covering a finding of `rule` at `line`, if any: a
    /// waiver applies to its own line and the line after it.
    pub fn waiver_for(&self, rule: &str, line: u32) -> Option<&Waiver> {
        self.waivers
            .iter()
            .find(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
    }
}

/// Find token-index ranges guarded by `#[cfg(test)]`.
///
/// After the attribute, the guarded item extends to the end of its brace
/// block (`mod tests { ... }`, `fn f() { ... }`) or, for brace-less
/// items (`use`, `type`), to the next `;`.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        // Walk to the item's opening brace or terminating semicolon.
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            j += 1;
        }
        if j >= tokens.len() {
            ranges.push((start, tokens.len()));
            break;
        }
        if tokens[j].is_punct(';') {
            ranges.push((start, j + 1));
            i = j + 1;
            continue;
        }
        let mut depth = 0usize;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                depth += 1;
            } else if tokens[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let end = (j + 1).min(tokens.len());
        ranges.push((start, end));
        i = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_detected() {
        let src = "
            fn live() { work(); }
            #[cfg(test)]
            mod tests {
                fn t() { victim(); }
            }
            fn after() {}
        ";
        let f = SourceFile::parse("x.rs", src);
        let victim = f
            .tokens
            .iter()
            .position(|t| t.is_ident("victim"))
            .expect("victim token present");
        let work = f
            .tokens
            .iter()
            .position(|t| t.is_ident("work"))
            .expect("work token present");
        let after = f
            .tokens
            .iter()
            .position(|t| t.is_ident("after"))
            .expect("after token present");
        assert!(f.in_test_code(victim));
        assert!(!f.in_test_code(work));
        assert!(!f.in_test_code(after));
    }

    #[test]
    fn waivers_parse_rule_and_reason() {
        let src = "
            // cbes-analyze: allow(panic_path, index is bounded by construction)
            a[i];
        ";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].rule, "panic_path");
        assert!(f.waivers[0].reason.contains("bounded"));
        assert!(f.waiver_for("panic_path", 3).is_some(), "covers next line");
        assert!(f.waiver_for("panic_path", 4).is_none());
        assert!(f.waiver_for("determinism", 3).is_none(), "rule must match");
    }

    #[test]
    fn malformed_waivers_are_reported() {
        let f = SourceFile::parse("x.rs", "// cbes-analyze: allow(panic_path)\nx();");
        assert!(f.waivers.is_empty());
        assert_eq!(f.bad_waivers.len(), 1);
        let f = SourceFile::parse("x.rs", "// cbes-analyze: please ignore\nx();");
        assert_eq!(f.bad_waivers.len(), 1);
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let src = "
            #[cfg(test)]
            use helpers::t;
            fn live() {}
        ";
        let f = SourceFile::parse("x.rs", src);
        let live = f
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("live token present");
        assert!(!f.in_test_code(live));
    }
}
