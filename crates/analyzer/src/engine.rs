//! Workspace walking and rule orchestration.

use crate::callgraph::CallGraph;
use crate::findings::{Finding, Report};
use crate::rules::{
    self, blocking_hot_path, determinism, drift, error_swallow, forbid_unsafe, lock_order,
    metric_names, panic_path, unsafe_audit,
};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// One analysis run's configuration.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (the directory holding `Cargo.toml`, `crates/`).
    pub root: PathBuf,
    /// Rule ids to run, drawn from [`rules::ALL_RULES`].
    pub rules: Vec<&'static str>,
}

impl Options {
    /// Run every rule against the tree rooted at `root`.
    pub fn all_rules(root: impl Into<PathBuf>) -> Options {
        Options {
            root: root.into(),
            rules: rules::ALL_RULES.to_vec(),
        }
    }
}

/// Walk the workspace under `opts.root` and run the selected rules.
pub fn analyze(opts: &Options) -> Result<Report, String> {
    let mut report = Report {
        rules_run: opts.rules.clone(),
        ..Report::default()
    };
    let files = workspace_files(&opts.root)?;
    let mut sources = Vec::with_capacity(files.len());
    for (rel, abs) in &files {
        let text = std::fs::read_to_string(abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        sources.push(SourceFile::parse(rel.clone(), &text));
    }
    report.files_scanned = sources.len();

    // Malformed waivers are findings regardless of rule selection: a
    // waiver that fails to parse is silently NOT protecting its site.
    for src in &sources {
        for bad in &src.bad_waivers {
            report.findings.push(Finding::new(
                rules::WAIVER,
                &src.path,
                bad.line,
                format!("malformed waiver: {}", bad.problem),
            ));
        }
    }

    // The call-graph rules share one workspace graph; build it only
    // when one of them is selected.
    let graph = opts
        .rules
        .iter()
        .any(|r| matches!(*r, rules::LOCK_ORDER | rules::BLOCKING_HOT_PATH))
        .then(|| CallGraph::build(&sources));

    for rule in &opts.rules {
        match *rule {
            rules::PANIC_PATH => {
                for scoped in panic_path::SCOPE {
                    match sources.iter().find(|s| s.path == scoped) {
                        Some(src) => apply(&mut report, src, panic_path::check(src)),
                        None => report.findings.push(Finding::new(
                            rules::PANIC_PATH,
                            scoped,
                            0,
                            "panic-path scoped file is missing from the workspace",
                        )),
                    }
                }
            }
            rules::DETERMINISM => {
                for src in sources.iter().filter(|s| {
                    determinism::SCOPE_PREFIXES
                        .iter()
                        .any(|p| s.path.starts_with(p))
                }) {
                    apply(&mut report, src, determinism::check(src));
                }
            }
            rules::METRIC_NAMES => {
                for src in sources.iter().filter(|s| metric_names::in_scope(&s.path)) {
                    apply(&mut report, src, metric_names::check(src));
                }
            }
            rules::FORBID_UNSAFE => {
                for src in sources
                    .iter()
                    .filter(|s| forbid_unsafe::is_crate_root(&s.path))
                {
                    apply(
                        &mut report,
                        src,
                        forbid_unsafe::check(src).into_iter().collect(),
                    );
                }
            }
            rules::LOCK_ORDER => {
                let graph = graph.as_ref().expect("graph built for lock_order");
                apply_all(&mut report, &sources, lock_order::check(&sources, graph));
            }
            rules::BLOCKING_HOT_PATH => {
                let graph = graph.as_ref().expect("graph built for blocking_hot_path");
                apply_all(
                    &mut report,
                    &sources,
                    blocking_hot_path::check(&sources, graph),
                );
            }
            rules::UNSAFE_AUDIT => {
                for src in &sources {
                    apply(&mut report, src, unsafe_audit::check(src));
                }
            }
            rules::ERROR_SWALLOW => {
                for src in &sources {
                    apply(&mut report, src, error_swallow::check(src));
                }
            }
            rules::DRIFT => report.findings.extend(drift::check(&opts.root)),
            other => return Err(format!("unknown rule `{other}`")),
        }
    }
    Ok(report)
}

/// Attach waivers to a batch of raw findings from one file, then record
/// them.
fn apply(report: &mut Report, src: &SourceFile, raw: Vec<Finding>) {
    for mut f in raw {
        if rules::waivable(f.rule) {
            if let Some(w) = src.waiver_for(f.rule, f.line) {
                f.waived = true;
                f.reason = Some(w.reason.clone());
            }
        }
        report.findings.push(f);
    }
}

/// Like [`apply`], for rules whose findings span files: each finding's
/// waiver is looked up in its own file.
fn apply_all(report: &mut Report, sources: &[SourceFile], raw: Vec<Finding>) {
    for mut f in raw {
        if rules::waivable(f.rule) {
            if let Some(src) = sources.iter().find(|s| s.path == f.file) {
                if let Some(w) = src.waiver_for(f.rule, f.line) {
                    f.waived = true;
                    f.reason = Some(w.reason.clone());
                }
            }
        }
        report.findings.push(f);
    }
}

/// Every `.rs` file under the workspace's source trees (`src/`,
/// `crates/*/src/`, `vendor/*/src/`), as `(relative, absolute)` pairs
/// sorted by relative path.
fn workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut src_dirs = Vec::new();
    if root.join("src").is_dir() {
        src_dirs.push(root.join("src"));
    }
    for group in ["crates", "vendor"] {
        let dir = root.join(group);
        if !dir.is_dir() {
            continue;
        }
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                src_dirs.push(src);
            }
        }
    }
    if src_dirs.is_empty() {
        return Err(format!(
            "{} has no src/, crates/, or vendor/ source trees",
            root.display()
        ));
    }
    let mut files = Vec::new();
    for dir in src_dirs {
        collect_rs(&dir, &mut files)?;
    }
    let mut out = Vec::with_capacity(files.len());
    for abs in files {
        let rel = abs
            .strip_prefix(root)
            .map_err(|_| format!("{} escaped the workspace root", abs.display()))?;
        // `/`-separated relative paths keep scoping platform-independent.
        let rel = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push((rel, abs));
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
