//! A workspace call graph over token trees.
//!
//! Functions are discovered structurally (`fn <name> ... { body }`) in
//! every scanned file; call sites are `ident ( ... )` sequences inside
//! a body. Resolution is by bare name across the whole workspace — an
//! over-approximation that errs toward *more* edges, which is the safe
//! direction for reachability rules (`blocking_hot_path`) and lock-set
//! propagation (`lock_order`). A stoplist keeps ubiquitous std-style
//! method names (`new`, `get`, `push`, ...) from welding every file to
//! every other.

use crate::source::SourceFile;
use crate::token_tree::{self, Delim, TokenTree};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method/function names too generic to resolve into edges: nearly all
/// bind to std types, and a workspace fn sharing one of these names
/// would otherwise attract every call site in the tree.
const EDGE_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "fmt",
    "from",
    "into",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "filter",
    "collect",
    "fold",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "take",
    "replace",
    "to_string",
    "as_str",
    "as_ref",
    "as_bytes",
    "as_deref",
    "parse",
    "trim",
    "split",
    "split_once",
    "join",
    "find",
    "position",
    "starts_with",
    "ends_with",
    "min",
    "max",
    "abs",
    "clamp",
    "entry",
    "or_default",
    "or_insert",
    "or_insert_with",
    "write",
    "writeln",
    "read",
    "lock",
    "send",
    "flush",
    "retain",
    "sort",
    "sort_by",
    "rev",
    "any",
    "all",
    "count",
    "sum",
    "zip",
    "chain",
    "enumerate",
    "cloned",
    "copied",
    "to_vec",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "accept",
    "open",
    "shutdown",
    "wait",
    "start",
    "run",
];

/// Keywords that can directly precede a parenthesis without being a
/// call, plus tuple-enum constructors.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "ref", "mut",
    "let", "fn", "impl", "where", "pub", "crate", "super", "Some", "None", "Ok", "Err", "Box",
    "Vec", "String",
];

/// One discovered function (or method) definition.
#[derive(Debug)]
pub struct FnDef {
    /// Index of the defining file in the source slice the graph was
    /// built from.
    pub src: usize,
    /// Bare function name (no path, no generics).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index extent `[start, end]` of the body brace group in the
    /// defining file's token stream, delimiters included.
    pub body: (usize, usize),
    /// Whether the definition sits inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
}

/// One `callee(...)` site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Bare callee name.
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
    /// Token index of the callee identifier in the caller's file.
    pub token: usize,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Every discovered function, in file-then-source order.
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// Per-fn crate prefix (`crates/server`, `vendor/rand`, `src`),
    /// used for scope-preferring resolution.
    crate_of: Vec<String>,
}

/// The crate prefix of a workspace-relative path: its first two
/// components under `crates/` / `vendor/`, or the first alone.
fn crate_prefix(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some(group @ ("crates" | "vendor")), Some(name)) => format!("{group}/{name}"),
        (Some(first), _) => first.to_string(),
        (None, _) => String::new(),
    }
}

impl CallGraph {
    /// Build the graph over every file in `sources`.
    pub fn build(sources: &[SourceFile]) -> CallGraph {
        let mut fns = Vec::new();
        for (src_idx, src) in sources.iter().enumerate() {
            let forest = token_tree::parse(&src.tokens);
            collect_fns(src, src_idx, &forest, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let crate_of = fns
            .iter()
            .map(|f| crate_prefix(&sources[f.src].path))
            .collect();
        CallGraph {
            fns,
            by_name,
            crate_of,
        }
    }

    /// Indices of functions named `name`, across all files.
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolve a call to `name` made from `caller`: nothing for
    /// stoplisted names; otherwise the nearest-scoped same-named fns —
    /// same file if any, else same crate, else the whole workspace.
    /// The caller itself is never a candidate (self-recursion adds no
    /// information to closure or reachability rules).
    pub fn resolve_for(&self, caller: usize, name: &str) -> Vec<usize> {
        self.resolve_for_admitted(caller, name, &|_, _| true)
    }

    /// [`CallGraph::resolve_for`] with an admission predicate applied
    /// *before* scope preference. Filtering first matters: when a name
    /// is defined both in an excluded module (say, a same-crate client
    /// stub) and in a legitimate callee elsewhere, rejecting after
    /// tiering would pick the excluded nearest match and drop the edge
    /// entirely, hiding the real one.
    pub fn resolve_for_admitted(
        &self,
        caller: usize,
        name: &str,
        admit: &dyn Fn(&FnDef, &str) -> bool,
    ) -> Vec<usize> {
        if EDGE_STOPLIST.contains(&name) {
            return Vec::new();
        }
        let all: Vec<usize> = self
            .fns_named(name)
            .iter()
            .copied()
            .filter(|&i| i != caller && admit(&self.fns[i], &self.crate_of[i]))
            .collect();
        let same_file: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| self.fns[i].src == self.fns[caller].src)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let same_crate: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| self.crate_of[i] == self.crate_of[caller])
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        all
    }

    /// Breadth-first reachability from `entries` (fn indices), test
    /// code and callees rejected by `admit` excluded. Returns
    /// `reached fn -> predecessor fn` (entries map to themselves), so
    /// rules can reconstruct a witness path.
    pub fn reachable_from(
        &self,
        entries: &[usize],
        admit: &dyn Fn(&FnDef, &str) -> bool,
    ) -> BTreeMap<usize, usize> {
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &e in entries {
            if pred.insert(e, e).is_none() {
                queue.push_back(e);
            }
        }
        while let Some(at) = queue.pop_front() {
            let mut callees: BTreeSet<usize> = BTreeSet::new();
            for call in &self.fns[at].calls {
                // Admission runs inside resolution so an excluded
                // nearest-scope candidate cannot shadow an admitted
                // farther one.
                callees.extend(self.resolve_for_admitted(at, &call.name, admit));
            }
            for next in callees {
                if self.fns[next].in_test {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(slot) = pred.entry(next) {
                    slot.insert(at);
                    queue.push_back(next);
                }
            }
        }
        pred
    }

    /// The file path of the fn at `i`'s crate prefix.
    pub fn crate_prefix_of(&self, i: usize) -> &str {
        &self.crate_of[i]
    }

    /// The witness call path from an entry to `target`, as fn names
    /// joined with arrows, given a predecessor map from
    /// [`CallGraph::reachable_from`].
    pub fn path_to(&self, pred: &BTreeMap<usize, usize>, target: usize) -> String {
        let mut names = vec![self.fns[target].name.clone()];
        let mut at = target;
        // Bounded walk: predecessor chains terminate at an entry
        // (pred[e] == e) and the map is acyclic by construction.
        for _ in 0..self.fns.len() {
            let Some(&prev) = pred.get(&at) else { break };
            if prev == at {
                break;
            }
            names.push(self.fns[prev].name.clone());
            at = prev;
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// Recursively discover `fn` items in a sibling list. Bodies are then
/// scanned for call sites; bodies may themselves contain nested `fn`s,
/// which are discovered as their own definitions.
fn collect_fns(src: &SourceFile, src_idx: usize, siblings: &[TokenTree], out: &mut Vec<FnDef>) {
    let tokens = &src.tokens;
    let mut i = 0;
    while i < siblings.len() {
        let is_fn_kw = siblings[i]
            .as_leaf()
            .is_some_and(|t| tokens[t].is_ident("fn"));
        if !is_fn_kw {
            // Descend into groups (mod/impl/trait bodies, and fn bodies
            // already claimed — nested fns get found there too).
            if let Some(g) = siblings[i].as_group() {
                collect_fns(src, src_idx, &g.children, out);
            }
            i += 1;
            continue;
        }
        let fn_tok = siblings[i].as_leaf().expect("fn keyword is a leaf");
        // The name is the first ident leaf after `fn`.
        let Some(name_node) = siblings[i + 1..].iter().find(|n| {
            n.as_leaf()
                .is_some_and(|t| tokens[t].kind == crate::lexer::TokKind::Ident)
        }) else {
            i += 1;
            continue;
        };
        let name = name_node
            .as_leaf()
            .map(|t| tokens[t].text.clone())
            .expect("name is a leaf");
        // The body is the first brace group before a `;` (trait method
        // signatures have no body and end at `;`).
        let mut body: Option<&token_tree::Group> = None;
        for node in &siblings[i + 1..] {
            if node.as_leaf().is_some_and(|t| tokens[t].is_punct(';')) {
                break;
            }
            if let Some(g) = node.as_group() {
                if g.delim == Delim::Brace {
                    body = Some(g);
                    break;
                }
            }
        }
        let Some(body) = body else {
            i += 1;
            continue;
        };
        let extent = token_tree::group_extent(body, tokens.len());
        let mut calls = Vec::new();
        collect_calls(tokens, &body.children, &mut calls);
        out.push(FnDef {
            src: src_idx,
            name,
            line: tokens[fn_tok].line,
            body: extent,
            in_test: src.in_test_code(fn_tok),
            calls,
        });
        // Nested fns and closures inside the body are discovered by the
        // plain descent above on a later pass? No — claim them here.
        collect_fns(src, src_idx, &body.children, out);
        // Skip past the body group among our siblings.
        let body_open = body.open;
        while i < siblings.len() {
            let passed = match &siblings[i] {
                TokenTree::Group(g) => g.open == body_open,
                TokenTree::Leaf(_) => false,
            };
            i += 1;
            if passed {
                break;
            }
        }
    }
}

/// Find `ident ( ... )` call sites in a sibling list, recursing into
/// groups. Macro invocations (`name!(...)`) are naturally excluded by
/// the interposed `!` leaf; `fn name(...)` declarations by the leading
/// `fn`.
fn collect_calls(tokens: &[crate::lexer::Token], siblings: &[TokenTree], out: &mut Vec<CallSite>) {
    for (i, node) in siblings.iter().enumerate() {
        if let Some(g) = node.as_group() {
            collect_calls(tokens, &g.children, out);
            continue;
        }
        let t = node.as_leaf().expect("leaf");
        if tokens[t].kind != crate::lexer::TokKind::Ident {
            continue;
        }
        let name = tokens[t].text.as_str();
        if NON_CALL_IDENTS.contains(&name) {
            continue;
        }
        // Previous leaf must not be `fn` (that is the declaration).
        if i > 0
            && siblings[i - 1]
                .as_leaf()
                .is_some_and(|p| tokens[p].is_ident("fn"))
        {
            continue;
        }
        let followed_by_paren = siblings
            .get(i + 1)
            .and_then(|n| n.as_group())
            .is_some_and(|g| g.delim == Delim::Paren);
        if followed_by_paren {
            out.push(CallSite {
                name: name.to_string(),
                line: tokens[t].line,
                token: t,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, src)| SourceFile::parse(*path, src))
            .collect();
        let g = CallGraph::build(&sources);
        (sources, g)
    }

    #[test]
    fn fns_and_calls_are_discovered() {
        let (_, g) = graph(&[(
            "a.rs",
            "fn outer() { helper(1); x.method(); skip!(macro_arg); }\n\
             fn helper(n: u32) {}\n",
        )]);
        assert_eq!(g.fns.len(), 2);
        let outer = &g.fns[g.fns_named("outer")[0]];
        let names: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"helper"), "{names:?}");
        assert!(names.contains(&"method"), "{names:?}");
        assert!(!names.contains(&"skip"), "macro is not a call: {names:?}");
    }

    #[test]
    fn reachability_crosses_files_and_skips_tests() {
        let (_, g) = graph(&[
            ("a.rs", "fn entry() { middle(); }"),
            (
                "b.rs",
                "fn middle() { leaf_fn(); }\n\
                 fn leaf_fn() {}\n\
                 fn unreached() { leaf_fn(); }\n\
                 #[cfg(test)]\n\
                 mod tests { fn t() { entry(); } }",
            ),
        ]);
        let entry = g.fns_named("entry")[0];
        let pred = g.reachable_from(&[entry], &|_, _| true);
        let leaf = g.fns_named("leaf_fn")[0];
        assert!(pred.contains_key(&leaf));
        assert!(!pred.contains_key(&g.fns_named("unreached")[0]));
        assert_eq!(g.path_to(&pred, leaf), "entry -> middle -> leaf_fn");
    }

    #[test]
    fn trait_signatures_without_bodies_are_skipped() {
        let (_, g) = graph(&[("a.rs", "trait T { fn sig(&self); fn has_body(&self) {} }")]);
        let names: Vec<&str> = g.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["has_body"]);
    }

    #[test]
    fn stoplisted_names_resolve_to_no_edges() {
        let (_, g) = graph(&[("a.rs", "fn get() {} fn caller() { get(); }")]);
        let caller = g.fns_named("caller")[0];
        assert!(g.resolve_for(caller, "get").is_empty());
        assert_eq!(g.resolve_for(caller, "caller").len(), 0, "never self");
    }

    #[test]
    fn resolution_prefers_the_nearest_scope() {
        let (_, g) = graph(&[
            ("crates/core/src/service.rs", "fn caller() { observe(); } "),
            ("crates/core/src/monitor.rs", "fn observe() {}"),
            ("crates/router/src/membership.rs", "fn observe() {}"),
        ]);
        let caller = g.fns_named("caller")[0];
        let resolved = g.resolve_for(caller, "observe");
        assert_eq!(resolved.len(), 1, "same-crate candidate wins");
        assert_eq!(g.crate_prefix_of(resolved[0]), "crates/core");
    }
}
