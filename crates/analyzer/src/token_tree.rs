//! Brace-aware token trees over the flat lexer stream.
//!
//! The lexer emits a flat token stream; rules that need *structure* —
//! function extents, guard lifetimes, call argument lists — parse it
//! into a forest of [`TokenTree`]s. Leaves index into the original
//! token slice, so a tree never copies tokens and [`flatten`] can
//! round-trip the exact stream (a property test pins this).
//!
//! The parser is tolerant by construction: a stray closing delimiter
//! becomes an ordinary leaf, and a group left open at end of input is
//! closed there with [`Group::close`] set to `None`. Rules therefore
//! never fail on partially written or macro-mangled code; they just see
//! a shallower tree.

use crate::lexer::Token;

/// The three Rust delimiter pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( ... )`
    Paren,
    /// `[ ... ]`
    Bracket,
    /// `{ ... }`
    Brace,
}

impl Delim {
    /// The delimiter opened by `ch`, if any.
    pub fn opening(ch: &str) -> Option<Delim> {
        match ch {
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            "{" => Some(Delim::Brace),
            _ => None,
        }
    }

    /// The delimiter closed by `ch`, if any.
    pub fn closing(ch: &str) -> Option<Delim> {
        match ch {
            ")" => Some(Delim::Paren),
            "]" => Some(Delim::Bracket),
            "}" => Some(Delim::Brace),
            _ => None,
        }
    }
}

/// One node of the token forest.
#[derive(Debug)]
pub enum TokenTree {
    /// A non-delimiter token, by index into the lexed stream.
    Leaf(usize),
    /// A delimited group and everything inside it.
    Group(Group),
}

/// A delimited group: `( ... )`, `[ ... ]`, or `{ ... }`.
#[derive(Debug)]
pub struct Group {
    /// Which delimiter pair encloses the group.
    pub delim: Delim,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter, or `None` when the group
    /// ran off the end of input and was closed there.
    pub close: Option<usize>,
    /// Child nodes in source order.
    pub children: Vec<TokenTree>,
}

impl TokenTree {
    /// The group inside this node, if it is one.
    pub fn as_group(&self) -> Option<&Group> {
        match self {
            TokenTree::Group(g) => Some(g),
            TokenTree::Leaf(_) => None,
        }
    }

    /// The leaf token index inside this node, if it is one.
    pub fn as_leaf(&self) -> Option<usize> {
        match self {
            TokenTree::Leaf(i) => Some(*i),
            TokenTree::Group(_) => None,
        }
    }
}

/// Parse the flat token stream into a forest of token trees.
///
/// Stray closers become leaves; unterminated groups close at end of
/// input. Every input token appears in the forest exactly once, in
/// order — see [`flatten`].
pub fn parse(tokens: &[Token]) -> Vec<TokenTree> {
    struct Frame {
        delim: Delim,
        open: usize,
        children: Vec<TokenTree>,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut top: Vec<TokenTree> = Vec::new();

    fn sink<'a>(stack: &'a mut [Frame], top: &'a mut Vec<TokenTree>) -> &'a mut Vec<TokenTree> {
        match stack.last_mut() {
            Some(frame) => &mut frame.children,
            None => top,
        }
    }

    for (i, t) in tokens.iter().enumerate() {
        if t.kind == crate::lexer::TokKind::Punct {
            if let Some(delim) = Delim::opening(&t.text) {
                stack.push(Frame {
                    delim,
                    open: i,
                    children: Vec::new(),
                });
                continue;
            }
            if let Some(delim) = Delim::closing(&t.text) {
                match stack.last() {
                    Some(frame) if frame.delim == delim => {
                        let frame = stack.pop().expect("frame present");
                        sink(&mut stack, &mut top).push(TokenTree::Group(Group {
                            delim: frame.delim,
                            open: frame.open,
                            close: Some(i),
                            children: frame.children,
                        }));
                    }
                    // Mismatched or stray closer: keep it as a leaf so
                    // flatten still reproduces the stream.
                    _ => sink(&mut stack, &mut top).push(TokenTree::Leaf(i)),
                }
                continue;
            }
        }
        sink(&mut stack, &mut top).push(TokenTree::Leaf(i));
    }

    // Close unterminated groups at end of input, innermost first.
    while let Some(frame) = stack.pop() {
        sink(&mut stack, &mut top).push(TokenTree::Group(Group {
            delim: frame.delim,
            open: frame.open,
            close: None,
            children: frame.children,
        }));
    }
    top
}

/// Append the token indices of `forest` to `out` in source order.
///
/// `flatten(parse(tokens))` yields exactly `0..tokens.len()` — the tree
/// is a lossless view of the stream.
pub fn flatten(forest: &[TokenTree], out: &mut Vec<usize>) {
    for node in forest {
        match node {
            TokenTree::Leaf(i) => out.push(*i),
            TokenTree::Group(g) => {
                out.push(g.open);
                flatten(&g.children, out);
                if let Some(close) = g.close {
                    out.push(close);
                }
            }
        }
    }
}

/// The token-index extent `[first, last]` covered by a group, closing
/// delimiter included (or the last inner token when unterminated).
pub fn group_extent(g: &Group, tokens_len: usize) -> (usize, usize) {
    let last = g.close.unwrap_or_else(|| tokens_len.saturating_sub(1));
    (g.open, last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn roundtrip(src: &str) {
        let (tokens, _) = lex(src);
        let forest = parse(&tokens);
        let mut flat = Vec::new();
        flatten(&forest, &mut flat);
        assert_eq!(flat, (0..tokens.len()).collect::<Vec<_>>(), "{src:?}");
    }

    #[test]
    fn nested_groups_parse_and_roundtrip() {
        roundtrip("fn f(a: [u8; 4]) { if x { g(y) } }");
    }

    #[test]
    fn stray_closers_become_leaves() {
        let (tokens, _) = lex(") } x ]");
        let forest = parse(&tokens);
        assert_eq!(forest.len(), 4);
        assert!(forest.iter().all(|n| n.as_leaf().is_some()));
        roundtrip(") } x ]");
    }

    #[test]
    fn unterminated_groups_close_at_eof() {
        let (tokens, _) = lex("fn f() { loop { x(");
        let forest = parse(&tokens);
        let brace = forest
            .iter()
            .filter_map(|n| n.as_group())
            .find(|g| g.delim == Delim::Brace)
            .expect("outer brace group");
        assert!(brace.close.is_none());
        roundtrip("fn f() { loop { x(");
    }

    #[test]
    fn mismatched_closer_keeps_the_open_group_alive() {
        // `( ]` — the `]` cannot close the paren frame; it becomes a
        // leaf inside it and the paren closes at the real `)`.
        let (tokens, _) = lex("f( ] x )");
        let forest = parse(&tokens);
        let paren = forest
            .iter()
            .filter_map(|n| n.as_group())
            .find(|g| g.delim == Delim::Paren)
            .expect("paren group survives");
        assert!(paren.close.is_some());
        assert_eq!(paren.children.len(), 2);
        roundtrip("f( ] x )");
    }
}
