//! Fixture-based end-to-end tests: each fixture under `tests/fixtures/`
//! is a miniature workspace with a known set of violations, and these
//! tests pin the exact finding counts, rule ids, and CLI exit codes.

use cbes_analyze::{analyze, rules, Options, Report};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(root: PathBuf, selected: &[&'static str]) -> Report {
    analyze(&Options {
        root,
        rules: selected.to_vec(),
    })
    .expect("fixture tree analyzes")
}

#[test]
fn clean_fixture_has_no_findings_under_every_rule() {
    let report = run(fixture("clean"), &rules::ALL_RULES);
    assert_eq!(
        report.findings.len(),
        0,
        "clean fixture must be clean: {:#?}",
        report.findings
    );
    assert_eq!(report.files_scanned, 12);
}

#[test]
fn violations_fixture_counts_are_exact() {
    let report = run(
        fixture("violations"),
        &[
            rules::PANIC_PATH,
            rules::DETERMINISM,
            rules::METRIC_NAMES,
            rules::FORBID_UNSAFE,
        ],
    );
    let by_rule = report.counts_by_rule();
    let count = |rule: &str| by_rule.get(rule).copied().unwrap_or((0, 0));

    // (unwaived, waived) per rule.
    assert_eq!(count(rules::PANIC_PATH), (2, 1), "{:#?}", report.findings);
    assert_eq!(count(rules::DETERMINISM), (1, 1), "{:#?}", report.findings);
    assert_eq!(count(rules::METRIC_NAMES), (1, 0), "{:#?}", report.findings);
    assert_eq!(
        count(rules::FORBID_UNSAFE),
        (1, 0),
        "{:#?}",
        report.findings
    );
    assert_eq!(count(rules::WAIVER), (1, 0), "{:#?}", report.findings);
    assert_eq!(report.findings.len(), 8);
    assert_eq!(report.unwaived().count(), 6);
    assert_eq!(report.waived().count(), 2);
}

#[test]
fn violations_fixture_findings_land_on_the_right_sites() {
    let report = run(
        fixture("violations"),
        &[rules::PANIC_PATH, rules::DETERMINISM],
    );
    let unwaived: Vec<(&str, &str)> = report
        .unwaived()
        .map(|f| (f.rule, f.file.as_str()))
        .collect();
    assert!(unwaived.contains(&(rules::PANIC_PATH, "crates/server/src/protocol.rs")));
    assert!(unwaived.contains(&(rules::PANIC_PATH, "crates/core/src/service.rs")));
    assert!(unwaived.contains(&(rules::DETERMINISM, "crates/sched/src/lib.rs")));
    assert!(unwaived.contains(&(rules::WAIVER, "crates/core/src/registry.rs")));

    let waived: Vec<&str> = report.waived().map(|f| f.file.as_str()).collect();
    assert!(waived.contains(&"crates/server/src/server.rs"));
    for f in report.waived() {
        assert!(f.reason.as_deref().is_some_and(|r| r.contains("fixture")));
    }
}

#[test]
fn drift_fixture_reports_every_planted_mismatch() {
    let report = run(fixture("drift"), &[rules::DRIFT]);
    assert_eq!(
        report.findings.len(),
        12,
        "one finding per planted mismatch: {:#?}",
        report.findings
    );
    // Drift findings are unwaivable by design.
    assert_eq!(report.unwaived().count(), 12);
    for f in &report.findings {
        assert_eq!(f.rule, rules::DRIFT);
    }
    let messages: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    let planted = [
        "`Request` has 3 variants but `ACTIONS` lists 2 names",
        "action \"stats\" has no client method `fn stats`",
        "protocol variant `Shutdown` has no row in the DESIGN.md protocol table",
        "action counter \"server.action.wrong\" does not match its action (expected \"server.action.stats\")",
        "metric name \"dup.metric\" already defined at line 4",
        "`CliError::exit_code` has no arm for the `shed` failure class",
        "forwarding mode \"teleport\" is not in the mode vocabulary \
         (hash | leader | merge | broadcast | local)",
        "hash-routed action \"compare\" has no routing-client method `fn compare`",
        "router crate present but the CLI has no `fn route` command",
        "action \"compare\" (mode \"hash\") has no row in the DESIGN.md forwarding table",
        "action \"stats\" (mode \"teleport\") has no row in the DESIGN.md forwarding table",
        "reconfig crate present but the CLI has no `fn artifact` command",
    ];
    for expected in planted {
        assert!(
            messages.contains(&expected),
            "missing {expected:?} in {messages:#?}"
        );
    }
}

#[test]
fn lock_inversion_fixture_counts_are_exact() {
    let report = run(fixture("lock_inversion"), &[rules::LOCK_ORDER]);
    let by_rule = report.counts_by_rule();
    // Direct inversion + transitive inversion unwaived; the sanctioned
    // site carries its waiver.
    assert_eq!(
        by_rule.get(rules::LOCK_ORDER).copied(),
        Some((2, 1)),
        "{:#?}",
        report.findings
    );
    // The transitive finding must name the callee that takes the inner
    // lock, so reviewers can follow the chain without re-deriving it.
    assert!(
        report
            .unwaived()
            .any(|f| f.message.contains("locks_transition")),
        "{:#?}",
        report.findings
    );
}

#[test]
fn blocking_fixture_counts_are_exact() {
    let report = run(fixture("blocking"), &[rules::BLOCKING_HOT_PATH]);
    let by_rule = report.counts_by_rule();
    // The reactor sleep and the fsync two calls deep are findings; the
    // worker's idle park is waived in place.
    assert_eq!(
        by_rule.get(rules::BLOCKING_HOT_PATH).copied(),
        Some((2, 1)),
        "{:#?}",
        report.findings
    );
    // The fsync finding must carry the full witness path from the
    // entry point down to the blocking call.
    assert!(
        report
            .unwaived()
            .any(|f| f.message.contains("run -> step -> persist")),
        "{:#?}",
        report.findings
    );
}

#[test]
fn unsafe_audit_fixture_counts_are_exact() {
    let report = run(fixture("unsafe_audit"), &[rules::UNSAFE_AUDIT]);
    let by_rule = report.counts_by_rule();
    // Undocumented block + non-block `unsafe fn` in the allowlisted
    // module, plus any unsafe at all outside it. The documented block
    // in epoll.rs stays clean.
    assert_eq!(
        by_rule.get(rules::UNSAFE_AUDIT).copied(),
        Some((3, 0)),
        "{:#?}",
        report.findings
    );
    let files: Vec<&str> = report.unwaived().map(|f| f.file.as_str()).collect();
    assert!(files.contains(&"crates/core/src/fast.rs"), "{files:#?}");
}

#[test]
fn error_swallow_fixture_counts_are_exact() {
    let report = run(fixture("error_swallow"), &[rules::ERROR_SWALLOW]);
    let by_rule = report.counts_by_rule();
    // Two critical-path discards plus one workspace-wide fsync discard;
    // propagation and value-position `.ok()` stay clean.
    assert_eq!(
        by_rule.get(rules::ERROR_SWALLOW).copied(),
        Some((3, 0)),
        "{:#?}",
        report.findings
    );
    let files: Vec<&str> = report.unwaived().map(|f| f.file.as_str()).collect();
    assert_eq!(
        files
            .iter()
            .filter(|f| **f == "crates/reconfig/src/store.rs")
            .count(),
        2,
        "{files:#?}"
    );
    assert!(files.contains(&"crates/server/src/flush.rs"), "{files:#?}");
}

#[test]
fn the_real_workspace_stays_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(root, &rules::ALL_RULES);
    let unwaived: Vec<_> = report.unwaived().collect();
    assert!(
        unwaived.is_empty(),
        "the workspace must analyze clean: {unwaived:#?}"
    );
    // The sanctioned waivers are rare and deliberate; this is an exact
    // pin, not a budget — adding OR removing one is a review decision
    // that must update this count and the DESIGN.md §15 accounting.
    assert_eq!(
        report.waived().count(),
        8,
        "waiver accounting drifted: {:#?}",
        report.waived().collect::<Vec<_>>()
    );
}

#[test]
fn cli_exits_zero_on_a_clean_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_cbes-analyze"))
        .arg("--root")
        .arg(fixture("clean"))
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn cli_exits_one_on_unwaived_findings() {
    let out = Command::new(env!("CARGO_BIN_EXE_cbes-analyze"))
        .arg("--root")
        .arg(fixture("violations"))
        .arg("--rules")
        .arg("panic_path,determinism,metric_names,forbid_unsafe")
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error: [panic_path]"), "{text}");
    assert!(text.contains("waived: [determinism]"), "{text}");
}

#[test]
fn cli_fails_the_gate_on_the_lock_inversion_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_cbes-analyze"))
        .arg("--root")
        .arg(fixture("lock_inversion"))
        .arg("--rules")
        .arg("lock_order")
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error: [lock_order]"), "{text}");
}

#[test]
fn cli_fails_the_gate_on_the_blocking_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_cbes-analyze"))
        .arg("--root")
        .arg(fixture("blocking"))
        .arg("--rules")
        .arg("blocking_hot_path")
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error: [blocking_hot_path]"), "{text}");
}

#[test]
fn cli_exits_two_on_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_cbes-analyze"))
        .arg("--rules")
        .arg("not_a_rule")
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let out = Command::new(env!("CARGO_BIN_EXE_cbes-analyze"))
        .arg("--no-such-flag")
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn cli_writes_the_json_report() {
    let path = std::env::temp_dir().join(format!("cbes-analyze-{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_cbes-analyze"))
        .arg("--root")
        .arg(fixture("drift"))
        .arg("--rules")
        .arg("drift")
        .arg("--json")
        .arg(&path)
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = std::fs::read_to_string(&path).expect("json report written");
    std::fs::remove_file(&path).ok();
    assert!(json.contains("\"unwaived_count\": 12"), "{json}");
    assert!(json.contains("\"rule\": \"drift\""), "{json}");
}
