//! Property test: the token-tree parse is lossless.
//!
//! `token_tree::parse` must be tolerant of arbitrarily malformed input
//! (the analyzer runs over fixtures that deliberately ship unbalanced
//! delimiters), and `flatten` must recover every token index the lexer
//! produced, in order, exactly once. We drive that with random "token
//! soup": a seeded mix of idents, literals, comments, and — crucially —
//! unmatched `{ } ( ) [ ]` in any arrangement.

use cbes_analyze::lexer;
use cbes_analyze::token_tree;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Building blocks skewed towards delimiters so deep and unbalanced
/// nesting is common rather than rare.
const PIECES: &[&str] = &[
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "(",
    ")",
    "fn",
    "let",
    "match",
    "ident",
    "x7",
    "self",
    "0",
    "42",
    "\"str\"",
    "'c'",
    ";",
    ",",
    ".",
    "::",
    "->",
    "=>",
    "&",
    "*",
    "=",
    "#",
    "// trailing comment\n",
    "/* block comment */",
    "unsafe",
];

/// Deterministically expand `(seed, len)` into a soup of tokens.
fn soup(seed: u64, len: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    for _ in 0..len {
        let i = rng.random_range(0u32..PIECES.len() as u32) as usize;
        out.push_str(PIECES[i]);
        out.push(' ');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_then_flatten_roundtrips_the_lexer_stream(
        seed in 0u64..u64::MAX,
        len in 0usize..120,
    ) {
        let text = soup(seed, len);
        let (tokens, _comments) = lexer::lex(&text);
        let forest = token_tree::parse(&tokens);
        let mut flat = Vec::new();
        token_tree::flatten(&forest, &mut flat);
        let expected: Vec<usize> = (0..tokens.len()).collect();
        prop_assert_eq!(flat, expected);
    }
}
