//! Lock-order fixture: `reconfig.transition` (rank 10) must be taken
//! before `reconfig.soak` (rank 30). Two planted inversions — one
//! direct, one hidden behind a call — plus one waived site and one
//! clean canonical-order function.

pub struct Runtime {
    transition: Mutex<()>,
    soak: Mutex<Option<u8>>,
}

impl Runtime {
    fn locks_transition(&self) {
        let _t = self.transition.lock();
    }

    // Planted: direct inversion — soak held, then transition acquired.
    pub fn direct_inversion(&self) {
        let _s = self.soak.lock();
        let _t = self.transition.lock();
    }

    // Planted: the same inversion one call deep; only the transitive
    // lock closure of `locks_transition` can see it.
    pub fn transitive_inversion(&self) {
        let _s = self.soak.lock();
        self.locks_transition();
    }

    // Waived: the waiver grammar must cover call-graph rule findings
    // in their own file.
    pub fn sanctioned(&self) {
        let _s = self.soak.lock();
        // cbes-analyze: allow(lock_order, fixture waiver: demonstrates in-place waiving of an inversion)
        let _t = self.transition.lock();
    }

    // Canonical order: transition before soak — clean.
    pub fn fine(&self) {
        let _t = self.transition.lock();
        let _s = self.soak.lock();
    }
}
