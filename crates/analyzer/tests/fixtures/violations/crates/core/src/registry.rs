//! Fixture: a malformed waiver (missing reason) is itself a finding.
// cbes-analyze: allow(panic_path)
pub fn lookup(name: &str) -> Option<&str> {
    Some(name)
}
