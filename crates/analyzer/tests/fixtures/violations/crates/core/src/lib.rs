//! Fixture: crate root MISSING the forbid(unsafe_code) attribute.
pub mod eval;
pub mod registry;
pub mod service;
