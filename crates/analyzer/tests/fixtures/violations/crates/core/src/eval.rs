//! Fixture: panics inside #[cfg(test)] are fine.
pub fn predict() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn boom_is_allowed_here() {
        if super::predict() < 0.0 {
            panic!("only reachable in tests");
        }
    }
}
