//! Fixture: an expect with a non-literal message is not self-documenting.
pub fn evaluate(x: Option<u32>, msg: &str) -> u32 {
    x.expect(msg)
}
