//! Fixture: a waived index expression and a literal metric name.
pub struct Registry;
impl Registry {
    pub fn counter(&self, _name: &str) {}
}

pub fn serve(registry: &Registry, items: &[u32], i: usize) -> u32 {
    registry.counter("boom.metric");
    // cbes-analyze: allow(panic_path, fixture: the caller bounds-checks i)
    items[i]
}
