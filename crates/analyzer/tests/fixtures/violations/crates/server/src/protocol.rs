//! Fixture: one unwaived unwrap in the connection path.
pub fn decode(line: Option<&str>) -> &str {
    line.unwrap()
}
