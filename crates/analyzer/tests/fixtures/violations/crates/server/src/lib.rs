//! Fixture: server crate root with the attribute in place.
#![forbid(unsafe_code)]
pub mod client;
pub mod protocol;
pub mod server;
