//! Fixture: a clean scoped file.
pub fn connect() -> Result<(), String> {
    Ok(())
}
