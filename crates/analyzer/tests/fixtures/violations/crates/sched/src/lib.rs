//! Fixture: one unwaived and one waived determinism violation.
//! (Never compiled — only scanned by the analyzer tests.)
#![forbid(unsafe_code)]

pub fn decide() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn seeded() -> u64 {
    // cbes-analyze: allow(determinism, fixture: entropy is fine in this path)
    let _rng = rand::thread_rng();
    7
}
