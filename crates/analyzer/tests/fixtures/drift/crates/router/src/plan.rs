//! Fixture: mode table matches the action count, but "teleport" is not
//! a forwarding mode.
pub const FORWARD_MODES: [&str; 2] = ["hash", "teleport"];
