//! Fixture: the hash-routed compare action has no routing-client
//! method.
pub struct RoutingClient;

impl RoutingClient {
    pub fn stats_of(&mut self) {}
}
