//! Fixture: three variants, but ACTIONS lists only two.
pub enum Request {
    Compare { app: String },
    Stats,
    Shutdown,
}

pub const ACTIONS: [&str; 2] = ["compare", "stats"];
