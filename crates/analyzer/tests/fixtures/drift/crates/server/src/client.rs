//! Fixture: the stats action has no client method.
pub struct Client;

impl Client {
    pub fn compare(&mut self) {}
}
