//! Fixture: the reconfig crate exists, but the CLI next door has no
//! `fn artifact` command — the planted sub-check-8 mismatch.
pub struct ArtifactStore;
