//! Fixture: a misaligned action counter and a duplicated name.
pub const SERVER_ACTION_COUNTERS: [&str; 2] = ["server.action.compare", "server.action.wrong"];

pub const FIRST: &str = "dup.metric";
pub const SECOND: &str = "dup.metric";
