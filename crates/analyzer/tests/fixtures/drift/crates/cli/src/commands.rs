//! Fixture: every action has a subcommand arm.
pub fn dispatch(sub: &str) -> bool {
    matches!(sub, "compare" | "stats")
}
