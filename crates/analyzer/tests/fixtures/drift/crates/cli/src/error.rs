//! Fixture: the shed failure class has no exit-code arm.
pub enum CliError {
    Usage(String),
    Transport(String),
    Server(String),
}

impl CliError {
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Transport(_) => 3,
            CliError::Server(_) => 4,
        }
    }
}
