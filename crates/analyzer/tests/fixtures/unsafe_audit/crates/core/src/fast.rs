//! Unsafe outside the allowlisted module: a finding even with a
//! SAFETY comment — the allowlist is the audit's outer wall.

pub fn sneaky(bytes: &[u8]) -> &str {
    // SAFETY: validated as UTF-8 above (irrelevant: wrong module).
    unsafe { std::str::from_utf8_unchecked(bytes) }
}
