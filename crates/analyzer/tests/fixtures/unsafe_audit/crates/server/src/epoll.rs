//! Unsafe-audit fixture, allowlisted module: one documented block
//! (clean), one undocumented block, and one non-block `unsafe`.

pub fn documented(fd: i32) -> i32 {
    // SAFETY: fd is owned by this struct and stays open for the
    // duration of the call; the buffer outlives the syscall.
    unsafe { syscall_wait(fd) }
}

pub fn undocumented(fd: i32) -> i32 {
    unsafe { syscall_wait(fd) }
}

pub unsafe fn exposed_surface(fd: i32) -> i32 {
    syscall_wait(fd)
}
