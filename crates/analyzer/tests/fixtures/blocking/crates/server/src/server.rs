//! Blocking-hot-path fixture: the reactor's `run` reaches a sleep
//! directly and an fsync through two calls; the worker's waived park
//! demonstrates the waiver flow; a deadline-bounded call stays clean.

pub fn run(reactor: &mut Reactor) {
    // Planted: thread sleep on the event loop.
    std::thread::sleep(POLL_BACKOFF);
    step(reactor);
}

fn step(reactor: &mut Reactor) {
    persist(&reactor.journal);
}

pub fn worker_loop(rx: &Receiver<Job>) {
    // cbes-analyze: allow(blocking_hot_path, fixture waiver: the idle park is the designed wait point)
    while let Ok(_job) = rx.recv() {
        serve();
    }
}

fn serve() {
    // Deadline-bounded: not a blocking primitive.
    let _s = TcpStream::connect_timeout(&addr(), TIMEOUT);
}
