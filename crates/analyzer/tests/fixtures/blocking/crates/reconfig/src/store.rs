//! The fsync lives two calls away from the entry point; the finding
//! must carry the `run -> step -> persist` witness path.

pub fn persist(journal: &File) {
    // Planted: fsync reachable from the reactor.
    journal.sync_all().expect("journal fsync");
}

pub fn replay(journal: &File) -> u64 {
    // Unreachable from any entry point: not a finding.
    journal.sync_data().expect("replay fsync");
    0
}
