//! Fixture: a clean server crate root.
#![forbid(unsafe_code)]
pub mod client;
pub mod protocol;
pub mod server;
