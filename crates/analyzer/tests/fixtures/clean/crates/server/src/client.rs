//! Fixture client: one method per action.
pub struct Client;

impl Client {
    pub fn compare(&mut self) {}
    pub fn stats(&mut self) {}
}
