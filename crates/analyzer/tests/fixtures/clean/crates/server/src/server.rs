//! Fixture server: no panics, no literal metric names.
pub fn serve() -> Result<(), String> {
    Ok(())
}
