//! Fixture protocol: variants and actions aligned.
pub enum Request {
    Compare { app: String },
    Stats,
}

pub const ACTIONS: [&str; 2] = ["compare", "stats"];
