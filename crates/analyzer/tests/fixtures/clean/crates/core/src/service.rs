//! Fixture service: error handling without panics.
pub fn evaluate(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "empty".to_string())
}
