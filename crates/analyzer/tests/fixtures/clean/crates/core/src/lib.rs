//! Fixture core crate root.
#![forbid(unsafe_code)]
pub mod eval;
pub mod registry;
pub mod service;
