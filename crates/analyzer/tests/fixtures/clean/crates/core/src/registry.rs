//! Fixture registry.
pub fn lookup(name: &str) -> Option<&str> {
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}
