//! Fixture evaluator.
pub fn predict(shares: &[f64], rank: usize) -> f64 {
    shares.get(rank).copied().unwrap_or(1.0)
}
