//! Fixture metric names.
pub const SERVER_ACTION_COUNTERS: [&str; 2] = ["server.action.compare", "server.action.stats"];
