//! Fixture CLI. Failures map to exit codes: 2 usage, 3 transport,
//! 4 server, 5 shed.
#![forbid(unsafe_code)]
pub mod commands;
pub mod error;
