//! Fixture subcommand dispatch.
pub fn dispatch(sub: &str) -> bool {
    matches!(sub, "compare" | "stats")
}
