//! Fixture error type.
pub enum CliError {
    Usage(String),
    Transport(String),
    Server(String),
    Shed(String),
}

impl CliError {
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Transport(_) => 3,
            CliError::Server(_) => 4,
            CliError::Shed(_) => 5,
        }
    }
}
