//! Error-swallow fixture, crash-safety-critical path: a wildcard
//! discard and a trailing `.ok()` are findings; propagation and
//! `.ok()` feeding a consumer are clean.

pub fn replay(line: &str) {
    // Planted: `let _ =` discard in a critical path.
    let _ = parse_record(line);
}

pub fn cleanup(tmp: &Path) {
    // Planted: `.ok();` downgrades and drops the Result.
    std::fs::remove_file(tmp).ok();
}

pub fn persist(journal: &File) -> io::Result<()> {
    // Propagated: clean.
    journal.sync_all()?;
    Ok(())
}

pub fn read_payload(path: &Path) -> Option<String> {
    // `.ok()` feeding a consumer: clean.
    std::fs::read_to_string(path).ok()
}
