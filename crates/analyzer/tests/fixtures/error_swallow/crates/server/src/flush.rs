//! Outside the critical paths only fsync-family discards are flagged.

pub fn sloppy(file: &File) {
    // Planted: ignored fsync return, flagged workspace-wide.
    let _ = file.sync_all();
}

pub fn tolerated(stream: &TcpStream) {
    // A non-fsync discard outside the critical paths: clean.
    let _ = stream.write(&[1]);
}
