//! Integration tests: a real daemon on a loopback socket, exercised by
//! blocking clients over the wire.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cbes_cluster::load::LoadState;
use cbes_cluster::presets::two_switch_demo;
use cbes_cluster::NodeId;
use cbes_core::mapping::Mapping;
use cbes_core::monitor::ForecastKind;
use cbes_core::CbesService;
use cbes_sched::{SaConfig, SaScheduler, ScheduleRequest, Scheduler};
use cbes_server::client::ClientError;
use cbes_server::protocol::error_kind;
use cbes_server::{Client, Server, ServerConfig};
use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};

fn ring_profile(name: &str, procs: usize) -> AppProfile {
    let mk = |rank: usize| ProcessProfile {
        rank,
        x: 5.0,
        o: 0.2,
        b: 0.5,
        sends: vec![MessageGroup {
            peer: (rank + 1) % procs,
            bytes: 8192,
            count: 50,
        }],
        recvs: vec![MessageGroup {
            peer: (rank + procs - 1) % procs,
            bytes: 8192,
            count: 50,
        }],
        profile_speed: 1.0,
        lambda: 1.0,
    };
    AppProfile {
        name: name.to_string(),
        procs: (0..procs).map(mk).collect(),
        arch_ratios: BTreeMap::new(),
    }
}

fn demo_server(workers: usize) -> (cbes_server::ServerHandle, Arc<CbesService>) {
    let service = Arc::new(CbesService::self_calibrated(
        Arc::new(two_switch_demo()),
        ForecastKind::LastValue,
    ));
    let handle = Server::start(
        service.clone(),
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    (handle, service)
}

fn m(ids: &[u32]) -> Mapping {
    Mapping::new(ids.iter().map(|&i| NodeId(i)).collect())
}

#[test]
fn full_request_cycle_over_the_wire() {
    let (handle, _service) = demo_server(2);
    let mut client = Client::connect(handle.addr()).expect("connect");

    client
        .register_profile(ring_profile("ring", 2))
        .expect("register");

    let (epoch, preds) = client
        .compare("ring", &[m(&[0, 1]), m(&[0, 4])])
        .expect("compare");
    assert_eq!(epoch, 0, "no load observed yet");
    assert_eq!(preds.len(), 2);
    assert!(
        preds[0].time < preds[1].time,
        "same-switch mapping must be predicted faster"
    );

    let (_, index, best) = client
        .best_of("ring", &[m(&[0, 4]), m(&[0, 1])])
        .expect("best_of");
    assert_eq!(index, 1);
    assert!(best.time > 0.0);

    // A monitoring sweep bumps the epoch and shifts predictions.
    let mut load = LoadState::idle(8);
    load.set_cpu_avail(NodeId(0), 0.25);
    let epoch = client.observe_load(&load).expect("observe");
    assert_eq!(epoch, 1);
    let (epoch2, loaded) = client.compare("ring", &[m(&[0, 1])]).expect("compare");
    assert_eq!(epoch2, 1);
    assert!(
        loaded[0].time > preds[0].time,
        "a loaded node must slow the prediction"
    );

    // Server-side scheduling over the whole pool avoids the loaded node.
    let pool: Vec<u32> = (0..8).collect();
    let (_, mapping, predicted) = client.schedule("ring", &pool, 0, 7).expect("schedule");
    assert_eq!(mapping.len(), 2);
    assert!(predicted > 0.0);
    assert!(
        !mapping.as_slice().contains(&NodeId(0)),
        "scheduler should avoid the loaded node, got {mapping}"
    );

    let stats = client.stats().expect("stats");
    assert!(stats.served >= 6);
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.profiles, 1);
    assert_eq!(stats.workers, 2);

    client.shutdown().expect("shutdown ack");
    let (served, errors) = handle.join();
    assert!(served >= 7);
    assert_eq!(errors, 0, "no request in this test should error");
}

#[test]
fn service_errors_come_back_typed() {
    let (handle, _service) = demo_server(1);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .register_profile(ring_profile("ring", 2))
        .expect("register");

    // Unknown application.
    match client.compare("nope", &[m(&[0, 1])]) {
        Err(cbes_server::client::ClientError::Server { kind, message, .. }) => {
            assert_eq!(kind, error_kind::SERVICE);
            assert!(message.contains("nope"), "{message}");
        }
        other => panic!("expected a service error, got {other:?}"),
    }

    // Oversubscription is rejected at the service boundary: node 0 is a
    // single-CPU Alpha, so two ranks on it are refused.
    match client.compare("ring", &[m(&[0, 0])]) {
        Err(cbes_server::client::ClientError::Server { kind, message, .. }) => {
            assert_eq!(kind, error_kind::SERVICE);
            assert!(message.contains("n0"), "{message}");
        }
        other => panic!("expected an oversubscription error, got {other:?}"),
    }

    // A short load sweep is refused without bumping the epoch.
    let short = LoadState::idle(3);
    assert!(client.observe_load(&short).is_err());
    let (epoch, _) = client.compare("ring", &[m(&[0, 1])]).expect("compare");
    assert_eq!(epoch, 0, "rejected sweep must not bump the epoch");

    handle.shutdown_and_join();
}

#[test]
fn malformed_lines_get_bad_request_with_id_zero() {
    let (handle, _service) = demo_server(1);
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    writer.write_all(b"this is not json\n").expect("write");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"id\":0"), "{line}");
    assert!(line.contains(error_kind::BAD_REQUEST), "{line}");

    handle.shutdown_and_join();
}

/// Satellite requirement: N threads issuing `Compare` against the same
/// snapshot epoch receive bit-identical predictions, and an `ObserveLoad`
/// between epochs changes them deterministically.
#[test]
fn concurrent_compares_are_bit_identical_within_an_epoch() {
    let (handle, service) = demo_server(4);
    let addr = handle.addr();
    {
        let mut client = Client::connect(addr).expect("connect");
        client
            .register_profile(ring_profile("ring", 4))
            .expect("register");
    }
    let mappings = [m(&[0, 1, 2, 3]), m(&[0, 4, 1, 5]), m(&[4, 5, 6, 7])];

    let collect = |expect_epoch: u64| -> Vec<Vec<u64>> {
        let results: Vec<(u64, Vec<u64>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let mappings = &mappings;
                    s.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let (epoch, preds) = client.compare("ring", mappings).expect("compare");
                        let bits: Vec<u64> = preds.iter().map(|p| p.time.to_bits()).collect();
                        (epoch, bits)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        results
            .into_iter()
            .map(|(epoch, bits)| {
                assert_eq!(epoch, expect_epoch, "all threads see the same epoch");
                bits
            })
            .collect()
    };

    let epoch0: Vec<Vec<u64>> = collect(0);
    for bits in &epoch0[1..] {
        assert_eq!(
            bits, &epoch0[0],
            "predictions within one epoch must be bit-identical"
        );
    }

    // Observe load: the epoch advances and predictions change — the same
    // way for every thread.
    let mut load = LoadState::idle(8);
    load.set_cpu_avail(NodeId(0), 0.4);
    load.set_cpu_avail(NodeId(1), 0.6);
    assert_eq!(service.observe_load(&load).expect("sweep"), 1);

    let epoch1: Vec<Vec<u64>> = collect(1);
    for bits in &epoch1[1..] {
        assert_eq!(bits, &epoch1[0], "epoch 1 must also be deterministic");
    }
    assert_ne!(
        epoch0[0], epoch1[0],
        "the load observation must change predictions"
    );
    // The idle-node mapping is untouched by load on nodes 0/1.
    assert_eq!(
        epoch0[0][2], epoch1[0][2],
        "mapping on idle nodes must be unaffected"
    );

    handle.shutdown_and_join();
}

/// Acceptance criterion: the latency histograms returned by `Metrics`
/// have sane percentiles and their counts equal the served counter.
#[test]
fn metrics_histograms_are_sane_and_counts_match_served() {
    let (handle, _service) = demo_server(2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .register_profile(ring_profile("ring", 2))
        .expect("register");
    for _ in 0..32 {
        client
            .compare("ring", &[m(&[0, 1]), m(&[0, 4])])
            .expect("compare");
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.per_action["compare"], 32);
    assert_eq!(stats.per_action["register_profile"], 1);
    assert!(stats.uptime_s > 0.0);

    let snap = client.metrics().expect("metrics");
    // The snapshot is taken before the metrics request itself is counted,
    // and this client is serial, so the totals are exact: every served
    // request recorded both histograms.
    let served = snap.counters["server.served"];
    assert_eq!(served, 34, "register + 32 compares + stats");
    let svc = &snap.histograms["server.service_time_us"];
    let qw = &snap.histograms["server.queue_wait_us"];
    assert_eq!(svc.count, served, "one service-time sample per request");
    // Queue wait is recorded at worker pickup, so the in-flight metrics
    // request itself has already contributed a sample.
    assert_eq!(qw.count, served + 1, "one queue-wait sample per pickup");
    assert!(svc.p50() <= svc.p99(), "percentiles must be monotone");
    assert!(svc.min <= svc.p50() && svc.p99() <= svc.max);
    assert!(qw.p50() <= qw.p99());
    assert!(
        snap.spans_buffered >= served,
        "every request leaves a span in the ring"
    );

    client.shutdown().expect("shutdown ack");
    handle.join();
}

/// Satellite requirement: the overload (queue-full) and deadline-timeout
/// reply paths are counted accurately in both `Stats` and `Metrics`.
#[test]
fn overload_and_timeout_paths_are_counted_in_stats_and_metrics() {
    let service = Arc::new(CbesService::self_calibrated(
        Arc::new(two_switch_demo()),
        ForecastKind::LastValue,
    ));
    let handle = Server::start(
        service.clone(),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            request_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client
        .register_profile(ring_profile("ring", 2))
        .expect("register");

    // Calibrate SA speed offline, then size a schedule request to ~1.5 s
    // — five request timeouts — so it reliably hogs the single worker.
    let profile = service.registry().get("ring").expect("registered");
    let cached = service.current_load();
    let snapshot = service.snapshot_of(&cached);
    let pool: Vec<NodeId> = (0..8).map(NodeId).collect();
    let request = ScheduleRequest::new(&profile, &snapshot, &pool);
    let mut cfg = SaConfig::fast(1);
    cfg.iters = 50_000;
    let t0 = Instant::now();
    SaScheduler::new(cfg).schedule(&request).expect("calibrate");
    let per_iter = t0.elapsed().as_secs_f64() / 50_000.0;
    let iters = ((1.5 / per_iter) as u64).clamp(200_000, 200_000_000) as u32;

    let blocker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.schedule("ring", &(0..8).collect::<Vec<u32>>(), iters, 1)
    });

    // While the worker is pinned: the first compare fills the one-slot
    // queue and times out at 300 ms; the next bounces off the full queue
    // with an immediate overload reply.
    let (mut saw_timeout, mut saw_overload) = (false, false);
    for _ in 0..40 {
        let mut c = Client::connect(addr).expect("connect");
        match c.compare("ring", &[m(&[0, 1])]) {
            Ok(_) => {}
            Err(ClientError::Server { kind, .. }) if kind == error_kind::TIMEOUT => {
                saw_timeout = true;
            }
            Err(ClientError::Server { kind, .. }) if kind == error_kind::OVERLOADED => {
                saw_overload = true;
            }
            Err(e) => panic!("unexpected client error: {e}"),
        }
        if saw_timeout && saw_overload {
            break;
        }
    }
    assert!(saw_timeout, "a queued compare must hit the deadline");
    assert!(saw_overload, "a compare must bounce off the full queue");
    match blocker.join().expect("blocker thread") {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, error_kind::TIMEOUT),
        other => panic!("the blocking schedule should time out, got {other:?}"),
    }

    // Wait for the worker to drain, then read the counters over the wire.
    let stats = {
        let mut tries = 0;
        loop {
            let mut c = Client::connect(addr).expect("connect");
            match c.stats() {
                Ok(s) => break s,
                Err(_) if tries < 200 => {
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("stats never came back: {e}"),
            }
        }
    };
    assert!(stats.timeouts >= 2, "schedule + queued compare timed out");
    assert!(stats.overloaded >= 1);
    assert_eq!(
        stats.errors,
        stats.timeouts + stats.overloaded,
        "every error in this test is a timeout or an overload"
    );
    assert!(stats.per_action["schedule"] >= 1);

    let mut c = Client::connect(addr).expect("connect");
    let snap = c.metrics().expect("metrics");
    assert_eq!(snap.counters["server.overloaded"], stats.overloaded);
    assert_eq!(snap.counters["server.timeouts"], stats.timeouts);
    assert!(snap.counters["server.served"] >= stats.served);
    assert!(snap.histograms["server.queue_wait_us"].count >= 1);

    handle.shutdown_and_join();
}

/// Satellite requirement: a request line over the configured cap is
/// answered with a typed `frame_too_large` error instead of buffering
/// without bound, and the connection stays usable afterwards.
#[test]
fn oversized_frames_get_a_typed_error_and_the_connection_survives() {
    let service = Arc::new(CbesService::self_calibrated(
        Arc::new(two_switch_demo()),
        ForecastKind::LastValue,
    ));
    let handle = Server::start(
        service,
        ServerConfig {
            workers: 1,
            max_line_bytes: 1024,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // One frame, 8 KiB of x's: complete (newline-terminated) but over cap.
    let mut big = "x".repeat(8 * 1024);
    big.push('\n');
    writer.write_all(big.as_bytes()).expect("write");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains(error_kind::FRAME_TOO_LARGE), "{line}");
    assert!(line.contains("\"id\":0"), "{line}");

    // The same connection still serves well-framed requests.
    writer
        .write_all(b"{\"id\":7,\"request\":\"Stats\"}\n")
        .expect("write");
    writer.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"id\":7"), "{line}");
    assert!(!line.contains(error_kind::FRAME_TOO_LARGE), "{line}");

    handle.shutdown_and_join();
}

/// Satellite requirement: a connection that keeps sending malformed
/// frames is dropped once its consecutive-error budget is spent, and the
/// drop is visible in `Stats`.
#[test]
fn repeated_malformed_frames_exhaust_the_error_budget() {
    let service = Arc::new(CbesService::self_calibrated(
        Arc::new(two_switch_demo()),
        ForecastKind::LastValue,
    ));
    let handle = Server::start(
        service,
        ServerConfig {
            workers: 1,
            max_consecutive_errors: 3,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    for i in 0..3 {
        writer.write_all(b"garbage\n").expect("write");
        writer.flush().expect("flush");
        line.clear();
        let n = reader.read_line(&mut line).expect("read");
        assert!(n > 0, "strike {i} must still be answered");
        assert!(line.contains(error_kind::BAD_REQUEST), "{line}");
    }
    // The third strike was the last: the server hangs up after replying.
    line.clear();
    let n = reader.read_line(&mut line).unwrap_or(0);
    assert_eq!(
        n, 0,
        "connection must be closed after the budget, got {line}"
    );

    let mut client = Client::connect(addr).expect("fresh connections still work");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.dropped_connections, 1);

    handle.shutdown_and_join();
}

/// Tentpole requirement: silent nodes age to `Suspect`/`Down` over the
/// wire, stats expose the health counts, and schedule requests route
/// around the down node.
#[test]
fn partial_sweeps_drive_health_over_the_wire() {
    let (handle, _service) = demo_server(2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .register_profile(ring_profile("ring", 2))
        .expect("register");

    let stats = client.stats().expect("stats");
    assert_eq!((stats.healthy, stats.suspect, stats.down), (8, 0, 0));

    // Node 3 goes silent; with the default policy (suspect after 3
    // stale sweeps, down after 8) nine partial sweeps kill it.
    let load = LoadState::idle(8);
    for _ in 0..9 {
        client.observe_partial(&load, &[3]).expect("sweep");
    }
    let stats = client.stats().expect("stats");
    assert_eq!((stats.healthy, stats.suspect, stats.down), (7, 0, 1));
    assert!(stats.health_transitions >= 2, "healthy->suspect->down");
    assert_eq!(stats.per_action["observe_partial"], 9);

    // The scheduler must route around the down node even when asked for it.
    let (_, mapping, _) = client
        .schedule("ring", &(0..8).collect::<Vec<u32>>(), 0, 11)
        .expect("schedule");
    assert!(
        !mapping.as_slice().contains(&NodeId(3)),
        "down node must not be assigned, got {mapping}"
    );

    // A mapping naming the down node is refused with a typed error.
    match client.compare("ring", &[m(&[3, 4])]) {
        Err(ClientError::Server { kind, message, .. }) => {
            assert_eq!(kind, error_kind::SERVICE);
            assert!(message.contains("n3"), "{message}");
        }
        other => panic!("expected a node-down service error, got {other:?}"),
    }

    // A full sweep revives the node.
    client.observe_load(&load).expect("full sweep");
    let stats = client.stats().expect("stats");
    assert_eq!((stats.healthy, stats.suspect, stats.down), (8, 0, 0));

    handle.shutdown_and_join();
}

/// Satellite requirement: the retrying client rides out transient
/// connect failures with backoff instead of surfacing the first refusal.
#[test]
fn retrying_client_rides_out_a_late_starting_server() {
    use cbes_server::{RetryPolicy, RetryingClient};

    // Reserve a port, then free it so the daemon can bind it *later*.
    // (The listener never accepted anything, so no TIME_WAIT lingers.)
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr")
    };

    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        let service = Arc::new(CbesService::self_calibrated(
            Arc::new(two_switch_demo()),
            ForecastKind::LastValue,
        ));
        service.registry().insert(ring_profile("ring", 2));
        Server::start(
            service,
            ServerConfig {
                addr: addr.to_string(),
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind reserved port")
    });

    // First attempts are refused (nothing listens yet); the retry loop
    // reconnects with backoff until the daemon appears.
    let mut client = RetryingClient::new(
        addr.to_string(),
        Duration::from_secs(2),
        RetryPolicy {
            max_attempts: 60,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            seed: 3,
        },
    );
    let (_, preds) = client.compare("ring", &[m(&[0, 1])]).expect("retry");
    assert_eq!(preds.len(), 1);
    let stats = client.stats().expect("stats over the pooled connection");
    assert!(stats.served >= 1);

    starter.join().expect("starter").shutdown_and_join();
}

#[test]
fn shutdown_drains_and_answers_every_request() {
    let (handle, _service) = demo_server(2);
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client
        .register_profile(ring_profile("ring", 2))
        .expect("register");

    // Issue a burst from several threads, then shut down; every request
    // issued before the drain must still get exactly one reply.
    let answered: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut ok = 0usize;
                    for _ in 0..25 {
                        match client.compare("ring", &[m(&[0, 1])]) {
                            Ok(_) => ok += 1,
                            Err(e) => panic!("pre-shutdown request failed: {e}"),
                        }
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(answered, 100);

    client.shutdown().expect("shutdown ack");
    let (served, _errors) = handle.join();
    assert!(
        served >= 102,
        "all {answered} compares + register + shutdown"
    );

    // Connections after the drain are refused or closed immediately.
    std::thread::sleep(Duration::from_millis(50));
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let n = reader.read_line(&mut line).unwrap_or(0);
            assert_eq!(n, 0, "post-shutdown connection must be closed, got {line}");
        }
    }
}

#[test]
fn artifact_lifecycle_over_the_wire_survives_a_restart() {
    let state_dir =
        std::env::temp_dir().join(format!("cbes-daemon-artifacts-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let start = |dir: std::path::PathBuf| {
        let service = Arc::new(CbesService::self_calibrated(
            Arc::new(two_switch_demo()),
            ForecastKind::LastValue,
        ));
        Server::start(
            service,
            ServerConfig {
                workers: 1,
                state_dir: Some(dir),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    };

    let handle = start(state_dir.clone());
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Nothing soaking yet: apply/accept/rollback are lifecycle errors.
    for err in [client.apply(), client.accept(), client.rollback("nothing")] {
        match err {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, error_kind::BAD_REQUEST),
            other => panic!("expected lifecycle error, got {other:?}"),
        }
    }

    // Stage → apply (one epoch bump) → rollback (one more).
    let limits = r#"{"max_rps": 50.0, "shed_retry_after_ms": 5}"#;
    let (v1, state, epoch0) = client.stage("serving_limits", limits).expect("stage");
    assert_eq!((v1, state.as_str()), (1, "staged"));
    let (_, state, epoch1) = client.apply().expect("apply");
    assert_eq!(state, "soaking");
    assert_eq!(epoch1, epoch0 + 1, "apply is exactly one epoch bump");
    let status = client.artifact_status().expect("status");
    assert_eq!(status.instances.len(), 1);
    assert!(status.instances[0].reconfigurable);
    assert_eq!(
        status.instances[0]
            .status
            .soaking
            .as_ref()
            .map(|s| s.version),
        Some(1)
    );
    let (_, state, epoch2) = client.rollback("operator says no").expect("rollback");
    assert_eq!(state, "rolled_back");
    assert_eq!(epoch2, epoch1 + 1, "rollback is exactly one epoch bump");

    // Stage → apply → accept, then restart on the same state dir: the
    // journal replay must recover v2 as the active, serving artifact.
    let (v2, _, _) = client.stage("serving_limits", limits).expect("stage v2");
    assert_eq!(v2, 2);
    client.apply().expect("apply v2");
    let (_, state, _) = client.accept().expect("accept v2");
    assert_eq!(state, "active");
    client.shutdown().expect("shutdown");
    handle.join();

    let handle = start(state_dir.clone());
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    let status = client.artifact_status().expect("status after restart");
    assert_eq!(
        status.instances[0]
            .status
            .active
            .as_ref()
            .map(|a| a.version),
        Some(2)
    );
    assert!(status.instances[0].status.soaking.is_none());
    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn artifact_verbs_without_a_state_dir_reply_bad_request() {
    let (handle, _service) = demo_server(1);
    let mut client = Client::connect(handle.addr()).expect("connect");
    match client.stage("serving_limits", "{}") {
        Err(ClientError::Server { kind, message, .. }) => {
            assert_eq!(kind, error_kind::BAD_REQUEST);
            assert!(message.contains("--state-dir"), "{message}");
        }
        other => panic!("expected bad request, got {other:?}"),
    }
    // Status still answers, flagged as not reconfigurable, so a mixed
    // tier merge reports every instance.
    let status = client.artifact_status().expect("status");
    assert_eq!(status.instances.len(), 1);
    assert!(!status.instances[0].reconfigurable);
}
