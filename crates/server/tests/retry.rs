//! Wire-level retry behaviour of [`cbes_server::RetryingClient`]:
//! jitter envelope, `retry_after_ms` honouring, and give-up accounting
//! against a scripted fake daemon.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cbes_server::protocol::{
    encode, error_kind, RequestEnvelope, Response, ResponseEnvelope, StatsReport,
};
use cbes_server::{RetryPolicy, RetryingClient};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One scripted reply per incoming request; the last entry repeats once
/// the script runs out.
#[derive(Clone)]
enum Reply {
    Shed(u64),
    Service,
    Ok,
}

fn canned_stats() -> StatsReport {
    StatsReport {
        served: 1,
        errors: 0,
        overloaded: 0,
        timeouts: 0,
        connections: 1,
        queue_depth: 0,
        workers: 1,
        epoch: 0,
        profiles: 0,
        observations: 0,
        healthy: 1,
        suspect: 0,
        down: 0,
        health_transitions: 0,
        dropped_connections: 0,
        per_action: Default::default(),
        uptime_s: 0.0,
    }
}

/// A fake daemon answering per `script`; returns `(addr, request_count)`.
fn fake_daemon(script: Vec<Reply>) -> (String, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind succeeds");
    let addr = listener
        .local_addr()
        .expect("bound socket has an address")
        .to_string();
    let seen = Arc::new(AtomicU64::new(0));
    let count = seen.clone();
    std::thread::spawn(move || {
        // One connection at a time: the retrying client reconnects only
        // after transport errors, and shed replies keep the stream.
        for stream in listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(_) => return,
            };
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let mut writer = stream;
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                let env: RequestEnvelope = match serde_json::from_str(line.trim()) {
                    Ok(e) => e,
                    Err(_) => break,
                };
                let n = count.fetch_add(1, Ordering::AcqRel) as usize;
                let reply = script.get(n).or_else(|| script.last()).cloned();
                let response = match reply {
                    Some(Reply::Shed(hint)) => {
                        Response::shed(error_kind::OVERLOADED, "scripted shed", hint)
                    }
                    Some(Reply::Service) => {
                        Response::error(error_kind::SERVICE, "scripted rejection")
                    }
                    Some(Reply::Ok) | None => Response::Stats {
                        stats: canned_stats(),
                    },
                };
                let mut out = encode(&ResponseEnvelope {
                    id: env.id,
                    response,
                });
                out.push('\n');
                if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
                    break;
                }
            }
        }
    });
    (addr, seen)
}

fn policy(max_attempts: u32, base_ms: u64, seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_delay: Duration::from_millis(base_ms),
        max_delay: Duration::from_millis(500),
        seed,
    }
}

#[test]
fn jitter_stays_inside_the_documented_envelope_for_many_seeds() {
    // The contract: backoff(retry) ∈ [0.5, 1.5) × min(base · 2^(retry-1),
    // max_delay), for every seed.
    let p = RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(100),
        seed: 0,
    };
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        for retry in 1..8u32 {
            let capped_ms = (10u64 << (retry - 1)).min(100);
            let d = p.backoff(retry, &mut rng);
            assert!(
                d >= Duration::from_micros(capped_ms * 500),
                "seed {seed} retry {retry}: {d:?} under the envelope"
            );
            assert!(
                d < Duration::from_micros(capped_ms * 1500),
                "seed {seed} retry {retry}: {d:?} over the envelope"
            );
        }
    }
}

#[test]
fn jitter_is_deterministic_per_seed_and_varies_across_seeds() {
    let p = policy(4, 10, 0);
    let series = |seed: u64| -> Vec<Duration> {
        let mut rng = StdRng::seed_from_u64(seed);
        (1..5u32).map(|r| p.backoff(r, &mut rng)).collect()
    };
    assert_eq!(series(7), series(7), "a seed replays its delays");
    let distinct = (0..20u64)
        .map(series)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert!(distinct > 15, "only {distinct}/20 distinct delay series");
}

#[test]
fn retry_after_hint_stretches_the_backoff() {
    // Two sheds with a 120 ms hint, then success. The policy's own
    // backoff is ~1 ms, so the observed latency is dominated by the
    // honoured hints: ≥ 240 ms across the two waits.
    let (addr, seen) = fake_daemon(vec![Reply::Shed(120), Reply::Shed(120), Reply::Ok]);
    let mut client = RetryingClient::new(addr, Duration::from_secs(2), policy(5, 1, 42));
    let started = Instant::now();
    client.stats().expect("third attempt succeeds");
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(240),
        "hints not honoured: replied in {elapsed:?}"
    );
    assert_eq!(seen.load(Ordering::Acquire), 3, "two sheds + one success");
}

#[test]
fn shed_replies_are_retried_until_the_budget_runs_out() {
    let (addr, seen) = fake_daemon(vec![Reply::Shed(1)]);
    let mut client = RetryingClient::new(addr, Duration::from_secs(2), policy(3, 1, 9));
    let err = client
        .stats()
        .expect_err("a permanent shed exhausts retries");
    assert!(err.is_shed(), "the last shed surfaces: {err}");
    assert_eq!(
        seen.load(Ordering::Acquire),
        3,
        "max_attempts bounds the tries"
    );
}

#[test]
fn terminal_service_errors_are_not_retried() {
    let (addr, seen) = fake_daemon(vec![Reply::Service]);
    let mut client = RetryingClient::new(addr, Duration::from_secs(2), policy(5, 1, 3));
    let err = client.stats().expect_err("a rejection is terminal");
    assert!(!err.is_shed(), "{err}");
    assert_eq!(
        seen.load(Ordering::Acquire),
        1,
        "terminal errors must not be replayed"
    );
}
