//! Event-loop integration tests: frame reassembly under adversarial
//! write patterns, pipelined id matching, the poll(2) fallback backend,
//! and the `Batch` determinism contract — one snapshot epoch, replies
//! bit-identical to the equivalent sequence of single evaluations.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use cbes_cluster::presets::two_switch_demo;
use cbes_cluster::NodeId;
use cbes_core::mapping::Mapping;
use cbes_core::monitor::ForecastKind;
use cbes_core::CbesService;
use cbes_server::{Client, Server, ServerConfig};
use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};

fn ring_profile(name: &str, procs: usize) -> AppProfile {
    let mk = |rank: usize| ProcessProfile {
        rank,
        x: 5.0,
        o: 0.2,
        b: 0.5,
        sends: vec![MessageGroup {
            peer: (rank + 1) % procs,
            bytes: 8192,
            count: 50,
        }],
        recvs: vec![MessageGroup {
            peer: (rank + procs - 1) % procs,
            bytes: 8192,
            count: 50,
        }],
        profile_speed: 1.0,
        lambda: 1.0,
    };
    AppProfile {
        name: name.to_string(),
        procs: (0..procs).map(mk).collect(),
        arch_ratios: BTreeMap::new(),
    }
}

fn demo_server(config: ServerConfig) -> cbes_server::ServerHandle {
    let service = Arc::new(CbesService::self_calibrated(
        Arc::new(two_switch_demo()),
        ForecastKind::LastValue,
    ));
    Server::start(service, config).expect("bind loopback")
}

fn m(ids: &[u32]) -> Mapping {
    Mapping::new(ids.iter().map(|&i| NodeId(i)).collect())
}

/// Candidate pool for batch tests: rotations and reversals over the
/// 8-node demo cluster, all distinct.
fn candidates(n: usize) -> Vec<Mapping> {
    (0..n)
        .map(|i| {
            let mut ids: Vec<u32> = (0..4).map(|r| ((r + i) % 8) as u32).collect();
            if i % 2 == 1 {
                ids.reverse();
            }
            m(&ids)
        })
        .collect()
}

#[test]
fn batch_equals_sequential_evaluations_at_the_same_epoch() {
    let handle = demo_server(ServerConfig::default());
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    client
        .register_profile(ring_profile("ring", 4))
        .expect("register");

    let pool = candidates(64);
    let (batch_epoch, batch_preds) = client.batch("ring", &pool).expect("batch");
    assert_eq!(batch_preds.len(), pool.len());

    // The same candidates one at a time. No load observation lands in
    // between, so every reply must carry the same epoch and every
    // prediction must be bit-identical to its batch counterpart.
    for (i, cand) in pool.iter().enumerate() {
        let (epoch, preds) = client
            .compare("ring", std::slice::from_ref(cand))
            .expect("compare");
        assert_eq!(epoch, batch_epoch, "candidate {i} saw a different epoch");
        assert_eq!(preds.len(), 1);
        let (b, s) = (&batch_preds[i], &preds[0]);
        assert_eq!(
            b.time.to_bits(),
            s.time.to_bits(),
            "candidate {i}: batch {} vs sequential {}",
            b.time,
            s.time
        );
        assert_eq!(b.bottleneck, s.bottleneck, "candidate {i}");
        assert_eq!(b.per_proc.len(), s.per_proc.len(), "candidate {i}");
        for (pb, ps) in b.per_proc.iter().zip(&s.per_proc) {
            assert_eq!(pb.r.to_bits(), ps.r.to_bits(), "candidate {i}");
            assert_eq!(pb.c.to_bits(), ps.c.to_bits(), "candidate {i}");
        }
    }
    client.shutdown().expect("shutdown");
    handle.join();
}

/// Raw NDJSON lines for one stats request with the given id.
fn stats_line(id: u64) -> String {
    format!("{{\"id\":{id},\"request\":\"Stats\"}}\n")
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(line.ends_with('\n'), "truncated reply: {line:?}");
    line
}

#[test]
fn split_writes_reassemble_into_whole_frames() {
    let handle = demo_server(ServerConfig::default());
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    // Dribble one frame a byte at a time: the decoder must buffer the
    // partial line and only dispatch on the newline.
    for byte in stats_line(1).as_bytes() {
        writer.write_all(&[*byte]).expect("write byte");
        writer.flush().expect("flush");
    }
    let reply = read_reply(&mut reader);
    assert!(reply.contains("\"id\":1"), "{reply}");
    assert!(reply.contains("Stats"), "{reply}");

    // A write that ends mid-frame: frame 2 complete plus the head of
    // frame 3, then the tail arrives separately.
    let two = format!("{}{}", stats_line(2), stats_line(3));
    let split_at = two.len() - 7;
    writer.write_all(&two.as_bytes()[..split_at]).expect("head");
    writer.flush().expect("flush");
    let reply = read_reply(&mut reader);
    assert!(reply.contains("\"id\":2"), "{reply}");
    writer.write_all(&two.as_bytes()[split_at..]).expect("tail");
    writer.flush().expect("flush");
    let reply = read_reply(&mut reader);
    assert!(reply.contains("\"id\":3"), "{reply}");

    drop(writer);
    drop(reader);
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn interleaved_pipelining_answers_every_id_in_order() {
    let handle = demo_server(ServerConfig::default());
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    // 32 requests in one write; replies on a single connection come
    // back in request order, ids intact.
    let mut blob = String::new();
    for id in 100..132u64 {
        blob.push_str(&stats_line(id));
    }
    writer.write_all(blob.as_bytes()).expect("write blob");
    writer.flush().expect("flush");
    for id in 100..132u64 {
        let reply = read_reply(&mut reader);
        assert!(
            reply.contains(&format!("\"id\":{id}")),
            "want {id}: {reply}"
        );
    }

    drop(writer);
    drop(reader);
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}

/// Deterministic xorshift64* generator — the fuzz corpus must be
/// reproducible run to run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn malformed_frame_fuzz_never_wedges_the_decoder() {
    // Small frame cap so "giant frame" rounds are cheap to construct;
    // generous strike budget so garbage lines don't drop the
    // connection before the valid probe goes through.
    let handle = demo_server(ServerConfig {
        max_line_bytes: 4 * 1024,
        max_consecutive_errors: 64,
        ..ServerConfig::default()
    });
    let mut rng = Rng(0x5EED_CAFE);
    // Byte classes the generator draws from: JSON-ish punctuation and
    // text, plus raw control bytes.
    const ALPHABET: &[u8] = br#"{}[]":,abc0123456789 \"#;

    for round in 0..24 {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;

        // A burst of garbage frames: random bytes, truncated JSON
        // prefixes, or an oversized line, each newline-terminated.
        let garbage_frames = 1 + rng.below(4);
        let mut expect_errors = 0usize;
        for _ in 0..garbage_frames {
            let mut frame: Vec<u8> = match rng.below(3) {
                0 => {
                    let len = 1 + rng.below(40);
                    (0..len)
                        .map(|_| ALPHABET[rng.below(ALPHABET.len())])
                        .collect()
                }
                1 => {
                    let valid = stats_line(9);
                    let cut = 1 + rng.below(valid.len() - 2);
                    valid.as_bytes()[..cut].to_vec()
                }
                _ => vec![b'x'; 5000], // over the 4 KiB line cap
            };
            frame.retain(|&b| b != b'\n');
            frame.push(b'\n');
            writer.write_all(&frame).expect("garbage");
            expect_errors += 1;
        }
        // Split the burst's flush point randomly relative to the valid
        // probe to exercise reassembly across chunk boundaries.
        if rng.below(2) == 0 {
            writer.flush().expect("flush");
        }
        let probe_id = 1000 + round as u64;
        writer
            .write_all(stats_line(probe_id).as_bytes())
            .expect("probe");
        writer.flush().expect("flush");

        // Every garbage frame earns an error reply; then the probe is
        // answered normally — the decoder resynchronised.
        for _ in 0..expect_errors {
            let reply = read_reply(&mut reader);
            assert!(reply.contains("\"Error\""), "{reply}");
        }
        let reply = read_reply(&mut reader);
        assert!(
            reply.contains(&format!("\"id\":{probe_id}")) && reply.contains("Stats"),
            "round {round}: {reply}"
        );
    }

    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn poll_fallback_backend_serves_the_full_protocol() {
    // CBES_FORCE_POLL is read once at server start; other tests in
    // this binary may race the flag, but both backends must pass every
    // test anyway, so a stray pick is harmless.
    std::env::set_var("CBES_FORCE_POLL", "1");
    let handle = demo_server(ServerConfig::default());
    std::env::remove_var("CBES_FORCE_POLL");

    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    client
        .register_profile(ring_profile("ring", 4))
        .expect("register");
    let pool = candidates(8);
    let (epoch, preds) = client.batch("ring", &pool).expect("batch");
    assert_eq!(epoch, 0);
    assert_eq!(preds.len(), pool.len());
    let stats = client.stats().expect("stats");
    assert!(stats.served >= 2, "{stats:?}");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn batch_is_a_single_round_trip_with_one_epoch_stamp() {
    // The wire-level shape: one request line in, one reply line out,
    // carrying every prediction and exactly one epoch field.
    let handle = demo_server(ServerConfig::default());
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    client
        .register_profile(ring_profile("ring", 4))
        .expect("register");
    drop(client);

    let pool = candidates(16);
    let mappings_json: Vec<String> = pool
        .iter()
        .map(|mp| {
            let ids: Vec<String> = mp.as_slice().iter().map(|n| n.0.to_string()).collect();
            format!("{{\"assign\":[{}]}}", ids.join(","))
        })
        .collect();
    let line = format!(
        "{{\"id\":7,\"request\":{{\"Batch\":{{\"app\":\"ring\",\"mappings\":[{}]}}}}}}\n",
        mappings_json.join(",")
    );

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer.write_all(line.as_bytes()).expect("write");
    writer.flush().expect("flush");
    let reply = read_reply(&mut reader);
    assert!(reply.contains("\"id\":7"), "{reply}");
    assert_eq!(
        reply.matches("\"epoch\"").count(),
        1,
        "exactly one epoch stamp: {reply}"
    );
    assert_eq!(
        reply.matches("\"time\"").count(),
        pool.len(),
        "one prediction per candidate: {reply}"
    );

    drop(writer);
    drop(reader);
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn pipelined_evaluations_stay_ordered_under_load() {
    // Mixed pipelining: batches and stats interleaved on one
    // connection; replies must come back in submission order even when
    // inline execution and worker handoff alternate.
    let handle = demo_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    client
        .register_profile(ring_profile("ring", 4))
        .expect("register");
    drop(client);

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    let mut blob = String::new();
    let mut want: Vec<(u64, &str)> = Vec::new();
    for i in 0..20u64 {
        let id = 500 + i;
        if i % 3 == 0 {
            blob.push_str(&stats_line(id));
            want.push((id, "Stats"));
        } else {
            blob.push_str(&format!(
                "{{\"id\":{id},\"request\":{{\"Compare\":{{\"app\":\"ring\",\
                 \"mappings\":[{{\"assign\":[0,1,2,3]}}]}}}}}}\n"
            ));
            want.push((id, "Predictions"));
        }
    }
    writer.write_all(blob.as_bytes()).expect("write");
    writer.flush().expect("flush");
    for (id, tag) in want {
        let reply = read_reply(&mut reader);
        assert!(
            reply.contains(&format!("\"id\":{id}")) && reply.contains(tag),
            "want id {id} tag {tag}: {reply}"
        );
    }

    drop(writer);
    drop(reader);
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}
