//! The CBES wire protocol: one JSON object per line in each direction.
//!
//! A client sends a [`RequestEnvelope`] (`{"id": n, "request": ...}`) and
//! receives exactly one [`ResponseEnvelope`] whose `id` echoes the
//! request's, so clients may correlate replies however they like. Errors
//! — including overload rejections and timeouts — are ordinary
//! [`Response::Error`] replies with a machine-readable `kind` from
//! [`error_kind`].

use cbes_cluster::load::LoadState;
use cbes_cluster::NodeId;
use cbes_core::eval::Prediction;
use cbes_core::mapping::Mapping;
use cbes_core::ServiceError;
use cbes_obs::MetricsSnapshot;
use cbes_trace::AppProfile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Machine-readable `kind` values carried by [`Response::Error`].
pub mod error_kind {
    /// The request line was not a valid request object.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The admission queue was full; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The request was admitted but no worker finished it in time.
    pub const TIMEOUT: &str = "timeout";
    /// The service rejected the request (unknown app, bad mapping, ...).
    pub const SERVICE: &str = "service";
    /// The scheduler rejected the request (pool too small, ...).
    pub const SCHED: &str = "sched";
    /// The server is draining and no longer admits requests.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The request line exceeded the server's length cap.
    pub const FRAME_TOO_LARGE: &str = "frame_too_large";
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Insert (or replace) an application profile in the registry.
    RegisterProfile {
        /// The profile to register, keyed by its `name`.
        profile: AppProfile,
    },
    /// Predict execution times for candidate mappings of `app`.
    Compare {
        /// Registered application name.
        app: String,
        /// Candidate mappings, arity matching the profile.
        mappings: Vec<Mapping>,
    },
    /// Like `Compare`, but reply only with the fastest candidate.
    BestOf {
        /// Registered application name.
        app: String,
        /// Candidate mappings.
        mappings: Vec<Mapping>,
    },
    /// Run the CS simulated-annealing scheduler for `app` over a pool.
    Schedule {
        /// Registered application name.
        app: String,
        /// Candidate node ids.
        pool: Vec<u32>,
        /// Annealing iterations (0 picks the fast default).
        iters: u32,
        /// Scheduler seed, for reproducible placements.
        seed: u64,
    },
    /// Feed one monitoring sweep; bumps the snapshot epoch.
    ObserveLoad {
        /// Measured per-node load; must cover every node.
        load: LoadState,
    },
    /// Feed one *partial* monitoring sweep: nodes listed in `silent`
    /// delivered no measurement this period and age toward `Suspect` /
    /// `Down` under the server's health policy.
    ObservePartial {
        /// Measured per-node load; must cover every node (silent nodes'
        /// entries are ignored).
        load: LoadState,
        /// Node ids that did **not** report this sweep.
        silent: Vec<u32>,
    },
    /// Read the server's counters.
    Stats,
    /// Read the full metrics snapshot: counters, gauges, and latency
    /// histograms from the server merged with the process-wide registry.
    Metrics,
    /// Stop admitting requests, drain in-flight work, exit.
    Shutdown,
    /// Ask the routing tier which instance owns a `(cluster, app)` key.
    /// A standalone daemon answers with itself as the only instance.
    Route {
        /// Cluster name half of the routing key.
        cluster: String,
        /// Application name half of the routing key.
        app: String,
    },
    /// Apply a leader-published monitoring sweep at a fixed epoch.
    /// Followers adopt `epoch` only if it is newer than their own
    /// snapshot, so replays and reordering are harmless.
    Replicate {
        /// The epoch the leader published this sweep under.
        epoch: u64,
        /// Measured per-node load; must cover every node.
        load: LoadState,
        /// Node ids that did **not** report this sweep (as in
        /// `ObservePartial`; empty for a full sweep).
        silent: Vec<u32>,
    },
    /// Read the serving tier's membership table. A standalone daemon
    /// reports a single-instance view of itself.
    Membership,
    /// Evaluate many candidate mappings for `app` in one call, all
    /// against a *single* epoch-stamped snapshot. Semantically equal to
    /// one `Compare` per candidate issued at the same epoch, but the
    /// server amortises snapshot access, CPU-share census, and
    /// message-group lookups across the whole batch (struct-of-arrays
    /// evaluation in `cbes-core`), so per-candidate cost drops with
    /// batch size. The reply is an ordinary [`Response::Predictions`]
    /// whose `epoch` stamps every prediction in it.
    Batch {
        /// Registered application name.
        app: String,
        /// Candidate mappings, arity matching the profile.
        mappings: Vec<Mapping>,
    },
    /// Read every buffered span belonging to one trace. A routed
    /// request is answered tier-wide: the router concatenates each
    /// instance's matching spans with its own forwarding spans, so one
    /// traced `Batch` yields a single connected trace in the reply.
    Trace {
        /// The trace id minted at the requesting client.
        trace_id: u64,
    },
    /// Dump the anomaly flight recorder (recent events + span ring)
    /// to a JSONL file on the serving instance, as if a trigger had
    /// fired. The router broadcasts the dump to every usable instance.
    DumpFlight,
    /// Stage a configuration artifact in the instance's artifact store
    /// (validated, versioned, durable) without activating it. The
    /// router broadcasts lifecycle verbs to every usable instance so
    /// one call reconfigures the whole tier.
    Stage {
        /// Artifact kind: `"latency_model"`, `"cluster_preset"`, or
        /// `"serving_limits"` (see `cbes_reconfig::ArtifactKind`).
        kind: String,
        /// The artifact payload (JSON text of the kind's schema).
        payload: String,
    },
    /// Activate the staged artifact under a soak: one atomic epoch
    /// bump publishes it to new requests while in-flight requests
    /// finish on the old epoch. The soak monitor watches windowed
    /// telemetry and rolls back automatically on regression.
    Apply,
    /// Promote the soaking artifact to active, ending the soak.
    Accept,
    /// Abandon the soaking artifact and reinstate the previous active
    /// configuration (or the boot configuration), with one more epoch
    /// bump.
    Rollback {
        /// Operator-supplied reason, recorded in the journal.
        reason: String,
    },
    /// Read the artifact lifecycle state. Through the router this is
    /// the tier-wide merge: every instance's staged/soaking/active
    /// view, so divergence after a partial apply is visible.
    ArtifactStatus,
}

/// Canonical action names in declaration order; index `i` names the
/// variant with [`Request::action_index`] `i`. Keys of
/// [`StatsReport::per_action`] are drawn from this set.
pub const ACTIONS: [&str; 20] = [
    "register_profile",
    "compare",
    "best_of",
    "schedule",
    "observe_load",
    "observe_partial",
    "stats",
    "metrics",
    "shutdown",
    "route",
    "replicate",
    "membership",
    "batch",
    "trace",
    "dump_flight",
    "stage",
    "apply",
    "accept",
    "rollback",
    "artifact_status",
];

impl Request {
    /// This request's position in [`ACTIONS`].
    pub fn action_index(&self) -> usize {
        match self {
            Request::RegisterProfile { .. } => 0,
            Request::Compare { .. } => 1,
            Request::BestOf { .. } => 2,
            Request::Schedule { .. } => 3,
            Request::ObserveLoad { .. } => 4,
            Request::ObservePartial { .. } => 5,
            Request::Stats => 6,
            Request::Metrics => 7,
            Request::Shutdown => 8,
            Request::Route { .. } => 9,
            Request::Replicate { .. } => 10,
            Request::Membership => 11,
            Request::Batch { .. } => 12,
            Request::Trace { .. } => 13,
            Request::DumpFlight => 14,
            Request::Stage { .. } => 15,
            Request::Apply => 16,
            Request::Accept => 17,
            Request::Rollback { .. } => 18,
            Request::ArtifactStatus => 19,
        }
    }

    /// The canonical action name (span name, per-action counter key).
    pub fn action(&self) -> &'static str {
        // cbes-analyze: allow(panic_path, action_index is the variant's position in ACTIONS by construction; the drift check pins both tables)
        ACTIONS[self.action_index()]
    }

    /// Whether this request runs the evaluation engine (eq. 4–8 or the
    /// scheduler). Only these actions are subject to the per-instance
    /// evaluation rate cap; control-plane traffic (heartbeats,
    /// membership, replication, shutdown) is always admitted.
    pub fn is_eval(&self) -> bool {
        matches!(
            self,
            Request::Compare { .. }
                | Request::BestOf { .. }
                | Request::Schedule { .. }
                | Request::Batch { .. }
        )
    }
}

/// The 64-bit FNV-1a hash of a `(cluster, app)` routing key. This is
/// the tier's placement function: the routing ring maps it to a
/// primary instance, and every router and client must agree on it,
/// so it lives next to the wire protocol rather than in `cbes-router`.
pub fn route_key_hash(cluster: &str, app: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for byte in cluster.as_bytes().iter().chain(b"/").chain(app.as_bytes()) {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One server reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Profile accepted.
    Registered {
        /// Application name it was stored under.
        app: String,
        /// Number of processes in the profile.
        procs: usize,
    },
    /// Predictions for a `Compare`, in request order.
    Predictions {
        /// Snapshot epoch the predictions were computed against.
        epoch: u64,
        /// One prediction per requested mapping.
        predictions: Vec<Prediction>,
    },
    /// The fastest candidate for a `BestOf`.
    Best {
        /// Snapshot epoch.
        epoch: u64,
        /// Index of the winning mapping in the request.
        index: usize,
        /// Its prediction.
        prediction: Prediction,
    },
    /// Scheduler outcome for a `Schedule`.
    Scheduled {
        /// Snapshot epoch the search ran against.
        epoch: u64,
        /// The selected mapping.
        mapping: Mapping,
        /// Predicted execution time of that mapping (seconds).
        predicted_time: f64,
        /// Mapping evaluations the search performed.
        evaluations: u64,
    },
    /// Load sweep accepted.
    LoadObserved {
        /// The new snapshot epoch.
        epoch: u64,
    },
    /// Server counters.
    Stats {
        /// The counters at reply time.
        stats: StatsReport,
    },
    /// Full metrics snapshot for a `Metrics` request.
    Metrics {
        /// Server-instance instruments merged with the process-wide
        /// registry (core and netmodel record there).
        metrics: MetricsSnapshot,
    },
    /// Shutdown acknowledged; the server drains and exits.
    ShuttingDown,
    /// Placement answer for a `Route` request.
    Routed {
        /// `route_key_hash(cluster, app)` of the requested key.
        hash: u64,
        /// The instance that owns the key.
        primary: InstanceInfo,
        /// Failover candidates, in preference order.
        replicas: Vec<InstanceInfo>,
    },
    /// Outcome of a `Replicate` request.
    Replicated {
        /// The receiver's snapshot epoch after the request.
        epoch: u64,
        /// Whether the sweep was applied (`false`: the receiver was
        /// already at or past the leader's epoch, a harmless replay).
        applied: bool,
    },
    /// Membership table for a `Membership` request.
    Membership {
        /// The tier (or single-instance) membership view.
        membership: MembershipReport,
    },
    /// Spans belonging to one trace, for a `Trace` request. Through
    /// the router this is the tier-wide union: every instance's
    /// matching spans plus the router's own forwarding spans.
    Traces {
        /// The queried trace id, echoed.
        trace_id: u64,
        /// Every buffered span stamped with that trace, unordered
        /// (consumers sort by `start_us`).
        spans: Vec<SpanSnapshot>,
    },
    /// Receipt for a `DumpFlight` request: where the dump landed.
    FlightDumped {
        /// Path of the JSONL dump file on the answering instance.
        path: String,
        /// Flight-recorder events written into the dump.
        events: u64,
    },
    /// Receipt for an artifact lifecycle verb (`Stage`, `Apply`,
    /// `Accept`, `Rollback`).
    ArtifactAck {
        /// The artifact version the verb acted on.
        version: u64,
        /// Its lifecycle state after the verb: `"staged"`,
        /// `"soaking"`, `"active"`, or `"rolled_back"`.
        state: String,
        /// The snapshot epoch after the verb (bumped exactly once by
        /// `Apply` and `Rollback`; unchanged by `Stage` and `Accept`).
        epoch: u64,
    },
    /// Lifecycle state for an `ArtifactStatus` request. Through the
    /// router this carries one entry per usable instance.
    ArtifactStatus {
        /// Per-instance lifecycle views, sorted by address.
        status: cbes_reconfig::StatusReport,
    },
    /// The request failed; `kind` is one of [`error_kind`].
    Error {
        /// Machine-readable error class.
        kind: String,
        /// Human-readable detail.
        message: String,
        /// Back-off hint for load shedding: clients honouring retries
        /// should wait at least this long before the next attempt. `0`
        /// means no hint (the error is not load-related).
        retry_after_ms: u64,
    },
}

impl Response {
    /// The standard reply for a [`ServiceError`].
    pub fn service_error(err: &ServiceError) -> Response {
        Response::Error {
            kind: error_kind::SERVICE.to_string(),
            message: err.to_string(),
            retry_after_ms: 0,
        }
    }

    /// An error reply with the given kind.
    pub fn error(kind: &str, message: impl Into<String>) -> Response {
        Response::Error {
            kind: kind.to_string(),
            message: message.into(),
            retry_after_ms: 0,
        }
    }

    /// A load-shedding error reply carrying a back-off hint.
    pub fn shed(kind: &str, message: impl Into<String>, retry_after_ms: u64) -> Response {
        Response::Error {
            kind: kind.to_string(),
            message: message.into(),
            retry_after_ms,
        }
    }
}

/// One exported tracing span, the unit of [`Response::Traces`]. The
/// owned-`String` twin of `cbes_obs::SpanRecord` (whose name is a
/// `&'static str` and cannot cross the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Span name (an action name or a `cbes_obs::names` constant).
    pub name: String,
    /// Owning trace id; 0 marks an untraced span.
    pub trace: u64,
    /// Span id, unique within the recording process.
    pub id: u64,
    /// Parent span id; 0 marks a root span.
    pub parent: u64,
    /// Microseconds from the recording process's epoch to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

impl From<cbes_obs::SpanRecord> for SpanSnapshot {
    fn from(r: cbes_obs::SpanRecord) -> Self {
        SpanSnapshot {
            name: r.name.to_string(),
            trace: r.trace,
            id: r.id,
            parent: r.parent,
            start_us: r.start_us,
            dur_us: r.dur_us,
        }
    }
}

/// One serving instance as seen by the routing tier's membership
/// table (or a daemon's single-instance self view).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceInfo {
    /// Position in the tier's static seed list (and on the hash ring).
    pub index: usize,
    /// The instance's listening address.
    pub addr: String,
    /// Health label: `"healthy"`, `"suspect"`, or `"down"`.
    pub health: String,
    /// The instance's snapshot epoch at the last successful probe.
    pub epoch: u64,
    /// Whether this instance is the current replication leader.
    pub leader: bool,
    /// Requests dispatched to this instance as hash primary.
    pub routed: u64,
    /// Fan-out sends relayed to this instance (broadcast/merge/leader).
    pub forwarded: u64,
    /// Requests this instance served as a failover target.
    pub failed_over: u64,
}

/// The routing tier's view of its instances, for
/// [`Response::Membership`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipReport {
    /// Cluster name the tier serves.
    pub cluster: String,
    /// Every seeded instance, in seed order.
    pub instances: Vec<InstanceInfo>,
    /// Index of the current replication leader, if any instance is
    /// usable.
    pub leader: Option<usize>,
    /// The highest snapshot epoch observed across instances.
    pub max_epoch: u64,
    /// Leader epoch minus the slowest live follower's epoch.
    pub replication_lag: u64,
    /// Heartbeat probe sweeps completed.
    pub heartbeats: u64,
    /// Cumulative instance health-state transitions.
    pub transitions: u64,
}

/// Server counters, as reported by [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Requests answered (all kinds, including error replies from
    /// workers).
    pub served: u64,
    /// Requests answered with an error reply.
    pub errors: u64,
    /// Requests rejected at admission because the queue was full.
    pub overloaded: u64,
    /// Admitted requests whose reply timed out.
    pub timeouts: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Jobs waiting in the admission queue right now.
    pub queue_depth: usize,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Current snapshot epoch.
    pub epoch: u64,
    /// Profiles currently registered.
    pub profiles: usize,
    /// Monitoring sweeps observed.
    pub observations: u64,
    /// Nodes currently classified `Healthy`.
    pub healthy: usize,
    /// Nodes currently classified `Suspect` (stale reports).
    pub suspect: usize,
    /// Nodes currently classified `Down` (unmappable).
    pub down: usize,
    /// Cumulative node health-state transitions since start.
    pub health_transitions: u64,
    /// Connections dropped for exhausting their malformed-frame budget.
    pub dropped_connections: u64,
    /// Requests served per action name (keys from [`ACTIONS`]).
    pub per_action: BTreeMap<String, u64>,
    /// Seconds since the server started.
    pub uptime_s: f64,
}

/// A request with its correlation id and optional trace context.
///
/// The trace fields are carried as a pair: an untraced request (the
/// overwhelmingly common case) encodes exactly as before — `{"id": n,
/// "request": ...}` with no trace keys on the wire — while a traced
/// one appends `"trace_id"` and `"parent_span"` after the request.
/// Absent fields deserialise to 0, so old and new peers interoperate
/// in both directions. `Serialize`/`Deserialize` are hand-written
/// because the vendored derive has no optional-field support.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Client-chosen id, echoed verbatim in the reply.
    pub id: u64,
    /// The request.
    pub request: Request,
    /// Trace id minted at the originating client; 0 = untraced.
    pub trace_id: u64,
    /// The sender's span id, adopted as the parent of the receiver's
    /// request span; 0 = the trace root.
    pub parent_span: u64,
}

impl RequestEnvelope {
    /// An untraced envelope (the common case).
    pub fn new(id: u64, request: Request) -> Self {
        RequestEnvelope {
            id,
            request,
            trace_id: 0,
            parent_span: 0,
        }
    }

    /// An envelope joined to an existing trace.
    pub fn traced(id: u64, request: Request, trace_id: u64, parent_span: u64) -> Self {
        RequestEnvelope {
            id,
            request,
            trace_id,
            parent_span,
        }
    }
}

impl Serialize for RequestEnvelope {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("id".to_string(), self.id.to_value()),
            ("request".to_string(), self.request.to_value()),
        ];
        if self.trace_id != 0 {
            fields.push(("trace_id".to_string(), self.trace_id.to_value()));
            fields.push(("parent_span".to_string(), self.parent_span.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for RequestEnvelope {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom(format!("expected object, got {}", v.kind())))?;
        let optional_u64 = |key: &str| -> Result<u64, serde::Error> {
            match obj.iter().find(|(k, _)| k == key) {
                Some((_, v)) => u64::from_value(v),
                None => Ok(0),
            }
        };
        Ok(RequestEnvelope {
            id: serde::from_field(obj, "id")?,
            request: serde::from_field(obj, "request")?,
            trace_id: optional_u64("trace_id")?,
            parent_span: optional_u64("parent_span")?,
        })
    }
}

/// A reply with the id of the request it answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// The originating request's id (0 when the line was unparseable).
    pub id: u64,
    /// The reply.
    pub response: Response,
}

/// Encode an envelope as one protocol line (no trailing newline).
pub fn encode<T: Serialize>(envelope: &T) -> String {
    serde_json::to_string(envelope).expect("protocol types always serialise")
}

/// Encode a reply envelope as one protocol line (no trailing newline).
///
/// Hot-path specialisation: `Predictions` replies — the bulk of serve
/// traffic, and ~50 numbers each — are emitted by a hand-written
/// serialiser instead of the generic value-tree walk, which measures
/// several microseconds per reply. Byte-for-byte identical to
/// [`encode`] (numbers go through the same [`serde_json::write_f64`]);
/// every other variant falls through to the generic path.
pub fn encode_response(envelope: &ResponseEnvelope) -> String {
    use std::fmt::Write as _;
    let Response::Predictions { epoch, predictions } = &envelope.response else {
        return encode(envelope);
    };
    let mut out = String::with_capacity(96 + predictions.len() * 320);
    let _ = write!(out, "{{\"id\":{}", envelope.id);
    let _ = write!(out, ",\"response\":{{\"Predictions\":{{\"epoch\":{epoch}");
    out.push_str(",\"predictions\":[");
    for (i, p) in predictions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"time\":");
        serde_json::write_f64(p.time, &mut out);
        let _ = write!(out, ",\"bottleneck\":{}", p.bottleneck);
        out.push_str(",\"per_proc\":[");
        for (j, pc) in p.per_proc.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"r\":");
            serde_json::write_f64(pc.r, &mut out);
            out.push_str(",\"c\":");
            serde_json::write_f64(pc.c, &mut out);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}}}");
    out
}

/// Parse one protocol line into a request envelope.
///
/// Hot-path specialisation mirroring [`encode_response`]: the rigid
/// compact encoding of the comparison shapes (`Compare` / `BestOf` /
/// `Batch`) is recognised by a strict cursor parser; anything it does
/// not match byte-for-byte — other variants, whitespace, escapes,
/// malformed frames — falls back to the generic serde parse, so the
/// accepted language (and every error message) is unchanged.
pub fn decode_request(line: &str) -> Result<RequestEnvelope, serde_json::Error> {
    if let Some(env) = decode_request_fast(line) {
        return Ok(env);
    }
    serde_json::from_str(line)
}

fn decode_request_fast(line: &str) -> Option<RequestEnvelope> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    c.lit(b"{\"id\":")?;
    let id = c.u64()?;
    c.lit(b",\"request\":{\"")?;
    let tag = c.until_quote(line)?;
    c.lit(b":{\"app\":\"")?;
    let app = c.until_quote(line)?.to_string();
    c.lit(b",\"mappings\":[")?;
    let mut mappings = Vec::new();
    if !c.eat(b']') {
        loop {
            c.lit(b"{\"assign\":[")?;
            let mut assign = Vec::new();
            if !c.eat(b']') {
                loop {
                    assign.push(NodeId(u32::try_from(c.u64()?).ok()?));
                    if c.eat(b']') {
                        break;
                    }
                    c.lit(b",")?;
                }
            }
            c.lit(b"}")?;
            mappings.push(Mapping::new(assign));
            if c.eat(b']') {
                break;
            }
            c.lit(b",")?;
        }
    }
    c.lit(b"}}")?;
    // The envelope tail is either `}` (untraced) or the exact trace
    // suffix the encoder emits — both fields, in order.
    let (trace_id, parent_span) = if c.eat(b'}') {
        (0, 0)
    } else {
        c.lit(b",\"trace_id\":")?;
        let trace_id = c.u64()?;
        c.lit(b",\"parent_span\":")?;
        let parent_span = c.u64()?;
        c.lit(b"}")?;
        // The generic encoder never emits trace_id 0; stay as narrow.
        if trace_id == 0 {
            return None;
        }
        (trace_id, parent_span)
    };
    if c.pos != c.bytes.len() {
        return None;
    }
    let request = match tag {
        "Compare" => Request::Compare { app, mappings },
        "BestOf" => Request::BestOf { app, mappings },
        "Batch" => Request::Batch { app, mappings },
        _ => return None,
    };
    Some(RequestEnvelope::traced(id, request, trace_id, parent_span))
}

/// Byte cursor for [`decode_request_fast`]: every helper returns `None`
/// on the first unexpected byte, sending the line to the generic parse.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn lit(&mut self, lit: &[u8]) -> Option<()> {
        let end = self.pos.checked_add(lit.len())?;
        if self.bytes.get(self.pos..end)? == lit {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn u64(&mut self) -> Option<u64> {
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(&b) = self.bytes.get(self.pos) {
            if !b.is_ascii_digit() {
                break;
            }
            value = value.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
            self.pos += 1;
        }
        let digits = self.pos - start;
        // JSON forbids leading zeros; stay no wider than the generic parse.
        if digits == 0 || (digits > 1 && self.bytes.get(start) == Some(&b'0')) {
            return None;
        }
        Some(value)
    }

    /// Consume up to and including the next `"`, returning the span
    /// before it. Bails on escapes: the generic parser handles those.
    fn until_quote(&mut self, line: &'a str) -> Option<&'a str> {
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos)? {
                b'\\' => return None,
                b'"' => {
                    let span = line.get(start..self.pos);
                    self.pos += 1;
                    return span;
                }
                _ => self.pos += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::NodeId;

    #[test]
    fn fast_response_encoder_matches_the_generic_encoding() {
        use cbes_core::eval::ProcCost;
        let shapes = vec![
            ResponseEnvelope {
                id: 0,
                response: Response::Predictions {
                    epoch: 0,
                    predictions: vec![],
                },
            },
            ResponseEnvelope {
                id: u64::MAX,
                response: Response::Predictions {
                    epoch: 17,
                    predictions: vec![Prediction {
                        time: 0.1 + 0.2, // classic non-exact sum, full digits
                        bottleneck: 3,
                        per_proc: vec![],
                    }],
                },
            },
            ResponseEnvelope {
                id: 7,
                response: Response::Predictions {
                    epoch: 3,
                    predictions: vec![
                        Prediction {
                            time: 12.0, // integral float must keep its ".0"
                            bottleneck: 0,
                            per_proc: vec![
                                ProcCost { r: 1.5e-9, c: 0.0 },
                                ProcCost {
                                    r: f64::MAX,
                                    c: 2.2250738585072014e-308,
                                },
                            ],
                        },
                        Prediction {
                            time: f64::NAN, // encoder policy: null
                            bottleneck: 1,
                            per_proc: vec![ProcCost {
                                r: f64::INFINITY,
                                c: -0.0,
                            }],
                        },
                    ],
                },
            },
        ];
        for env in &shapes {
            assert_eq!(encode_response(env), encode(env), "shape: {env:?}");
        }
        // Non-Predictions variants take the generic path.
        let other = ResponseEnvelope {
            id: 9,
            response: Response::ShuttingDown,
        };
        assert_eq!(encode_response(&other), encode(&other));
    }

    #[test]
    fn fast_request_decoder_accepts_exactly_the_compact_encoding() {
        let shapes = vec![
            Request::Compare {
                app: "ring".into(),
                mappings: vec![
                    Mapping::new(vec![NodeId(0), NodeId(4), NodeId(1000)]),
                    Mapping::new(vec![]),
                ],
            },
            Request::BestOf {
                app: String::new(),
                mappings: vec![],
            },
            Request::Batch {
                app: "app with spaces + unicode é".into(),
                mappings: vec![Mapping::new(vec![NodeId(u32::MAX)])],
            },
        ];
        for request in shapes {
            let env = RequestEnvelope::new(3, request);
            let line = encode(&env);
            let fast = decode_request_fast(&line)
                .unwrap_or_else(|| panic!("fast path must accept {line}"));
            assert_eq!(fast, env);
            assert_eq!(decode_request(&line).expect("decode"), env);
        }
    }

    #[test]
    fn fast_request_decoder_falls_back_without_widening_the_language() {
        // Accepted by the generic parser, rejected by the fast path —
        // decode_request must still succeed via fallback.
        let spaced = "{\"id\": 5, \"request\":{\"Compare\":{\"app\":\"a\",\"mappings\":[]}}}";
        assert!(decode_request_fast(spaced).is_none());
        assert!(decode_request(spaced).is_ok());
        let escaped = "{\"id\":5,\"request\":{\"Compare\":{\"app\":\"a\\\"b\",\"mappings\":[]}}}";
        assert!(decode_request_fast(escaped).is_none());
        assert!(decode_request(escaped).is_ok());
        // Other variants: fast path bails, generic handles them.
        let env = RequestEnvelope::new(
            1,
            Request::Schedule {
                app: "x".into(),
                pool: vec![1, 2],
                iters: 5,
                seed: 0,
            },
        );
        let line = encode(&env);
        assert!(decode_request_fast(&line).is_none());
        assert_eq!(decode_request(&line).expect("decode"), env);
        // The vendored generic parser tolerates leading zeros; the fast
        // path must not short-circuit that leniency away.
        let zeros = "{\"id\":07,\"request\":{\"Compare\":{\"app\":\"a\",\"mappings\":[]}}}";
        assert!(decode_request_fast(zeros).is_none());
        assert!(decode_request(zeros).is_ok());
        // Rejected by both: truncated frames, junk tails.
        for bad in [
            "{\"id\":5,\"request\":{\"Compare\":{\"app\":\"a\",\"mappings\":[]}}}junk",
            "{\"id\":5,\"request\":{\"Compare\":{\"app\":\"a\",\"mappings\":[",
        ] {
            assert!(decode_request_fast(bad).is_none(), "fast accepted: {bad}");
            assert!(decode_request(bad).is_err(), "generic accepted: {bad}");
        }
    }

    #[test]
    fn request_round_trips() {
        let env = RequestEnvelope::new(
            42,
            Request::Compare {
                app: "lu".into(),
                mappings: vec![Mapping::new(vec![NodeId(0), NodeId(3)])],
            },
        );
        let line = encode(&env);
        assert!(!line.contains('\n'), "one line per message");
        let back: RequestEnvelope = serde_json::from_str(&line).expect("encode emits valid JSON");
        assert_eq!(back, env);
    }

    #[test]
    fn router_family_round_trips() {
        let reqs = [
            Request::Route {
                cluster: "centurion".into(),
                app: "lu".into(),
            },
            Request::Replicate {
                epoch: 7,
                load: LoadState::idle(4),
                silent: vec![2],
            },
            Request::Membership,
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            assert_eq!(req.action_index(), 9 + i, "{}", req.action());
            assert!(!req.is_eval(), "router family is control-plane");
            let env = RequestEnvelope::new(7, req.clone());
            let back: RequestEnvelope =
                serde_json::from_str(&encode(&env)).expect("encode emits valid JSON");
            assert_eq!(back.request, req);
        }
        let info = InstanceInfo {
            index: 0,
            addr: "127.0.0.1:9000".into(),
            health: "healthy".into(),
            epoch: 7,
            leader: true,
            routed: 3,
            forwarded: 1,
            failed_over: 0,
        };
        let resp = Response::Membership {
            membership: MembershipReport {
                cluster: "centurion".into(),
                instances: vec![info.clone()],
                leader: Some(0),
                max_epoch: 7,
                replication_lag: 0,
                heartbeats: 12,
                transitions: 0,
            },
        };
        let env = ResponseEnvelope {
            id: 7,
            response: resp.clone(),
        };
        let back: ResponseEnvelope =
            serde_json::from_str(&encode(&env)).expect("encode emits valid JSON");
        assert_eq!(back.response, resp);
        let routed = Response::Routed {
            hash: route_key_hash("centurion", "lu"),
            primary: info,
            replicas: vec![],
        };
        let back: ResponseEnvelope = serde_json::from_str(&encode(&ResponseEnvelope {
            id: 8,
            response: routed.clone(),
        }))
        .expect("encode emits valid JSON");
        assert_eq!(back.response, routed);
    }

    #[test]
    fn route_key_hash_is_stable_and_separates_key_halves() {
        let h = route_key_hash("centurion", "lu");
        assert_eq!(h, route_key_hash("centurion", "lu"), "deterministic");
        assert_ne!(h, route_key_hash("centurion", "mg"));
        assert_ne!(h, route_key_hash("orion", "lu"));
        // The separator keeps ("ab", "c") and ("a", "bc") distinct.
        assert_ne!(route_key_hash("ab", "c"), route_key_hash("a", "bc"));
    }

    #[test]
    fn eval_actions_are_exactly_the_capped_set() {
        let evals: Vec<&str> = [
            Request::Compare {
                app: "lu".into(),
                mappings: vec![],
            },
            Request::BestOf {
                app: "lu".into(),
                mappings: vec![],
            },
            Request::Schedule {
                app: "lu".into(),
                pool: vec![],
                iters: 0,
                seed: 0,
            },
            Request::Batch {
                app: "lu".into(),
                mappings: vec![],
            },
        ]
        .iter()
        .map(|r| {
            assert!(r.is_eval());
            r.action()
        })
        .collect();
        assert_eq!(evals, ["compare", "best_of", "schedule", "batch"]);
        for req in [Request::Stats, Request::Metrics, Request::Membership] {
            assert!(!req.is_eval(), "{} is control-plane", req.action());
        }
    }

    #[test]
    fn batch_round_trips_and_keeps_its_index() {
        let req = Request::Batch {
            app: "lu".into(),
            mappings: vec![Mapping::new(vec![NodeId(0), NodeId(3)])],
        };
        assert_eq!(req.action_index(), 12);
        assert_eq!(req.action(), "batch");
        let env = RequestEnvelope::new(64, req.clone());
        let back: RequestEnvelope =
            serde_json::from_str(&encode(&env)).expect("encode emits valid JSON");
        assert_eq!(back.request, req);
    }

    #[test]
    fn trace_family_round_trips_and_closes_the_action_table() {
        let trace = Request::Trace { trace_id: 99 };
        let dump = Request::DumpFlight;
        assert_eq!(trace.action_index(), 13);
        assert_eq!(dump.action_index(), 14);
        assert_eq!(trace.action(), "trace");
        assert_eq!(dump.action(), "dump_flight");
        assert!(
            !trace.is_eval() && !dump.is_eval(),
            "observability is control-plane"
        );
        for req in [trace, dump] {
            let env = RequestEnvelope::new(5, req.clone());
            let back: RequestEnvelope =
                serde_json::from_str(&encode(&env)).expect("encode emits valid JSON");
            assert_eq!(back.request, req);
        }
        let resp = Response::Traces {
            trace_id: 99,
            spans: vec![SpanSnapshot {
                name: "batch".into(),
                trace: 99,
                id: 3,
                parent: 1,
                start_us: 40,
                dur_us: 17,
            }],
        };
        let env = ResponseEnvelope {
            id: 5,
            response: resp.clone(),
        };
        let back: ResponseEnvelope =
            serde_json::from_str(&encode(&env)).expect("encode emits valid JSON");
        assert_eq!(back.response, resp);
        let receipt = Response::FlightDumped {
            path: "/tmp/cbes-flight-1-2.jsonl".into(),
            events: 4,
        };
        let back: ResponseEnvelope = serde_json::from_str(&encode(&ResponseEnvelope {
            id: 6,
            response: receipt.clone(),
        }))
        .expect("encode emits valid JSON");
        assert_eq!(back.response, receipt);
    }

    #[test]
    fn artifact_family_round_trips_and_closes_the_action_table() {
        let family = [
            Request::Stage {
                kind: "serving_limits".into(),
                payload: "{\"max_rps\": 50.0, \"shed_retry_after_ms\": 10}".into(),
            },
            Request::Apply,
            Request::Accept,
            Request::Rollback {
                reason: "p99 regression".into(),
            },
            Request::ArtifactStatus,
        ];
        for (i, req) in family.iter().enumerate() {
            assert_eq!(req.action_index(), 15 + i, "{}", req.action());
            assert!(
                !req.is_eval(),
                "{} is control-plane, exempt from the eval rate cap",
                req.action()
            );
            let env = RequestEnvelope::new(7, req.clone());
            let back: RequestEnvelope =
                serde_json::from_str(&encode(&env)).expect("encode emits valid JSON");
            assert_eq!(&back.request, req);
        }
        assert_eq!(
            family[family.len() - 1].action_index(),
            ACTIONS.len() - 1,
            "the artifact family closes the action table"
        );

        let ack = Response::ArtifactAck {
            version: 3,
            state: "soaking".into(),
            epoch: 12,
        };
        let back: ResponseEnvelope = serde_json::from_str(&encode(&ResponseEnvelope {
            id: 7,
            response: ack.clone(),
        }))
        .expect("encode emits valid JSON");
        assert_eq!(back.response, ack);

        let status = Response::ArtifactStatus {
            status: cbes_reconfig::StatusReport {
                instances: vec![cbes_reconfig::InstanceStatus {
                    addr: "127.0.0.1:4100".into(),
                    reconfigurable: true,
                    status: cbes_reconfig::LifecycleStatus::empty(),
                }],
            },
        };
        let back: ResponseEnvelope = serde_json::from_str(&encode(&ResponseEnvelope {
            id: 8,
            response: status.clone(),
        }))
        .expect("encode emits valid JSON");
        assert_eq!(back.response, status);
    }

    #[test]
    fn traced_envelopes_round_trip_and_untraced_wire_shape_is_unchanged() {
        let untraced = RequestEnvelope::new(3, Request::Stats);
        let line = encode(&untraced);
        assert!(
            !line.contains("trace_id"),
            "untraced envelopes must not widen the wire: {line}"
        );
        let back: RequestEnvelope = serde_json::from_str(&line).expect("decode");
        assert_eq!(back, untraced);

        let traced = RequestEnvelope::traced(4, Request::Stats, 77, 5);
        let line = encode(&traced);
        assert!(line.contains("\"trace_id\":77"), "{line}");
        assert!(line.contains("\"parent_span\":5"), "{line}");
        let back: RequestEnvelope = serde_json::from_str(&line).expect("decode");
        assert_eq!(back, traced);
        // A traced root (parent 0) still carries both fields.
        let root = RequestEnvelope::traced(4, Request::Stats, 77, 0);
        let back: RequestEnvelope = serde_json::from_str(&encode(&root)).expect("decode");
        assert_eq!(back, root);
    }

    #[test]
    fn fast_request_decoder_accepts_the_traced_suffix() {
        let req = Request::Batch {
            app: "lu".into(),
            mappings: vec![Mapping::new(vec![NodeId(0), NodeId(3)])],
        };
        let env = RequestEnvelope::traced(9, req, 0xABCD, 7);
        let line = encode(&env);
        let fast = decode_request_fast(&line)
            .unwrap_or_else(|| panic!("fast path must accept traced frames: {line}"));
        assert_eq!(fast, env);
        // Truncated or reordered trace suffixes fall back cleanly.
        for bad in [
            "{\"id\":9,\"request\":{\"Batch\":{\"app\":\"lu\",\"mappings\":[]}},\"trace_id\":5}",
            "{\"id\":9,\"request\":{\"Batch\":{\"app\":\"lu\",\"mappings\":[]}},\"parent_span\":5,\"trace_id\":5}",
            "{\"id\":9,\"request\":{\"Batch\":{\"app\":\"lu\",\"mappings\":[]}},\"trace_id\":0,\"parent_span\":0}",
        ] {
            assert!(decode_request_fast(bad).is_none(), "fast accepted: {bad}");
        }
    }

    #[test]
    fn unit_requests_round_trip() {
        for req in [Request::Stats, Request::Shutdown] {
            let env = RequestEnvelope::new(1, req.clone());
            let back: RequestEnvelope =
                serde_json::from_str(&encode(&env)).expect("encode emits valid JSON");
            assert_eq!(back.request, req);
        }
    }

    #[test]
    fn error_reply_round_trips() {
        let env = ResponseEnvelope {
            id: 9,
            response: Response::error(error_kind::OVERLOADED, "queue full"),
        };
        let back: ResponseEnvelope =
            serde_json::from_str(&encode(&env)).expect("encode emits valid JSON");
        assert_eq!(back, env);
        match back.response {
            Response::Error { kind, .. } => assert_eq!(kind, error_kind::OVERLOADED),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn id_zero_marks_unparseable_lines() {
        let bad: Result<RequestEnvelope, _> = serde_json::from_str("{\"nope\":1}");
        assert!(bad.is_err());
    }
}
