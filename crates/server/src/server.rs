//! The daemon: a readiness-based event loop (one reactor thread over
//! the [`crate::epoll`] shim) feeding a sharded worker pool, so idle
//! connections cost a few buffered bytes instead of a thread.
//!
//! The reactor owns the non-blocking listener and every connection:
//! it accepts, reassembles newline-delimited frames from per-connection
//! read buffers, and runs admission control per complete line. Admitted
//! lines are `try_send`-ed to the connection's shard queue (connections
//! pin to `token % workers`, so one connection's replies keep FIFO
//! order); a full shard answers immediately with a structured
//! `overloaded` error and the advertised back-off hint. Workers parse,
//! rate-gate, execute, and encode off the reactor thread, then push the
//! finished bytes back over a completion channel and nudge the reactor
//! with a wake byte. A [`PendingTable`] enforces the per-request
//! deadline: an admitted request that misses it is answered with a
//! `timeout` error by the reactor and the worker's late reply is
//! dropped.
//!
//! Reply ordering: admitted requests on one connection are answered in
//! arrival order (same shard, FIFO queue). Reactor-immediate replies —
//! shed, oversized-frame, timeout — may overtake replies still being
//! computed, which is why every reply carries the request id.
//!
//! Shutdown: a `Shutdown` request (or [`ServerHandle::shutdown`]) flips
//! the flag and wakes the reactor. The reactor stops accepting, answers
//! any newly-read line with a `shutting_down` shed, drains outstanding
//! completions, flushes write buffers, and exits once every admitted
//! request is answered; dropping the shard senders then disconnects the
//! workers. Every admitted request is answered.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cbes_cluster::NodeId;
use cbes_core::CbesService;
use cbes_obs::{names, Counter, Histogram, MetricsSnapshot, Registry};
use cbes_sched::{SaConfig, SaScheduler, ScheduleRequest, Scheduler};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;

use crate::epoll::{PollEvent, Poller};
use crate::protocol::{
    decode_request, encode_response, error_kind, route_key_hash, InstanceInfo, MembershipReport,
    Request, RequestEnvelope, Response, ResponseEnvelope, SpanSnapshot, StatsReport, ACTIONS,
};
use crate::reconfig::{not_reconfigurable, unreconfigurable_status, ReconfigRuntime};

/// Upper bound on one reactor poll wait: the loop re-checks the
/// shutdown flag at least this often even with no I/O and no deadlines.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Reactor poll token of the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Reactor poll token of the worker wake channel.
const WAKE_TOKEN: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads (= queue shards) executing admitted requests.
    pub workers: usize,
    /// Total admission queue capacity, split evenly across the worker
    /// shards; beyond it requests get `overloaded`.
    pub queue_capacity: usize,
    /// Per-request deadline from admission to reply.
    pub request_timeout: Duration,
    /// Longest request line accepted, in bytes. Longer frames are
    /// answered with a `frame_too_large` error and discarded up to the
    /// next newline, bounding per-connection memory.
    pub max_line_bytes: usize,
    /// Consecutive malformed frames (unparseable or oversized) tolerated
    /// on one connection before the server drops it.
    pub max_consecutive_errors: u32,
    /// Back-off hint attached to load-shedding (`overloaded` /
    /// `shutting_down`) replies as `retry_after_ms`.
    pub shed_retry_after: Duration,
    /// Evaluation admission cap in requests per second (token bucket;
    /// `0.0` disables the cap). Only evaluation actions
    /// ([`Request::is_eval`]) consume tokens — control-plane traffic
    /// (stats heartbeats, membership, replication, shutdown) is always
    /// admitted, so a saturated instance still answers its tier. Capped
    /// requests beyond the budget are shed with `overloaded` and a
    /// `retry_after_ms` hint equal to the time until the next token.
    pub max_rps: f64,
    /// Durable state directory for the artifact store (`None` disables
    /// the artifact lifecycle). On start the journal under it is
    /// replayed and the recovered serving artifact re-activated before
    /// the first request is answered.
    pub state_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 1024,
            request_timeout: Duration::from_secs(10),
            max_line_bytes: 64 * 1024,
            max_consecutive_errors: 8,
            shed_retry_after: Duration::from_millis(25),
            max_rps: 0.0,
            state_dir: None,
        }
    }
}

/// A token bucket bounding admitted evaluation requests per second —
/// the per-instance share of a node's CPU budget when several CBES
/// instances (or co-tenant workloads) share a machine. Refills
/// continuously at `rate` tokens/s up to a burst of a quarter-second's
/// worth (at least one token).
///
/// The rate is runtime-adjustable (stored as `f64` bits in an atomic,
/// `0` = unlimited) so a `serving_limits` artifact can retune
/// admission on a live daemon without restarting the worker pool; the
/// limiter is always present and a zero rate short-circuits to an
/// uncontended load.
#[derive(Debug)]
pub(crate) struct RateLimiter {
    /// `f64::to_bits` of the rate in tokens/s; `0.0` disables the cap.
    rate_bits: AtomicU64,
    /// Minimum `retry_after_ms` hint attached to rate-cap sheds.
    hint_ms: AtomicU64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    refilled: Instant,
}

impl RateLimiter {
    pub(crate) fn new(rate_per_s: f64) -> Self {
        let rate = rate_per_s.max(0.0);
        RateLimiter {
            rate_bits: AtomicU64::new(rate.to_bits()),
            hint_ms: AtomicU64::new(0),
            state: Mutex::new(BucketState {
                tokens: Self::burst_of(rate),
                refilled: Instant::now(),
            }),
        }
    }

    fn burst_of(rate: f64) -> f64 {
        (rate * 0.25).max(1.0)
    }

    /// Retune the cap at runtime (a `serving_limits` activation or
    /// rollback). Resets the bucket to a full burst at the new rate so
    /// the flip itself never sheds.
    pub(crate) fn set_limits(&self, rate_per_s: f64, hint_ms: u64) {
        let rate = rate_per_s.max(0.0);
        self.rate_bits.store(rate.to_bits(), Ordering::Release);
        self.hint_ms.store(hint_ms, Ordering::Release);
        let mut s = self.state.lock();
        s.tokens = Self::burst_of(rate);
        s.refilled = Instant::now();
    }

    /// The configured shed back-off hint floor, in milliseconds.
    fn hint_ms(&self) -> u64 {
        self.hint_ms.load(Ordering::Acquire)
    }

    /// The currently configured admission cap, requests/second
    /// (`0` = uncapped). Test-only: asserts overlay symmetry.
    #[cfg(test)]
    pub(crate) fn rate_per_s(&self) -> f64 {
        f64::from_bits(self.rate_bits.load(Ordering::Acquire))
    }

    /// Take one token, or report how long until one is available.
    /// Unlimited (zero-rate) limiters admit without touching the lock.
    pub(crate) fn try_acquire(&self) -> Result<(), Duration> {
        let rate = f64::from_bits(self.rate_bits.load(Ordering::Acquire));
        if rate <= 0.0 {
            return Ok(());
        }
        let rate = rate.max(0.001);
        let burst = Self::burst_of(rate);
        let mut s = self.state.lock();
        let now = Instant::now();
        let dt = now.duration_since(s.refilled).as_secs_f64();
        s.tokens = (s.tokens + dt * rate).min(burst);
        s.refilled = now;
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64((1.0 - s.tokens) / rate))
        }
    }
}

/// The server's instruments: a private [`Registry`] per server instance
/// (so several servers in one process never mix counts) with the
/// hot-path handles cached as `Arc`s — the reactor and workers update
/// them wait-free, without touching the registry lock.
struct ServerMetrics {
    registry: Registry,
    served: Arc<Counter>,
    errors: Arc<Counter>,
    overloaded: Arc<Counter>,
    timeouts: Arc<Counter>,
    connections: Arc<Counter>,
    /// Connections dropped for exhausting their malformed-frame budget.
    dropped_connections: Arc<Counter>,
    /// Request lines rejected for exceeding the length cap.
    oversized_frames: Arc<Counter>,
    /// Admitted-rate cap sheds (a subset of `overloaded`).
    rate_limited: Arc<Counter>,
    /// Candidate mappings evaluated through `Batch` requests.
    batch_candidates: Arc<Counter>,
    /// Reactor poll returns that carried at least one I/O event.
    loop_wakeups: Arc<Counter>,
    /// Microseconds from admission to worker pickup.
    queue_wait: Arc<Histogram>,
    /// Microseconds a worker spent computing the reply.
    service_time: Arc<Histogram>,
    /// Served-request counters, index-aligned with [`ACTIONS`].
    by_action: Vec<Arc<Counter>>,
    /// Flight-recorder dumps written (triggered or on demand).
    flight_dumps: Arc<Counter>,
    /// Second stamp of the last once-per-second anomaly sweep
    /// ([`flight_checks`]); 0 = never swept.
    last_flight_check: AtomicU64,
    /// Node health-transition count at the last anomaly sweep.
    last_health_transitions: AtomicU64,
    start: Instant,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        ServerMetrics {
            served: registry.counter(names::SERVER_SERVED),
            errors: registry.counter(names::SERVER_ERRORS),
            overloaded: registry.counter(names::SERVER_OVERLOADED),
            timeouts: registry.counter(names::SERVER_TIMEOUTS),
            connections: registry.counter(names::SERVER_CONNECTIONS),
            dropped_connections: registry.counter(names::SERVER_DROPPED_CONNECTIONS),
            oversized_frames: registry.counter(names::SERVER_OVERSIZED_FRAMES),
            rate_limited: registry.counter(names::SERVER_RATE_LIMITED),
            batch_candidates: registry.counter(names::SERVER_BATCH_CANDIDATES),
            loop_wakeups: registry.counter(names::SERVER_LOOP_WAKEUPS),
            queue_wait: registry.histogram(names::SERVER_QUEUE_WAIT_US),
            service_time: registry.histogram(names::SERVER_SERVICE_TIME_US),
            by_action: names::SERVER_ACTION_COUNTERS
                .iter()
                .map(|n| registry.counter(n))
                .collect(),
            flight_dumps: registry.counter(names::FLIGHT_DUMPS),
            last_flight_check: AtomicU64::new(0),
            last_health_transitions: AtomicU64::new(0),
            start: Instant::now(),
            registry,
        }
    }

    fn per_action(&self) -> BTreeMap<String, u64> {
        ACTIONS
            .iter()
            .zip(&self.by_action)
            .map(|(name, c)| (name.to_string(), c.get()))
            .collect()
    }

    /// This server's instruments merged with the process-wide registry
    /// (the library crates — core, netmodel — record there).
    fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        self.registry
            .gauge(names::SERVER_QUEUE_DEPTH)
            .set(queue_depth as f64);
        let mut snap = self.registry.snapshot();
        snap.merge(&Registry::global().snapshot());
        snap
    }
}

/// One admitted request line travelling to a worker shard.
struct Job {
    /// Reactor-assigned sequence; keys the [`PendingTable`] entry.
    seq: u64,
    /// The raw frame; the worker parses it off the reactor thread.
    line: String,
    /// When the reactor queued this job; queue wait is measured from
    /// here to worker pickup.
    admitted: Instant,
}

/// A finished reply travelling back from a worker to the reactor.
struct Completion {
    seq: u64,
    /// The encoded reply line, newline included.
    bytes: Vec<u8>,
    /// True when the reply is a framing strike (`bad_request`).
    malformed: bool,
}

/// Best-effort scan for the envelope id without a full parse, so shed
/// and timeout replies can echo it. The wire encoding always leads with
/// `{"id":N`, but any top-level placement parses; an absent or
/// unreadable id falls back to 0 (the "unattributable" id).
fn peek_id(line: &str) -> u64 {
    let Some(pos) = line.find("\"id\"") else {
        return 0;
    };
    let Some(rest) = line.get(pos + 4..) else {
        return 0;
    };
    let Some(rest) = rest.trim_start().strip_prefix(':') else {
        return 0;
    };
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().unwrap_or(0)
}

/// Best-effort scan for the request's variant tag without a full
/// parse, so the reactor can decide whether a frame is eligible for
/// inline execution. The wire envelope is externally tagged — struct
/// variants nest as `{"id":N,"request":{"Schedule":{…}}}` and unit
/// variants encode as a bare string, `{"id":N,"request":"Stats"}`; the
/// tag is the first object key or the string itself. Returns `None`
/// when neither shape is visible; such frames still go through the
/// full parse (and its typed `bad_request` reply) on whichever path
/// runs them.
fn sniff_action(line: &str) -> Option<&str> {
    let pos = line.find("\"request\"")?;
    let rest = line.get(pos + 9..)?;
    let rest = rest.trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let rest = match rest.strip_prefix('{') {
        Some(inner) => inner.trim_start(),
        None => rest,
    };
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    rest.get(..end)
}

/// Request tags that must never run inline on the reactor thread:
/// `Schedule` has a caller-controlled annealing budget, the artifact
/// verbs (`Stage`/`Apply`/`Accept`/`Rollback`) fsync the reconfig
/// journal, and `DumpFlight` writes the flight file. All of these
/// block on disk or CPU for unbounded time, which the event loop
/// cannot absorb.
const NEVER_INLINE: &[&str] = &[
    "Schedule",
    "Stage",
    "Apply",
    "Accept",
    "Rollback",
    "DumpFlight",
];

/// What admission control decided for one complete line.
enum Admission {
    /// The line is queued on its shard; `id` is the peeked envelope id
    /// used for a timeout reply should the deadline pass first.
    Queued { id: u64 },
    /// Admission produced the reply itself (shed paths).
    Reply(ResponseEnvelope),
}

/// Push one line through admission control: draining servers and full
/// or disconnected shards shed immediately, everything else queues.
fn try_admit(
    line: &str,
    tx: &Sender<Job>,
    seq: u64,
    draining: bool,
    metrics: &ServerMetrics,
    shed_retry_after_ms: u64,
) -> Admission {
    let id = peek_id(line);
    if draining {
        metrics.errors.incr();
        return Admission::Reply(ResponseEnvelope {
            id,
            response: Response::shed(
                error_kind::SHUTTING_DOWN,
                "server is draining",
                shed_retry_after_ms,
            ),
        });
    }
    match tx.try_send(Job {
        seq,
        line: line.to_string(),
        admitted: Instant::now(),
    }) {
        Ok(()) => Admission::Queued { id },
        Err(TrySendError::Full(_)) => {
            metrics.overloaded.incr();
            metrics.errors.incr();
            maybe_flag_shed_spike(metrics);
            Admission::Reply(ResponseEnvelope {
                id,
                response: Response::shed(
                    error_kind::OVERLOADED,
                    "admission queue is full",
                    shed_retry_after_ms,
                ),
            })
        }
        Err(TrySendError::Disconnected(_)) => {
            metrics.errors.incr();
            Admission::Reply(ResponseEnvelope {
                id,
                response: Response::shed(
                    error_kind::SHUTTING_DOWN,
                    "server is draining",
                    shed_retry_after_ms,
                ),
            })
        }
    }
}

/// One in-flight admitted request. The deadline lives in the table's
/// heap; the entry itself only needs routing identity.
struct Pending {
    token: u64,
    id: u64,
}

/// The reactor's deadline ledger for admitted requests: completions
/// consume entries, expiry turns them into `timeout` replies, and a
/// closing connection cancels its entries so late replies are dropped.
struct PendingTable {
    by_seq: HashMap<u64, Pending>,
    /// Min-heap of deadlines with lazy deletion: completed or cancelled
    /// seqs linger here until their deadline pops them.
    deadlines: BinaryHeap<Reverse<(Instant, u64)>>,
}

impl PendingTable {
    fn new() -> Self {
        PendingTable {
            by_seq: HashMap::new(),
            deadlines: BinaryHeap::new(),
        }
    }

    fn insert(&mut self, seq: u64, token: u64, id: u64, deadline: Instant) {
        self.by_seq.insert(seq, Pending { token, id });
        self.deadlines.push(Reverse((deadline, seq)));
    }

    /// Claim the entry for a finished request; `None` means it already
    /// timed out (or its connection went away) and the reply must be
    /// dropped — it was answered once.
    fn complete(&mut self, seq: u64) -> Option<Pending> {
        let p = self.by_seq.remove(&seq);
        if self.by_seq.is_empty() {
            // No live entries: drop the lazily-deleted heap backlog.
            self.deadlines.clear();
        }
        p
    }

    /// The earliest deadline, for sizing the poll wait. May be stale
    /// (a completed entry) — that only causes one early wakeup.
    fn next_deadline(&self) -> Option<Instant> {
        self.deadlines.peek().map(|Reverse((d, _))| *d)
    }

    /// Pop every entry whose deadline has passed.
    fn expire(&mut self, now: Instant) -> Vec<Pending> {
        let mut due = Vec::new();
        while let Some(Reverse((deadline, seq))) = self.deadlines.peek().copied() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            if let Some(p) = self.by_seq.remove(&seq) {
                due.push(p);
            }
        }
        due
    }

    /// Cancel every entry belonging to a closed connection.
    fn drop_conn(&mut self, token: u64) {
        self.by_seq.retain(|_, p| p.token != token);
        if self.by_seq.is_empty() {
            self.deadlines.clear();
        }
    }

    fn is_empty(&self) -> bool {
        self.by_seq.is_empty()
    }
}

/// One frame-reassembly outcome from a chunk of connection bytes.
enum FrameEvent {
    /// A complete line (newline stripped).
    Line(Vec<u8>),
    /// A frame exceeded the length cap; its bytes are being discarded
    /// up to the next newline.
    Oversized,
}

/// Per-connection frame reassembly: accumulates bytes until a newline,
/// enforcing the length cap so a frame that never ends cannot grow
/// without bound.
struct FrameBuf {
    rbuf: Vec<u8>,
    /// Discarding an oversized frame's bytes until its newline.
    discarding: bool,
}

impl FrameBuf {
    fn new() -> Self {
        FrameBuf {
            rbuf: Vec::new(),
            discarding: false,
        }
    }

    /// Fold `chunk` into the buffer, emitting an event per completed
    /// (or over-cap) frame, in wire order.
    fn ingest(&mut self, mut chunk: &[u8], max_line_bytes: usize, out: &mut Vec<FrameEvent>) {
        loop {
            let newline = chunk.iter().position(|&b| b == b'\n');
            if self.discarding {
                match newline {
                    Some(i) => {
                        self.discarding = false;
                        chunk = chunk.get(i + 1..).unwrap_or(&[]);
                    }
                    None => return,
                }
                continue;
            }
            match newline {
                Some(i) => {
                    let head = chunk.get(..i).unwrap_or(&[]);
                    chunk = chunk.get(i + 1..).unwrap_or(&[]);
                    if self.rbuf.len() + head.len() > max_line_bytes {
                        // The frame completed (newline seen), so no
                        // discard state is needed beyond dropping it.
                        self.rbuf.clear();
                        out.push(FrameEvent::Oversized);
                    } else {
                        let mut line = std::mem::take(&mut self.rbuf);
                        line.extend_from_slice(head);
                        out.push(FrameEvent::Line(line));
                    }
                }
                None => {
                    if self.rbuf.len() + chunk.len() > max_line_bytes {
                        self.rbuf.clear();
                        self.discarding = true;
                        out.push(FrameEvent::Oversized);
                    } else {
                        self.rbuf.extend_from_slice(chunk);
                    }
                    return;
                }
            }
        }
    }

    /// The unterminated tail at EOF, treated as a final frame.
    fn take_residual(&mut self) -> Option<Vec<u8>> {
        if self.discarding || self.rbuf.is_empty() {
            return None;
        }
        Some(std::mem::take(&mut self.rbuf))
    }
}

/// One live connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    /// Worker shard this connection's requests pin to.
    shard: usize,
    frames: FrameBuf,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written.
    wpos: usize,
    /// Consecutive malformed frames; reset by any well-formed reply,
    /// fatal past the policy budget.
    strikes: u32,
    /// Admitted requests not yet answered.
    inflight: usize,
    /// Peer half-closed; finish in-flight replies, then close.
    eof: bool,
    /// Close as soon as the write buffer drains (strike budget spent).
    closing: bool,
    /// Current poller interest, to skip redundant `modify` calls.
    interest: (bool, bool),
}

impl Conn {
    fn new(stream: TcpStream, shard: usize) -> Self {
        Conn {
            stream,
            shard,
            frames: FrameBuf::new(),
            wbuf: Vec::new(),
            wpos: 0,
            strikes: 0,
            inflight: 0,
            eof: false,
            closing: false,
            interest: (true, false),
        }
    }
}

/// The CBES daemon. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns the threads.
pub struct Server;

impl Server {
    /// Bind `config.addr` and serve `service` until shut down.
    pub fn start(service: Arc<CbesService>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::new());
        let worker_count = config.workers.max(1);
        let per_shard = (config.queue_capacity / worker_count).max(1);

        let mut shard_tx = Vec::with_capacity(worker_count);
        let mut shard_rx = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let (tx, rx) = channel::bounded::<Job>(per_shard);
            shard_tx.push(tx);
            shard_rx.push(rx);
        }
        let all_rx = Arc::new(shard_rx);
        let (completion_tx, completion_rx) = channel::unbounded::<Completion>();
        let (wake_tx, wake_rx) = wake_pair()?;
        let wake_tx = Arc::new(wake_tx);
        let rate = Arc::new(RateLimiter::new(config.max_rps));
        let reconfig = match config.state_dir.clone() {
            Some(dir) => Some(Arc::new(
                ReconfigRuntime::open(
                    dir,
                    service.clone(),
                    rate.clone(),
                    config.max_rps,
                    &metrics.registry,
                )
                .map_err(|e| std::io::Error::other(format!("artifact store: {e}")))?,
            )),
            None => None,
        };
        let shard_busy: Arc<Vec<AtomicBool>> =
            Arc::new((0..worker_count).map(|_| AtomicBool::new(false)).collect());

        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|index| {
                let service = service.clone();
                let all_rx = all_rx.clone();
                let completion_tx = completion_tx.clone();
                let wake_tx = wake_tx.clone();
                let metrics = metrics.clone();
                let shutdown = shutdown.clone();
                let rate = rate.clone();
                let reconfig = reconfig.clone();
                let shard_busy = shard_busy.clone();
                std::thread::spawn(move || {
                    worker_loop(
                        &service,
                        index,
                        &all_rx,
                        &completion_tx,
                        &wake_tx,
                        &metrics,
                        &shutdown,
                        addr,
                        &rate,
                        reconfig.as_deref(),
                        &shard_busy,
                    )
                })
            })
            .collect();
        drop(completion_tx);

        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
        poller.register(wake_rx.as_raw_fd(), WAKE_TOKEN, true, false)?;

        let reactor = {
            let metrics = metrics.clone();
            let shutdown = shutdown.clone();
            let reactor = Reactor {
                poller,
                listener,
                wake_rx,
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
                next_seq: 0,
                pending: PendingTable::new(),
                shard_tx,
                shard_busy,
                service,
                rate,
                reconfig,
                addr,
                completion_rx,
                metrics,
                shutdown,
                request_timeout: config.request_timeout,
                max_line_bytes: config.max_line_bytes.max(1),
                max_consecutive_errors: config.max_consecutive_errors.max(1),
                shed_retry_after_ms: config.shed_retry_after.as_millis() as u64,
                draining: false,
            };
            std::thread::spawn(move || reactor.run())
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            metrics,
            reactor: Some(reactor),
            workers,
        })
    }
}

/// Running-server handle: address, shutdown trigger, thread ownership.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once shutdown has been triggered (by request or locally).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Trigger shutdown without waiting for the drain.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shutdown, self.addr);
    }

    /// Wait until the server has fully drained and every thread exited.
    /// Returns the final counter values.
    pub fn join(mut self) -> (u64, u64) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        (self.metrics.served.get(), self.metrics.errors.get())
    }

    /// Trigger shutdown and wait for the drain.
    pub fn shutdown_and_join(self) -> (u64, u64) {
        self.shutdown();
        self.join()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Un-joined handle going away: stop the threads, don't wait.
        trigger_shutdown(&self.shutdown, self.addr);
    }
}

fn trigger_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    if !shutdown.swap(true, Ordering::AcqRel) {
        // Wake the reactor out of its poll wait: the connect makes the
        // listener readable. The POLL_INTERVAL cap backstops this, so
        // a bounded connect is purely best-effort — if the loopback
        // nudge times out the reactor still notices within one poll.
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
    }
}

/// An in-process wake channel: workers nudge the reactor out of its
/// poll wait by writing a byte. Built from a loopback TCP pair so the
/// FFI surface stays the four polling syscalls (no `pipe(2)` shim).
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let probe = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(probe.local_addr()?)?;
    let (rx, _) = probe.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

fn encode_line(envelope: &ResponseEnvelope) -> Vec<u8> {
    let mut bytes = encode_response(envelope).into_bytes();
    bytes.push(b'\n');
    bytes
}

/// Sheds within one second that count as a spike and trip the flight
/// recorder. `CBES_FLIGHT_SHED_SPIKE` overrides; 0 disables the
/// trigger entirely.
fn shed_spike_threshold() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("CBES_FLIGHT_SHED_SPIKE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8)
    })
}

/// Rolling-p99 service-time budget in microseconds; exceeding it over
/// the 10 s window trips the flight recorder. `CBES_FLIGHT_P99_BUDGET_US`
/// sets it; the default 0 disables the trigger.
fn flight_p99_budget_us() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("CBES_FLIGHT_P99_BUDGET_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

/// Shed-spike flight trigger, called from every shed site. Records one
/// event at the threshold crossing and attempts a (debounced) dump
/// whenever the last second's shed count sits at or above the
/// threshold; below it the cost is one windowed-counter read.
fn maybe_flag_shed_spike(metrics: &ServerMetrics) {
    let spike = shed_spike_threshold();
    if spike == 0 {
        return;
    }
    let recent = metrics.overloaded.window(1);
    if recent < spike {
        return;
    }
    let flight = metrics.registry.flight();
    if recent == spike {
        flight.record(
            "shed_spike",
            format!("{recent} requests shed in the last second"),
            0,
        );
    }
    if flight
        .auto_dump("shed_spike", metrics.registry.spans())
        .is_some()
    {
        metrics.flight_dumps.incr();
    }
}

/// Sheds tolerated since an artifact apply before the soak monitor
/// rolls it back. `CBES_SOAK_SHED_BUDGET` overrides; 0 disables the
/// shed trigger.
fn soak_shed_budget() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("CBES_SOAK_SHED_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(25)
    })
}

/// Rolling-p99 service-time budget (microseconds over the 10 s window)
/// during a soak; exceeding it rolls the soaking artifact back.
/// `CBES_SOAK_P99_BUDGET_US` sets it; the default 0 disables the
/// trigger.
fn soak_p99_budget_us() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("CBES_SOAK_P99_BUDGET_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

/// The soak monitor: while an artifact is soaking, compare windowed
/// telemetry against the soak budgets and auto-roll-back on
/// regression, dumping the flight recorder tagged with the artifact
/// version. Runs inside the once-per-second [`flight_checks`] sweep.
fn soak_check(runtime: &ReconfigRuntime, metrics: &Arc<ServerMetrics>) {
    let Some(soak) = runtime.soak_state() else {
        return;
    };
    let mut reason = None;
    let shed_budget = soak_shed_budget();
    if shed_budget > 0 {
        let shed = metrics.overloaded.get().saturating_sub(soak.sheds_at_apply);
        if shed >= shed_budget {
            reason = Some(format!(
                "{shed} requests shed since apply (budget {shed_budget})"
            ));
        }
    }
    let p99_budget = soak_p99_budget_us();
    if reason.is_none() && p99_budget > 0 {
        let p99 = metrics.service_time.window_snapshot(10).p99();
        if p99 > p99_budget {
            reason = Some(format!(
                "rolling p99 {p99}us exceeds soak budget {p99_budget}us"
            ));
        }
    }
    let Some(reason) = reason else {
        return;
    };
    let flight = metrics.registry.flight();
    flight.record(
        "soak_regression",
        format!("artifact v{} rolled back: {reason}", soak.version),
        0,
    );
    // The rollback journals, reinstates the previous configuration, and
    // clears the soak; a concurrent operator verb simply wins the race
    // (the store serialises, the loser's reply is a lifecycle error).
    let _ = runtime.handle_rollback(&reason, true);
    if flight
        .auto_dump("soak_regression", metrics.registry.spans())
        .is_some()
    {
        metrics.flight_dumps.incr();
    }
}

/// Once-per-second anomaly sweep run by whichever worker first crosses
/// a second boundary: a rolling-p99 budget breach or a node
/// health-state transition trips a (debounced) flight dump, and a
/// soaking artifact is checked against its regression budgets. Every
/// other request of the second pays one atomic swap and returns.
fn flight_checks(
    service: &Arc<CbesService>,
    metrics: &Arc<ServerMetrics>,
    reconfig: Option<&ReconfigRuntime>,
) {
    // +1 keeps the stamp nonzero so "never swept" stays distinguishable.
    let now = metrics.start.elapsed().as_secs() + 1;
    let prev_check = metrics.last_flight_check.swap(now, Ordering::Relaxed);
    if prev_check == now {
        return;
    }
    let transitions = service.health_transitions();
    let prev_transitions = metrics
        .last_health_transitions
        .swap(transitions, Ordering::Relaxed);
    if prev_check == 0 {
        // First sweep only seeds the baselines.
        return;
    }
    if let Some(runtime) = reconfig {
        soak_check(runtime, metrics);
    }
    let flight = metrics.registry.flight();
    let mut dump_reason = None;
    let budget = flight_p99_budget_us();
    if budget > 0 {
        let p99 = metrics.service_time.window_snapshot(10).p99();
        if p99 > budget {
            flight.record(
                "p99_budget",
                format!("rolling p99 {p99}us exceeds budget {budget}us over 10s"),
                0,
            );
            dump_reason = Some("p99_budget");
        }
    }
    if transitions > prev_transitions {
        flight.record(
            "health_transition",
            format!(
                "{} node health transition(s) since the last sweep",
                transitions - prev_transitions
            ),
            0,
        );
        dump_reason = Some("health_transition");
    }
    if let Some(reason) = dump_reason {
        if flight.auto_dump(reason, metrics.registry.spans()).is_some() {
            metrics.flight_dumps.incr();
        }
    }
}

/// The event loop: owns the listener, the wake receiver, and every
/// connection; everything here runs on the one reactor thread.
struct Reactor {
    poller: Poller,
    listener: TcpListener,
    wake_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    next_seq: u64,
    pending: PendingTable,
    shard_tx: Vec<Sender<Job>>,
    /// Per-shard "worker is executing" flags; the reactor only runs a
    /// frame inline when the target shard is drained *and* idle.
    shard_busy: Arc<Vec<AtomicBool>>,
    service: Arc<CbesService>,
    rate: Arc<RateLimiter>,
    reconfig: Option<Arc<ReconfigRuntime>>,
    addr: SocketAddr,
    completion_rx: Receiver<Completion>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    request_timeout: Duration,
    max_line_bytes: usize,
    max_consecutive_errors: u32,
    shed_retry_after_ms: u64,
    draining: bool,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                self.begin_drain();
                if self.pending.is_empty() && self.conns.values().all(|c| c.wbuf.is_empty()) {
                    break;
                }
            }
            let mut timeout = POLL_INTERVAL;
            if let Some(deadline) = self.pending.next_deadline() {
                timeout = timeout.min(deadline.saturating_duration_since(Instant::now()));
            }
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // cbes-analyze: allow(blocking_hot_path, 1ms backoff after a poll error prevents a hot error spin; bounded and only on the failure path)
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            if !events.is_empty() {
                self.metrics.loop_wakeups.incr();
            }
            for &ev in &events {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.drain_wake(),
                    token => {
                        if ev.readable {
                            self.conn_readable(token);
                        }
                        if ev.writable {
                            self.conn_writable(token);
                        }
                    }
                }
            }
            self.drain_completions();
            self.expire_pending();
        }
        // Dropping self drops the shard senders; workers exit on the
        // disconnect. The listener and every connection close with it.
    }

    /// Stop accepting: deregister (and thereby stop watching) the
    /// listener once the drain begins.
    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        let _ = self.poller.deregister(self.listener.as_raw_fd());
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        // Draining: close post-shutdown connections
                        // immediately (the drop is the reply).
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let shard = (token % self.shard_tx.len().max(1) as u64) as usize;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        continue;
                    }
                    self.metrics.connections.incr();
                    self.conns.insert(token, Conn::new(stream, shard));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Drain the wake bytes workers wrote; the signal's work — the
    /// completion queue — is drained by the caller afterwards.
    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        let mut rx = &self.wake_rx;
        loop {
            match rx.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_readable(&mut self, token: u64) {
        let mut scratch = [0u8; 16 * 1024];
        let mut frames: Vec<FrameEvent> = Vec::new();
        let mut failed = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        let chunk = scratch.get(..n).unwrap_or(&[]);
                        conn.frames.ingest(chunk, self.max_line_bytes, &mut frames);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if conn.eof {
                if let Some(residual) = conn.frames.take_residual() {
                    frames.push(FrameEvent::Line(residual));
                }
            }
        }
        if failed {
            self.close_conn(token);
            return;
        }
        for frame in frames {
            match frame {
                FrameEvent::Line(line) => self.handle_line(token, &line),
                FrameEvent::Oversized => self.reply_frame_too_large(token),
            }
        }
        // Flush pass: updates interest (EOF drops read interest so a
        // half-closed socket stops waking the loop) and closes the
        // connection if it is already fully answered.
        self.flush_conn(token);
    }

    fn conn_writable(&mut self, token: u64) {
        self.flush_conn(token);
    }

    /// Run admission control for one complete frame.
    fn handle_line(&mut self, token: u64, line: &[u8]) {
        let text = String::from_utf8_lossy(line);
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return;
        }
        let Some(shard) = self.conns.get(&token).map(|c| c.shard) else {
            return;
        };
        let Some(tx) = self.shard_tx.get(shard) else {
            return;
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let draining = self.shutdown.load(Ordering::Acquire);
        // Inline fast path: when nothing is queued or executing anywhere
        // on the worker pool, a bounded-cost request is cheaper to run
        // right here than to bounce through two thread handoffs (which
        // dominate the round trip — the eval itself is microseconds).
        // `Schedule` is exempt (unbounded annealing would stall the
        // loop), as is any frame whose action cannot be sniffed cheaply.
        if !draining && self.can_inline(shard, trimmed) {
            // The worker path records queue wait at pickup; inline
            // pickup is immediate, so the sample is zero by definition.
            self.metrics.queue_wait.record_duration(Duration::ZERO);
            let depth = self.shard_tx.iter().map(|tx| tx.len()).sum();
            let worker_count = self.shard_tx.len();
            let (reply, malformed) = execute(
                &self.service,
                trimmed,
                &self.metrics,
                &self.shutdown,
                self.addr,
                depth,
                worker_count,
                &self.rate,
                self.reconfig.as_deref(),
            );
            self.queue_reply(token, &encode_line(&reply), malformed);
            return;
        }
        match try_admit(
            trimmed,
            tx,
            seq,
            draining,
            &self.metrics,
            self.shed_retry_after_ms,
        ) {
            Admission::Queued { id } => {
                self.pending
                    .insert(seq, token, id, Instant::now() + self.request_timeout);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.inflight += 1;
                }
            }
            Admission::Reply(envelope) => {
                self.queue_reply(token, &encode_line(&envelope), false);
            }
        }
    }

    /// A frame may run inline on the reactor only when the whole pool
    /// is quiescent — no queued jobs, no executing worker, no pending
    /// replies — and its tag is positively identified as outside
    /// [`NEVER_INLINE`] (annealing and the disk-touching verbs). A
    /// frame whose tag cannot be sniffed queues: the worker's full
    /// parse decides what it is, and guessing "cheap" on the reactor
    /// would let an artifact verb fsync on the event loop.
    fn can_inline(&self, shard: usize, line: &str) -> bool {
        if !self.pending.is_empty() {
            return false;
        }
        let queued = self.shard_tx.get(shard).is_some_and(|tx| !tx.is_empty());
        let busy = self
            .shard_busy
            .get(shard)
            .is_some_and(|b| b.load(Ordering::Acquire));
        if queued || busy {
            return false;
        }
        sniff_action(line).is_some_and(|tag| !NEVER_INLINE.contains(&tag))
    }

    fn reply_frame_too_large(&mut self, token: u64) {
        self.metrics.oversized_frames.incr();
        self.metrics.errors.incr();
        let envelope = ResponseEnvelope {
            id: 0,
            response: Response::error(
                error_kind::FRAME_TOO_LARGE,
                format!("request line exceeds {} bytes", self.max_line_bytes),
            ),
        };
        self.queue_reply(token, &encode_line(&envelope), true);
    }

    /// Append a finished reply to the connection's write buffer and
    /// apply the strike rule. Deliberately does NOT flush: every caller
    /// runs inside a batch (a read's frame loop, a completion drain, an
    /// expiry sweep) and flushes once at the end, so a pipelined client
    /// costs one write syscall per batch instead of one per reply. A
    /// buffer past the high-water mark flushes eagerly anyway, bounding
    /// memory against a peer that writes but never reads.
    fn queue_reply(&mut self, token: u64, bytes: &[u8], malformed: bool) {
        const FLUSH_HIGH_WATER: usize = 64 * 1024;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if malformed {
            conn.strikes += 1;
        } else {
            conn.strikes = 0;
        }
        conn.wbuf.extend_from_slice(bytes);
        if conn.strikes >= self.max_consecutive_errors {
            self.metrics.dropped_connections.incr();
            conn.closing = true;
        }
        if conn.wbuf.len().saturating_sub(conn.wpos) >= FLUSH_HIGH_WATER {
            self.flush_conn(token);
        }
    }

    /// Write as much buffered output as the socket accepts, then settle
    /// the connection's fate: close when the strike budget is spent or
    /// the peer is gone and everything is answered, otherwise re-arm
    /// the poller with the right interest.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut failed = false;
        loop {
            let chunk = match conn.wbuf.get(conn.wpos..) {
                Some(c) if !c.is_empty() => c,
                _ => break,
            };
            match conn.stream.write(chunk) {
                Ok(0) => {
                    failed = true;
                    break;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if conn.wpos >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
        }
        let flushed = conn.wbuf.is_empty();
        let done = conn.closing || (conn.eof && conn.inflight == 0);
        if failed || (flushed && done) {
            self.close_conn(token);
        } else {
            self.update_interest(token);
        }
    }

    /// Re-arm the poller for this connection: read until EOF, write
    /// while output is buffered.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let readable = !conn.eof;
        let writable = !conn.wbuf.is_empty();
        if conn.interest != (readable, writable) {
            conn.interest = (readable, writable);
            let _ = self
                .poller
                .modify(conn.stream.as_raw_fd(), token, readable, writable);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            // Cancel in-flight requests: their late completions are
            // dropped (nobody is left to read the replies).
            self.pending.drop_conn(token);
        }
    }

    /// Deliver finished worker replies to their connections.
    fn drain_completions(&mut self) {
        let mut touched: Vec<u64> = Vec::new();
        while let Ok(completion) = self.completion_rx.try_recv() {
            // No pending entry: the request timed out (already answered)
            // or its connection closed. Either way the reply is dropped.
            let Some(p) = self.pending.complete(completion.seq) else {
                continue;
            };
            if let Some(conn) = self.conns.get_mut(&p.token) {
                conn.inflight = conn.inflight.saturating_sub(1);
            }
            self.queue_reply(p.token, &completion.bytes, completion.malformed);
            if !touched.contains(&p.token) {
                touched.push(p.token);
            }
        }
        for token in touched {
            self.flush_conn(token);
        }
    }

    /// Answer every admitted request whose deadline passed with a
    /// `timeout` error; the worker's eventual reply is dropped.
    fn expire_pending(&mut self) {
        let now = Instant::now();
        let mut touched: Vec<u64> = Vec::new();
        for p in self.pending.expire(now) {
            self.metrics.timeouts.incr();
            self.metrics.errors.incr();
            if let Some(conn) = self.conns.get_mut(&p.token) {
                conn.inflight = conn.inflight.saturating_sub(1);
            }
            let envelope = ResponseEnvelope {
                id: p.id,
                response: Response::error(
                    error_kind::TIMEOUT,
                    format!("no reply within {:?}", self.request_timeout),
                ),
            };
            self.queue_reply(p.token, &encode_line(&envelope), false);
            if !touched.contains(&p.token) {
                touched.push(p.token);
            }
        }
        for token in touched {
            self.flush_conn(token);
        }
    }
}

/// Parse and rate-gate one request line. `Err` carries the finished
/// reply plus whether it counts as a malformed-frame strike (boxed:
/// the happy path should not pay for the error reply's size).
fn precheck(
    line: &str,
    rate: &RateLimiter,
    metrics: &ServerMetrics,
) -> Result<RequestEnvelope, Box<(ResponseEnvelope, bool)>> {
    let envelope: RequestEnvelope = match decode_request(line) {
        Ok(env) => env,
        Err(e) => {
            metrics.errors.incr();
            return Err(Box::new((
                ResponseEnvelope {
                    id: 0,
                    response: Response::error(error_kind::BAD_REQUEST, e.to_string()),
                },
                true,
            )));
        }
    };
    if envelope.request.is_eval() {
        if let Err(wait) = rate.try_acquire() {
            metrics.rate_limited.incr();
            metrics.overloaded.incr();
            metrics.errors.incr();
            maybe_flag_shed_spike(metrics);
            return Err(Box::new((
                ResponseEnvelope {
                    id: envelope.id,
                    response: Response::shed(
                        error_kind::OVERLOADED,
                        "evaluation rate cap exceeded",
                        (wait.as_millis() as u64).max(1).max(rate.hint_ms()),
                    ),
                },
                false,
            )));
        }
    }
    Ok(envelope)
}

/// Parse, rate-gate, execute, and instrument one job on a worker.
/// Returns the reply and whether it was a malformed-frame strike.
#[allow(clippy::too_many_arguments)]
fn execute(
    service: &Arc<CbesService>,
    line: &str,
    metrics: &Arc<ServerMetrics>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
    queue_depth: usize,
    worker_count: usize,
    rate: &RateLimiter,
    reconfig: Option<&ReconfigRuntime>,
) -> (ResponseEnvelope, bool) {
    let envelope = match precheck(line, rate, metrics) {
        Ok(env) => env,
        Err(reply) => return *reply,
    };
    let id = envelope.id;
    let action_index = envelope.request.action_index();
    let picked_up = Instant::now();
    let response = {
        // A traced envelope joins the caller's trace: this request span
        // (and every child span it opens — core evaluation, scheduler)
        // carries the remote trace id and links to the remote parent.
        let _span = if envelope.trace_id != 0 {
            metrics.registry.spans().span_rooted(
                envelope.request.action(),
                envelope.trace_id,
                envelope.parent_span,
            )
        } else {
            metrics.registry.span(envelope.request.action())
        };
        handle_request(
            service,
            envelope.request,
            metrics,
            shutdown,
            addr,
            queue_depth,
            worker_count,
            reconfig,
        )
    };
    metrics.service_time.record_duration(picked_up.elapsed());
    if let Some(counter) = metrics.by_action.get(action_index) {
        counter.incr();
    }
    if matches!(response, Response::Error { .. }) {
        metrics.errors.incr();
    }
    metrics.served.incr();
    flight_checks(service, metrics, reconfig);
    (ResponseEnvelope { id, response }, false)
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    service: &Arc<CbesService>,
    index: usize,
    shards: &[Receiver<Job>],
    completion_tx: &Sender<Completion>,
    wake: &TcpStream,
    metrics: &Arc<ServerMetrics>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
    rate: &RateLimiter,
    reconfig: Option<&ReconfigRuntime>,
    shard_busy: &[AtomicBool],
) {
    let Some(own) = shards.get(index) else {
        return;
    };
    let worker_count = shards.len();
    // cbes-analyze: allow(blocking_hot_path, the worker's idle park on its own shard queue is the designed wait point; the reactor never calls recv)
    while let Ok(job) = own.recv() {
        if let Some(flag) = shard_busy.get(index) {
            flag.store(true, Ordering::Release);
        }
        metrics.queue_wait.record_duration(job.admitted.elapsed());
        let depth: usize = shards.iter().map(|r| r.len()).sum();
        let (reply, malformed) = execute(
            service,
            &job.line,
            metrics,
            shutdown,
            addr,
            depth,
            worker_count,
            rate,
            reconfig,
        );
        let _ = completion_tx.send(Completion {
            seq: job.seq,
            bytes: encode_line(&reply),
            malformed,
        });
        // Nudge the reactor; a full wake buffer is fine — unread bytes
        // already guarantee a wakeup.
        let mut w = wake;
        let _ = w.write(&[1u8]);
        if let Some(flag) = shard_busy.get(index) {
            flag.store(false, Ordering::Release);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_request(
    service: &Arc<CbesService>,
    request: Request,
    metrics: &Arc<ServerMetrics>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
    queue_depth: usize,
    worker_count: usize,
    reconfig: Option<&ReconfigRuntime>,
) -> Response {
    match request {
        Request::RegisterProfile { profile } => {
            let app = profile.name.clone();
            let procs = profile.num_procs();
            service.registry().insert(profile);
            Response::Registered { app, procs }
        }
        Request::Compare { app, mappings } => match service.compare_stamped(&app, &mappings) {
            Ok((epoch, predictions)) => Response::Predictions { epoch, predictions },
            Err(e) => Response::service_error(&e),
        },
        Request::BestOf { app, mappings } => match service.compare_stamped(&app, &mappings) {
            Ok((epoch, predictions)) => {
                let (index, prediction) = predictions
                    .into_iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.time.total_cmp(&b.time))
                    .expect("compare rejects empty requests");
                Response::Best {
                    epoch,
                    index,
                    prediction,
                }
            }
            Err(e) => Response::service_error(&e),
        },
        Request::Schedule {
            app,
            pool,
            iters,
            seed,
        } => {
            let profile = match service.registry().get(&app) {
                Some(p) => p,
                None => return Response::service_error(&cbes_core::ServiceError::UnknownApp(app)),
            };
            let pool: Vec<NodeId> = pool.into_iter().map(NodeId).collect();
            if let Some(bad) = pool.iter().find(|n| n.index() >= service.cluster().len()) {
                return Response::service_error(&cbes_core::ServiceError::BadNode(bad.0));
            }
            let cached = service.current_load();
            let epoch = cached.epoch;
            let snapshot = service.snapshot_of(&cached);
            let request = ScheduleRequest::new(&profile, &snapshot, &pool);
            let mut config = SaConfig::fast(seed);
            if iters > 0 {
                config.iters = iters;
            }
            match SaScheduler::new(config).schedule(&request) {
                Ok(result) => Response::Scheduled {
                    epoch,
                    mapping: result.mapping,
                    predicted_time: result.predicted_time,
                    evaluations: result.evaluations,
                },
                Err(e) => Response::error(error_kind::SCHED, e.to_string()),
            }
        }
        Request::ObserveLoad { load } => match service.observe_load(&load) {
            Ok(epoch) => Response::LoadObserved { epoch },
            Err(e) => Response::service_error(&e),
        },
        Request::ObservePartial { load, silent } => {
            let n = service.cluster().len();
            if let Some(&bad) = silent.iter().find(|&&s| s as usize >= n) {
                return Response::service_error(&cbes_core::ServiceError::BadNode(bad));
            }
            let mut reported = vec![true; n];
            for s in &silent {
                // Bounds pre-validated above; out-of-range ids already
                // returned a typed `BadNode` error.
                if let Some(flag) = reported.get_mut(*s as usize) {
                    *flag = false;
                }
            }
            match service.observe_load_partial(&load, &reported) {
                Ok(epoch) => Response::LoadObserved { epoch },
                Err(e) => Response::service_error(&e),
            }
        }
        Request::Stats => {
            let (healthy, suspect, down) = service.health_counts();
            Response::Stats {
                stats: StatsReport {
                    served: metrics.served.get(),
                    errors: metrics.errors.get(),
                    overloaded: metrics.overloaded.get(),
                    timeouts: metrics.timeouts.get(),
                    connections: metrics.connections.get(),
                    queue_depth,
                    workers: worker_count,
                    epoch: service.epoch(),
                    profiles: service.registry().len(),
                    observations: service.observations(),
                    healthy,
                    suspect,
                    down,
                    health_transitions: service.health_transitions(),
                    dropped_connections: metrics.dropped_connections.get(),
                    per_action: metrics.per_action(),
                    uptime_s: metrics.start.elapsed().as_secs_f64(),
                },
            }
        }
        Request::Metrics => Response::Metrics {
            metrics: metrics.snapshot(queue_depth),
        },
        Request::Shutdown => {
            trigger_shutdown(shutdown, addr);
            Response::ShuttingDown
        }
        // A standalone daemon is a degenerate one-instance tier: it owns
        // every routing key and leads itself. `cbes-router` answers these
        // three actions with the real multi-instance view.
        Request::Route { cluster, app } => Response::Routed {
            hash: route_key_hash(&cluster, &app),
            primary: self_instance(service, addr),
            replicas: Vec::new(),
        },
        Request::Replicate {
            epoch,
            load,
            silent,
        } => {
            let n = service.cluster().len();
            if let Some(&bad) = silent.iter().find(|&&s| s as usize >= n) {
                return Response::service_error(&cbes_core::ServiceError::BadNode(bad));
            }
            let reported = if silent.is_empty() {
                None
            } else {
                let mut mask = vec![true; n];
                for s in &silent {
                    // Bounds pre-validated above; out-of-range ids
                    // already returned a typed `BadNode` error.
                    if let Some(flag) = mask.get_mut(*s as usize) {
                        *flag = false;
                    }
                }
                Some(mask)
            };
            match service.observe_replicated(epoch, &load, reported.as_deref()) {
                Ok((epoch, applied)) => Response::Replicated { epoch, applied },
                Err(e) => Response::service_error(&e),
            }
        }
        Request::Membership => Response::Membership {
            membership: MembershipReport {
                cluster: service.cluster().name().to_string(),
                instances: vec![self_instance(service, addr)],
                leader: Some(0),
                max_epoch: service.epoch(),
                replication_lag: 0,
                heartbeats: 0,
                transitions: 0,
            },
        },
        Request::Batch { app, mappings } => match service.batch_stamped(&app, &mappings) {
            Ok((epoch, predictions)) => {
                metrics.batch_candidates.add(predictions.len() as u64);
                Response::Predictions { epoch, predictions }
            }
            Err(e) => Response::service_error(&e),
        },
        Request::Trace { trace_id } => {
            // Both rings can hold pieces of one trace: the request span
            // lands in the server registry, the evaluation spans beneath
            // it land in the global registry the library crates use.
            let mut spans: Vec<SpanSnapshot> = metrics
                .registry
                .spans()
                .of_trace(trace_id)
                .into_iter()
                .map(SpanSnapshot::from)
                .collect();
            spans.extend(
                Registry::global()
                    .spans()
                    .of_trace(trace_id)
                    .into_iter()
                    .map(SpanSnapshot::from),
            );
            spans.sort_by_key(|s| s.start_us);
            Response::Traces { trace_id, spans }
        }
        Request::DumpFlight => {
            match metrics
                .registry
                .flight()
                .dump("on_demand", metrics.registry.spans())
            {
                Ok((path, events)) => {
                    metrics.flight_dumps.incr();
                    Response::FlightDumped {
                        path: path.display().to_string(),
                        events: events as u64,
                    }
                }
                Err(e) => Response::error(error_kind::SERVICE, format!("flight dump failed: {e}")),
            }
        }
        Request::Stage { kind, payload } => match reconfig {
            Some(rt) => rt.handle_stage(&kind, &payload),
            None => not_reconfigurable(),
        },
        Request::Apply => match reconfig {
            Some(rt) => rt.handle_apply(metrics.overloaded.get()),
            None => not_reconfigurable(),
        },
        Request::Accept => match reconfig {
            Some(rt) => rt.handle_accept(),
            None => not_reconfigurable(),
        },
        Request::Rollback { reason } => match reconfig {
            Some(rt) => rt.handle_rollback(&reason, false),
            None => not_reconfigurable(),
        },
        Request::ArtifactStatus => match reconfig {
            Some(rt) => rt.handle_status(addr),
            None => unreconfigurable_status(addr),
        },
    }
}

/// The daemon's single-instance self view for `Route` / `Membership`
/// replies: always healthy (it answered), always the leader.
fn self_instance(service: &Arc<CbesService>, addr: SocketAddr) -> InstanceInfo {
    InstanceInfo {
        index: 0,
        addr: addr.to_string(),
        health: "healthy".to_string(),
        epoch: service.epoch(),
        leader: true,
        routed: 0,
        forwarded: 0,
        failed_over: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::encode;

    fn metrics() -> Arc<ServerMetrics> {
        Arc::new(ServerMetrics::new())
    }

    fn stats_line(id: u64) -> String {
        encode(&RequestEnvelope::new(id, Request::Stats))
    }

    fn error_kind_of(envelope: &ResponseEnvelope) -> &str {
        match &envelope.response {
            Response::Error { kind, .. } => kind,
            other => panic!("expected an error reply, got {other:?}"),
        }
    }

    #[test]
    fn peek_id_reads_the_envelope_id() {
        assert_eq!(peek_id(&stats_line(7)), 7);
        assert_eq!(peek_id("{\"id\" : 42, \"request\":\"Stats\"}"), 42);
        assert_eq!(peek_id("{not json"), 0, "no id to find");
        assert_eq!(peek_id("{\"request\":\"Stats\"}"), 0, "missing id");
        assert_eq!(peek_id("{\"id\":\"x\"}"), 0, "non-numeric id");
    }

    #[test]
    fn sniff_action_reads_the_wire_tag_of_real_encodings() {
        // Pin against actual serde encodings, not a hand-written shape:
        // the enum is externally tagged, so struct variants nest as
        // {"request":{"Schedule":{…}}} and unit variants as a string.
        let sched = encode(&RequestEnvelope::new(
            3,
            Request::Schedule {
                app: "ring".to_string(),
                pool: vec![0, 1],
                iters: 10,
                seed: 1,
            },
        ));
        assert_eq!(sniff_action(&sched), Some("Schedule"));
        let stats = stats_line(1);
        assert_eq!(
            sniff_action(&stats),
            Some("Stats"),
            "unit variants encode as a bare string tag"
        );
        let apply = encode(&RequestEnvelope::new(4, Request::Apply));
        assert_eq!(sniff_action(&apply), Some("Apply"));
        assert_eq!(sniff_action("{not json"), None);
    }

    #[test]
    fn unparseable_line_is_rejected_with_id_zero() {
        let m = metrics();
        let unlimited = RateLimiter::new(0.0);
        let (reply, malformed) =
            *precheck("{not json", &unlimited, &m).expect_err("parse must fail");
        assert_eq!(reply.id, 0);
        assert_eq!(error_kind_of(&reply), error_kind::BAD_REQUEST);
        assert!(malformed, "a parse failure is a framing strike");
        assert_eq!(m.errors.get(), 1);
    }

    #[test]
    fn try_admit_queues_with_the_peeked_id() {
        let (tx, rx) = channel::bounded::<Job>(1);
        let m = metrics();
        match try_admit(&stats_line(3), &tx, 11, false, &m, 25) {
            Admission::Queued { id } => assert_eq!(id, 3),
            Admission::Reply(r) => panic!("expected admission, got {r:?}"),
        }
        let job = rx.recv().expect("the job was queued");
        assert_eq!(job.seq, 11);
        assert_eq!(job.line, stats_line(3));
        assert_eq!(m.errors.get(), 0);
    }

    #[test]
    fn full_queue_is_answered_with_overloaded() {
        let (tx, _rx) = channel::bounded::<Job>(1);
        let m = metrics();
        match try_admit(&stats_line(1), &tx, 1, false, &m, 25) {
            Admission::Queued { .. } => {}
            Admission::Reply(r) => panic!("first admit must queue, got {r:?}"),
        }
        let reply = match try_admit(&stats_line(7), &tx, 2, false, &m, 25) {
            Admission::Reply(r) => r,
            Admission::Queued { .. } => panic!("the one-slot queue was full"),
        };
        assert_eq!(reply.id, 7, "overload reply still echoes the id");
        assert_eq!(error_kind_of(&reply), error_kind::OVERLOADED);
        assert_eq!(m.overloaded.get(), 1);
        match &reply.response {
            Response::Error { retry_after_ms, .. } => {
                assert_eq!(*retry_after_ms, 25, "shed replies carry the back-off hint");
            }
            other => panic!("expected an error reply, got {other:?}"),
        }
    }

    #[test]
    fn draining_or_disconnected_queue_means_shutting_down() {
        let (tx, rx) = channel::bounded::<Job>(1);
        let m = metrics();
        // Draining sheds without consuming a queue slot.
        let reply = match try_admit(&stats_line(5), &tx, 1, true, &m, 25) {
            Admission::Reply(r) => r,
            Admission::Queued { .. } => panic!("a draining server must not admit"),
        };
        assert_eq!(reply.id, 5);
        assert_eq!(error_kind_of(&reply), error_kind::SHUTTING_DOWN);
        assert_eq!(rx.len(), 0);
        // A disconnected shard (workers gone) sheds the same way.
        drop(rx);
        let reply = match try_admit(&stats_line(6), &tx, 2, false, &m, 25) {
            Admission::Reply(r) => r,
            Admission::Queued { .. } => panic!("a dead shard must not admit"),
        };
        assert_eq!(error_kind_of(&reply), error_kind::SHUTTING_DOWN);
    }

    #[test]
    fn pending_table_completes_expires_and_cancels() {
        let mut t = PendingTable::new();
        let now = Instant::now();
        t.insert(1, 100, 11, now + Duration::from_millis(10));
        t.insert(2, 100, 12, now + Duration::from_secs(60));
        t.insert(3, 200, 13, now + Duration::from_secs(60));
        assert_eq!(t.next_deadline(), Some(now + Duration::from_millis(10)));
        let p = t.complete(1).expect("live entry");
        assert_eq!((p.token, p.id), (100, 11));
        assert!(t.complete(1).is_none(), "a reply is delivered exactly once");
        t.drop_conn(200);
        assert!(t.complete(3).is_none(), "cancelled with its connection");
        assert!(t.expire(now).is_empty(), "nothing is due yet");
        let due = t.expire(now + Duration::from_secs(120));
        assert_eq!(due.len(), 1, "only the live entry expires");
        assert_eq!(due.first().map(|p| p.id), Some(12));
        assert!(t.is_empty());
        assert_eq!(t.next_deadline(), None, "the heap backlog is cleared");
    }

    #[test]
    fn frame_buf_reassembles_split_and_pipelined_frames() {
        let mut fb = FrameBuf::new();
        let mut out = Vec::new();
        fb.ingest(b"{\"id\":1}\n{\"id\"", 1024, &mut out);
        fb.ingest(b":2}\n{\"id\":3}", 1024, &mut out);
        fb.ingest(b"\n", 1024, &mut out);
        let lines: Vec<String> = out
            .iter()
            .map(|f| match f {
                FrameEvent::Line(l) => String::from_utf8_lossy(l).to_string(),
                FrameEvent::Oversized => panic!("no oversized frames here"),
            })
            .collect();
        assert_eq!(lines, ["{\"id\":1}", "{\"id\":2}", "{\"id\":3}"]);
        assert!(fb.take_residual().is_none());
    }

    #[test]
    fn frame_buf_discards_oversized_frames_to_the_next_newline() {
        let mut fb = FrameBuf::new();
        let mut out = Vec::new();
        // A frame that never ends trips the cap mid-stream...
        fb.ingest(&[b'x'; 2000], 1024, &mut out);
        assert!(matches!(out.as_slice(), [FrameEvent::Oversized]));
        // ...its tail is discarded up to the newline, then service resumes.
        out.clear();
        fb.ingest(b"tail of the huge frame\nok\n", 1024, &mut out);
        match out.as_slice() {
            [FrameEvent::Line(l)] => assert_eq!(l.as_slice(), b"ok"),
            other => panic!("expected one line, got {} events", other.len()),
        }
        // A complete (newline-terminated) over-cap frame needs no
        // discard state at all.
        out.clear();
        let mut big = vec![b'y'; 2000];
        big.push(b'\n');
        big.extend_from_slice(b"{\"id\":9}\n");
        fb.ingest(&big, 1024, &mut out);
        assert!(matches!(
            out.as_slice(),
            [FrameEvent::Oversized, FrameEvent::Line(_)]
        ));
    }

    #[test]
    fn snapshot_merges_global_registry_and_names_instruments() {
        let m = metrics();
        m.served.add(3);
        m.queue_wait.record(120);
        m.service_time.record(450);
        Registry::global()
            .counter("obs.server_test.global_marker")
            .incr();
        let snap = m.snapshot(2);
        assert_eq!(snap.counters["server.served"], 3);
        assert_eq!(snap.gauges["server.queue_depth"], 2.0);
        assert_eq!(snap.histograms["server.queue_wait_us"].count, 1);
        assert_eq!(snap.histograms["server.service_time_us"].count, 1);
        assert!(
            snap.counters["obs.server_test.global_marker"] >= 1,
            "global registry instruments appear in the merged snapshot"
        );
    }

    #[test]
    fn rate_limiter_drains_its_burst_and_refills() {
        let limiter = RateLimiter::new(10.0); // burst = 2.5 tokens
        assert!(limiter.try_acquire().is_ok());
        assert!(limiter.try_acquire().is_ok());
        let wait = limiter
            .try_acquire()
            .expect_err("the burst is spent after two tokens");
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(100));
        std::thread::sleep(Duration::from_millis(150));
        assert!(limiter.try_acquire().is_ok(), "tokens refill over time");
    }

    #[test]
    fn rate_cap_sheds_eval_requests_but_exempts_control_plane() {
        let m = metrics();
        let rate = RateLimiter::new(0.001); // burst = 1 token
        let compare_line = encode(&RequestEnvelope::new(
            11,
            Request::Compare {
                app: "lu".into(),
                mappings: vec![],
            },
        ));
        assert!(
            precheck(&compare_line, &rate, &m).is_ok(),
            "the first eval spends the only token"
        );
        let (reply, malformed) =
            *precheck(&compare_line, &rate, &m).expect_err("the second eval is capped");
        assert_eq!(reply.id, 11);
        assert_eq!(error_kind_of(&reply), error_kind::OVERLOADED);
        assert!(!malformed, "a shed is not a framing strike");
        match &reply.response {
            Response::Error { retry_after_ms, .. } => {
                assert!(
                    *retry_after_ms >= 1,
                    "a time-to-next-token hint is attached"
                )
            }
            other => panic!("expected an error reply, got {other:?}"),
        }
        assert_eq!(m.rate_limited.get(), 1);
        assert_eq!(m.overloaded.get(), 1);
        // Control plane bypasses the cap entirely.
        assert!(precheck(&stats_line(12), &rate, &m).is_ok());
        assert_eq!(m.rate_limited.get(), 1, "the cap did not fire again");
        // A runtime retune to unlimited lifts the cap mid-flight.
        rate.set_limits(0.0, 0);
        assert!(precheck(&compare_line, &rate, &m).is_ok());
        assert!(precheck(&compare_line, &rate, &m).is_ok());
        assert_eq!(m.rate_limited.get(), 1, "unlimited admits every eval");
    }

    #[test]
    fn per_action_report_covers_every_action() {
        let m = metrics();
        m.by_action[Request::Stats.action_index()].incr();
        let report = m.per_action();
        assert_eq!(report.len(), ACTIONS.len());
        assert_eq!(report["stats"], 1);
        assert!(ACTIONS.iter().all(|a| report.contains_key(*a)));
    }
}
