//! The daemon: a TCP acceptor, per-connection reader threads, and a
//! fixed worker pool draining a bounded admission queue.
//!
//! Admission control: a connection thread parses one line, wraps it in a
//! job with a single-slot reply channel, and `try_send`s it into the
//! bounded queue. A full queue is answered immediately with a structured
//! `overloaded` error — the connection never blocks the queue — and an
//! admitted request that misses the per-request timeout gets a `timeout`
//! error (the worker's late reply is dropped with the job's channel).
//!
//! Shutdown: a `Shutdown` request (or [`ServerHandle::shutdown`]) flips
//! the flag and wakes the acceptor. Connection readers notice the flag
//! within one poll interval and drop their queue senders; workers drain
//! whatever was admitted and exit when the queue disconnects. Every
//! admitted request is answered.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cbes_cluster::NodeId;
use cbes_core::CbesService;
use cbes_obs::{names, Counter, Histogram, MetricsSnapshot, Registry};
use cbes_sched::{SaConfig, SaScheduler, ScheduleRequest, Scheduler};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};

use crate::protocol::{
    encode, error_kind, route_key_hash, InstanceInfo, MembershipReport, Request, RequestEnvelope,
    Response, ResponseEnvelope, StatsReport, ACTIONS,
};
use parking_lot::Mutex;

/// How often blocked connection readers re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue capacity; beyond it requests get `overloaded`.
    pub queue_capacity: usize,
    /// Per-request deadline from admission to reply.
    pub request_timeout: Duration,
    /// Longest request line accepted, in bytes. Longer frames are
    /// answered with a `frame_too_large` error and discarded up to the
    /// next newline, bounding per-connection memory.
    pub max_line_bytes: usize,
    /// Consecutive malformed frames (unparseable or oversized) tolerated
    /// on one connection before the server drops it.
    pub max_consecutive_errors: u32,
    /// Back-off hint attached to load-shedding (`overloaded` /
    /// `shutting_down`) replies as `retry_after_ms`.
    pub shed_retry_after: Duration,
    /// Evaluation admission cap in requests per second (token bucket;
    /// `0.0` disables the cap). Only evaluation actions
    /// ([`Request::is_eval`]) consume tokens — control-plane traffic
    /// (stats heartbeats, membership, replication, shutdown) is always
    /// admitted, so a saturated instance still answers its tier. Capped
    /// requests beyond the budget are shed with `overloaded` and a
    /// `retry_after_ms` hint equal to the time until the next token.
    pub max_rps: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 1024,
            request_timeout: Duration::from_secs(10),
            max_line_bytes: 64 * 1024,
            max_consecutive_errors: 8,
            shed_retry_after: Duration::from_millis(25),
            max_rps: 0.0,
        }
    }
}

/// A token bucket bounding admitted evaluation requests per second —
/// the per-instance share of a node's CPU budget when several CBES
/// instances (or co-tenant workloads) share a machine. Refills
/// continuously at `rate` tokens/s up to a burst of a quarter-second's
/// worth (at least one token).
#[derive(Debug)]
struct RateLimiter {
    rate: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    refilled: Instant,
}

impl RateLimiter {
    fn new(rate_per_s: f64) -> Self {
        let rate = rate_per_s.max(0.001);
        let burst = (rate * 0.25).max(1.0);
        RateLimiter {
            rate,
            burst,
            state: Mutex::new(BucketState {
                tokens: burst,
                refilled: Instant::now(),
            }),
        }
    }

    /// Take one token, or report how long until one is available.
    fn try_acquire(&self) -> Result<(), Duration> {
        let mut s = self.state.lock();
        let now = Instant::now();
        let dt = now.duration_since(s.refilled).as_secs_f64();
        s.tokens = (s.tokens + dt * self.rate).min(self.burst);
        s.refilled = now;
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64((1.0 - s.tokens) / self.rate))
        }
    }
}

/// The per-connection slice of [`ServerConfig`], cloned into each
/// connection reader thread.
#[derive(Debug, Clone)]
struct ConnPolicy {
    timeout: Duration,
    max_line_bytes: usize,
    max_consecutive_errors: u32,
    shed_retry_after_ms: u64,
    /// Shared evaluation-rate token bucket; `None` when uncapped.
    rate: Option<Arc<RateLimiter>>,
}

impl ConnPolicy {
    fn from_config(config: &ServerConfig) -> Self {
        ConnPolicy {
            timeout: config.request_timeout,
            max_line_bytes: config.max_line_bytes.max(1),
            max_consecutive_errors: config.max_consecutive_errors.max(1),
            shed_retry_after_ms: config.shed_retry_after.as_millis() as u64,
            rate: (config.max_rps > 0.0).then(|| Arc::new(RateLimiter::new(config.max_rps))),
        }
    }
}

/// The server's instruments: a private [`Registry`] per server instance
/// (so several servers in one process never mix counts) with the
/// hot-path handles cached as `Arc`s — readers and workers update them
/// wait-free, without touching the registry lock.
struct ServerMetrics {
    registry: Registry,
    served: Arc<Counter>,
    errors: Arc<Counter>,
    overloaded: Arc<Counter>,
    timeouts: Arc<Counter>,
    connections: Arc<Counter>,
    /// Connections dropped for exhausting their malformed-frame budget.
    dropped_connections: Arc<Counter>,
    /// Request lines rejected for exceeding the length cap.
    oversized_frames: Arc<Counter>,
    /// Admitted-rate cap sheds (a subset of `overloaded`).
    rate_limited: Arc<Counter>,
    /// Microseconds from admission to worker pickup.
    queue_wait: Arc<Histogram>,
    /// Microseconds a worker spent computing the reply.
    service_time: Arc<Histogram>,
    /// Served-request counters, index-aligned with [`ACTIONS`].
    by_action: Vec<Arc<Counter>>,
    start: Instant,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        ServerMetrics {
            served: registry.counter(names::SERVER_SERVED),
            errors: registry.counter(names::SERVER_ERRORS),
            overloaded: registry.counter(names::SERVER_OVERLOADED),
            timeouts: registry.counter(names::SERVER_TIMEOUTS),
            connections: registry.counter(names::SERVER_CONNECTIONS),
            dropped_connections: registry.counter(names::SERVER_DROPPED_CONNECTIONS),
            oversized_frames: registry.counter(names::SERVER_OVERSIZED_FRAMES),
            rate_limited: registry.counter(names::SERVER_RATE_LIMITED),
            queue_wait: registry.histogram(names::SERVER_QUEUE_WAIT_US),
            service_time: registry.histogram(names::SERVER_SERVICE_TIME_US),
            by_action: names::SERVER_ACTION_COUNTERS
                .iter()
                .map(|n| registry.counter(n))
                .collect(),
            start: Instant::now(),
            registry,
        }
    }

    fn per_action(&self) -> BTreeMap<String, u64> {
        ACTIONS
            .iter()
            .zip(&self.by_action)
            .map(|(name, c)| (name.to_string(), c.get()))
            .collect()
    }

    /// This server's instruments merged with the process-wide registry
    /// (the library crates — core, netmodel — record there).
    fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        self.registry
            .gauge(names::SERVER_QUEUE_DEPTH)
            .set(queue_depth as f64);
        let mut snap = self.registry.snapshot();
        snap.merge(&Registry::global().snapshot());
        snap
    }
}

struct Job {
    envelope: RequestEnvelope,
    reply: Sender<ResponseEnvelope>,
    /// When the reader pushed this job into the queue; queue wait is
    /// measured from here to worker pickup.
    admitted: Instant,
}

/// The CBES daemon. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns the threads.
pub struct Server;

impl Server {
    /// Bind `config.addr` and serve `service` until shut down.
    pub fn start(service: Arc<CbesService>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::new());
        let (job_tx, job_rx) = channel::bounded::<Job>(config.queue_capacity);

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let service = service.clone();
                let job_rx = job_rx.clone();
                let metrics = metrics.clone();
                let shutdown = shutdown.clone();
                let worker_count = config.workers.max(1);
                std::thread::spawn(move || {
                    worker_loop(&service, &job_rx, &metrics, &shutdown, addr, worker_count)
                })
            })
            .collect();
        drop(job_rx);

        let acceptor = {
            let shutdown = shutdown.clone();
            let metrics = metrics.clone();
            let policy = ConnPolicy::from_config(&config);
            std::thread::spawn(move || accept_loop(&listener, job_tx, &metrics, &shutdown, policy))
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            metrics,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// Running-server handle: address, shutdown trigger, thread ownership.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once shutdown has been triggered (by request or locally).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Trigger shutdown without waiting for the drain.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shutdown, self.addr);
    }

    /// Wait until the server has fully drained and every thread exited.
    /// Returns the final counter values.
    pub fn join(mut self) -> (u64, u64) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        (self.metrics.served.get(), self.metrics.errors.get())
    }

    /// Trigger shutdown and wait for the drain.
    pub fn shutdown_and_join(self) -> (u64, u64) {
        self.shutdown();
        self.join()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Un-joined handle going away: stop the threads, don't wait.
        trigger_shutdown(&self.shutdown, self.addr);
    }
}

fn trigger_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    if !shutdown.swap(true, Ordering::AcqRel) {
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(addr);
    }
}

fn accept_loop(
    listener: &TcpListener,
    job_tx: Sender<Job>,
    metrics: &Arc<ServerMetrics>,
    shutdown: &Arc<AtomicBool>,
    policy: ConnPolicy,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                metrics.connections.incr();
                let job_tx = job_tx.clone();
                let metrics = metrics.clone();
                let shutdown = shutdown.clone();
                let policy = policy.clone();
                std::thread::spawn(move || {
                    handle_connection(stream, &job_tx, &metrics, &shutdown, policy)
                });
            }
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
    // Dropping the acceptor's sender lets workers disconnect once every
    // connection reader has exited too.
}

fn handle_connection(
    stream: TcpStream,
    job_tx: &Sender<Job>,
    metrics: &Arc<ServerMetrics>,
    shutdown: &Arc<AtomicBool>,
    policy: ConnPolicy,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    // Consecutive malformed frames on this connection; reset by any
    // well-framed request, fatal past the policy budget.
    let mut strikes: u32 = 0;

    'conn: loop {
        line.clear();
        let mut oversized = false;
        // Poll for one full line, re-checking the shutdown flag whenever
        // the read times out. read_line only returns Ok at a newline or
        // EOF, so partial reads accumulate in `line` across timeouts; the
        // length cap is enforced on every timeout tick and again once the
        // line completes, so a frame that never ends cannot grow without
        // bound — its bytes are discarded until the newline arrives.
        loop {
            if shutdown.load(Ordering::Acquire) {
                break 'conn;
            }
            match reader.read_line(&mut line) {
                Ok(0) => {
                    if line.trim().is_empty() && !oversized {
                        break 'conn; // clean EOF
                    }
                    break; // final line without trailing newline
                }
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if line.len() > policy.max_line_bytes {
                        oversized = true;
                        line.clear(); // discard; keep reading to the newline
                    }
                    continue;
                }
                Err(_) => break 'conn,
            }
        }
        let reply = if oversized || line.len() > policy.max_line_bytes {
            metrics.oversized_frames.incr();
            metrics.errors.incr();
            ResponseEnvelope {
                id: 0,
                response: Response::error(
                    error_kind::FRAME_TOO_LARGE,
                    format!("request line exceeds {} bytes", policy.max_line_bytes),
                ),
            }
        } else {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            admit(trimmed, job_tx, metrics, &policy)
        };
        let malformed = matches!(
            &reply.response,
            Response::Error { kind, .. }
                if kind == error_kind::BAD_REQUEST || kind == error_kind::FRAME_TOO_LARGE
        );
        if malformed {
            strikes += 1;
        } else {
            strikes = 0;
        }
        let mut out = encode(&reply);
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if strikes >= policy.max_consecutive_errors {
            metrics.dropped_connections.incr();
            break;
        }
    }
}

/// Parse one line and push it through admission control, producing
/// exactly one reply.
fn admit(
    line: &str,
    job_tx: &Sender<Job>,
    metrics: &Arc<ServerMetrics>,
    policy: &ConnPolicy,
) -> ResponseEnvelope {
    let envelope: RequestEnvelope = match serde_json::from_str(line) {
        Ok(env) => env,
        Err(e) => {
            metrics.errors.incr();
            return ResponseEnvelope {
                id: 0,
                response: Response::error(error_kind::BAD_REQUEST, e.to_string()),
            };
        }
    };
    let id = envelope.id;
    if envelope.request.is_eval() {
        if let Some(limiter) = policy.rate.as_ref() {
            if let Err(wait) = limiter.try_acquire() {
                metrics.rate_limited.incr();
                metrics.overloaded.incr();
                metrics.errors.incr();
                return ResponseEnvelope {
                    id,
                    response: Response::shed(
                        error_kind::OVERLOADED,
                        "evaluation rate cap exceeded",
                        (wait.as_millis() as u64).max(1),
                    ),
                };
            }
        }
    }
    let (reply_tx, reply_rx) = channel::bounded::<ResponseEnvelope>(1);
    match job_tx.try_send(Job {
        envelope,
        reply: reply_tx,
        admitted: Instant::now(),
    }) {
        Ok(()) => match reply_rx.recv_timeout(policy.timeout) {
            Ok(reply) => reply,
            Err(_) => {
                metrics.timeouts.incr();
                metrics.errors.incr();
                ResponseEnvelope {
                    id,
                    response: Response::error(
                        error_kind::TIMEOUT,
                        format!("no reply within {:?}", policy.timeout),
                    ),
                }
            }
        },
        Err(TrySendError::Full(_)) => {
            metrics.overloaded.incr();
            metrics.errors.incr();
            ResponseEnvelope {
                id,
                response: Response::shed(
                    error_kind::OVERLOADED,
                    "admission queue is full",
                    policy.shed_retry_after_ms,
                ),
            }
        }
        Err(TrySendError::Disconnected(_)) => {
            metrics.errors.incr();
            ResponseEnvelope {
                id,
                response: Response::shed(
                    error_kind::SHUTTING_DOWN,
                    "server is draining",
                    policy.shed_retry_after_ms,
                ),
            }
        }
    }
}

fn worker_loop(
    service: &Arc<CbesService>,
    job_rx: &Receiver<Job>,
    metrics: &Arc<ServerMetrics>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
    worker_count: usize,
) {
    while let Ok(job) = job_rx.recv() {
        metrics.queue_wait.record_duration(job.admitted.elapsed());
        let id = job.envelope.id;
        let action_index = job.envelope.request.action_index();
        let picked_up = Instant::now();
        let response = {
            let _span = metrics.registry.span(job.envelope.request.action());
            handle_request(
                service,
                job.envelope.request,
                metrics,
                shutdown,
                addr,
                job_rx.len(),
                worker_count,
            )
        };
        metrics.service_time.record_duration(picked_up.elapsed());
        if let Some(counter) = metrics.by_action.get(action_index) {
            counter.incr();
        }
        if matches!(response, Response::Error { .. }) {
            metrics.errors.incr();
        }
        metrics.served.incr();
        // The reader may have timed out and dropped the receiver; that
        // counts as its reply, so a failed send is fine here.
        let _ = job.reply.send(ResponseEnvelope { id, response });
    }
}

fn handle_request(
    service: &Arc<CbesService>,
    request: Request,
    metrics: &Arc<ServerMetrics>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
    queue_depth: usize,
    worker_count: usize,
) -> Response {
    match request {
        Request::RegisterProfile { profile } => {
            let app = profile.name.clone();
            let procs = profile.num_procs();
            service.registry().insert(profile);
            Response::Registered { app, procs }
        }
        Request::Compare { app, mappings } => match service.compare_stamped(&app, &mappings) {
            Ok((epoch, predictions)) => Response::Predictions { epoch, predictions },
            Err(e) => Response::service_error(&e),
        },
        Request::BestOf { app, mappings } => match service.compare_stamped(&app, &mappings) {
            Ok((epoch, predictions)) => {
                let (index, prediction) = predictions
                    .into_iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.time.total_cmp(&b.time))
                    .expect("compare rejects empty requests");
                Response::Best {
                    epoch,
                    index,
                    prediction,
                }
            }
            Err(e) => Response::service_error(&e),
        },
        Request::Schedule {
            app,
            pool,
            iters,
            seed,
        } => {
            let profile = match service.registry().get(&app) {
                Some(p) => p,
                None => return Response::service_error(&cbes_core::ServiceError::UnknownApp(app)),
            };
            let pool: Vec<NodeId> = pool.into_iter().map(NodeId).collect();
            if let Some(bad) = pool.iter().find(|n| n.index() >= service.cluster().len()) {
                return Response::service_error(&cbes_core::ServiceError::BadNode(bad.0));
            }
            let (epoch, snapshot) = service.snapshot_stamped();
            let request = ScheduleRequest::new(&profile, &snapshot, &pool);
            let mut config = SaConfig::fast(seed);
            if iters > 0 {
                config.iters = iters;
            }
            match SaScheduler::new(config).schedule(&request) {
                Ok(result) => Response::Scheduled {
                    epoch,
                    mapping: result.mapping,
                    predicted_time: result.predicted_time,
                    evaluations: result.evaluations,
                },
                Err(e) => Response::error(error_kind::SCHED, e.to_string()),
            }
        }
        Request::ObserveLoad { load } => match service.observe_load(&load) {
            Ok(epoch) => Response::LoadObserved { epoch },
            Err(e) => Response::service_error(&e),
        },
        Request::ObservePartial { load, silent } => {
            let n = service.cluster().len();
            if let Some(&bad) = silent.iter().find(|&&s| s as usize >= n) {
                return Response::service_error(&cbes_core::ServiceError::BadNode(bad));
            }
            let mut reported = vec![true; n];
            for s in &silent {
                // Bounds pre-validated above; out-of-range ids already
                // returned a typed `BadNode` error.
                if let Some(flag) = reported.get_mut(*s as usize) {
                    *flag = false;
                }
            }
            match service.observe_load_partial(&load, &reported) {
                Ok(epoch) => Response::LoadObserved { epoch },
                Err(e) => Response::service_error(&e),
            }
        }
        Request::Stats => {
            let (healthy, suspect, down) = service.health_counts();
            Response::Stats {
                stats: StatsReport {
                    served: metrics.served.get(),
                    errors: metrics.errors.get(),
                    overloaded: metrics.overloaded.get(),
                    timeouts: metrics.timeouts.get(),
                    connections: metrics.connections.get(),
                    queue_depth,
                    workers: worker_count,
                    epoch: service.epoch(),
                    profiles: service.registry().len(),
                    observations: service.observations(),
                    healthy,
                    suspect,
                    down,
                    health_transitions: service.health_transitions(),
                    dropped_connections: metrics.dropped_connections.get(),
                    per_action: metrics.per_action(),
                    uptime_s: metrics.start.elapsed().as_secs_f64(),
                },
            }
        }
        Request::Metrics => Response::Metrics {
            metrics: metrics.snapshot(queue_depth),
        },
        Request::Shutdown => {
            trigger_shutdown(shutdown, addr);
            Response::ShuttingDown
        }
        // A standalone daemon is a degenerate one-instance tier: it owns
        // every routing key and leads itself. `cbes-router` answers these
        // three actions with the real multi-instance view.
        Request::Route { cluster, app } => Response::Routed {
            hash: route_key_hash(&cluster, &app),
            primary: self_instance(service, addr),
            replicas: Vec::new(),
        },
        Request::Replicate {
            epoch,
            load,
            silent,
        } => {
            let n = service.cluster().len();
            if let Some(&bad) = silent.iter().find(|&&s| s as usize >= n) {
                return Response::service_error(&cbes_core::ServiceError::BadNode(bad));
            }
            let reported = if silent.is_empty() {
                None
            } else {
                let mut mask = vec![true; n];
                for s in &silent {
                    // Bounds pre-validated above; out-of-range ids
                    // already returned a typed `BadNode` error.
                    if let Some(flag) = mask.get_mut(*s as usize) {
                        *flag = false;
                    }
                }
                Some(mask)
            };
            match service.observe_replicated(epoch, &load, reported.as_deref()) {
                Ok((epoch, applied)) => Response::Replicated { epoch, applied },
                Err(e) => Response::service_error(&e),
            }
        }
        Request::Membership => Response::Membership {
            membership: MembershipReport {
                cluster: service.cluster().name().to_string(),
                instances: vec![self_instance(service, addr)],
                leader: Some(0),
                max_epoch: service.epoch(),
                replication_lag: 0,
                heartbeats: 0,
                transitions: 0,
            },
        },
    }
}

/// The daemon's single-instance self view for `Route` / `Membership`
/// replies: always healthy (it answered), always the leader.
fn self_instance(service: &Arc<CbesService>, addr: SocketAddr) -> InstanceInfo {
    InstanceInfo {
        index: 0,
        addr: addr.to_string(),
        health: "healthy".to_string(),
        epoch: service.epoch(),
        leader: true,
        routed: 0,
        forwarded: 0,
        failed_over: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Arc<ServerMetrics> {
        Arc::new(ServerMetrics::new())
    }

    fn policy(timeout: Duration) -> ConnPolicy {
        ConnPolicy {
            timeout,
            max_line_bytes: 64 * 1024,
            max_consecutive_errors: 8,
            shed_retry_after_ms: 25,
            rate: None,
        }
    }

    fn stats_line(id: u64) -> String {
        encode(&RequestEnvelope {
            id,
            request: Request::Stats,
        })
    }

    fn error_kind_of(envelope: &ResponseEnvelope) -> &str {
        match &envelope.response {
            Response::Error { kind, .. } => kind,
            other => panic!("expected an error reply, got {other:?}"),
        }
    }

    #[test]
    fn unparseable_line_is_rejected_with_id_zero() {
        let (tx, _rx) = channel::bounded::<Job>(1);
        let m = metrics();
        let reply = admit("{not json", &tx, &m, &policy(Duration::from_millis(10)));
        assert_eq!(reply.id, 0);
        assert_eq!(error_kind_of(&reply), error_kind::BAD_REQUEST);
        assert_eq!(m.errors.get(), 1);
    }

    #[test]
    fn full_queue_is_answered_with_overloaded() {
        let (tx, _rx) = channel::bounded::<Job>(1);
        let (dummy_tx, _dummy_rx) = channel::bounded(1);
        assert!(tx
            .try_send(Job {
                envelope: RequestEnvelope {
                    id: 1,
                    request: Request::Stats,
                },
                reply: dummy_tx,
                admitted: Instant::now(),
            })
            .is_ok());
        let m = metrics();
        let reply = admit(&stats_line(7), &tx, &m, &policy(Duration::from_millis(10)));
        assert_eq!(reply.id, 7, "overload reply still echoes the id");
        assert_eq!(error_kind_of(&reply), error_kind::OVERLOADED);
        assert_eq!(m.overloaded.get(), 1);
        match &reply.response {
            Response::Error { retry_after_ms, .. } => {
                assert_eq!(*retry_after_ms, 25, "shed replies carry the back-off hint");
            }
            other => panic!("expected an error reply, got {other:?}"),
        }
    }

    #[test]
    fn admitted_but_unanswered_request_times_out() {
        let (tx, rx) = channel::bounded::<Job>(1);
        let m = metrics();
        // No worker drains `rx`, so the reply never comes.
        let reply = admit(&stats_line(3), &tx, &m, &policy(Duration::from_millis(20)));
        assert_eq!(reply.id, 3);
        assert_eq!(error_kind_of(&reply), error_kind::TIMEOUT);
        assert_eq!(m.timeouts.get(), 1);
        assert_eq!(rx.len(), 1, "the job itself was admitted");
    }

    #[test]
    fn disconnected_queue_means_shutting_down() {
        let (tx, rx) = channel::bounded::<Job>(1);
        drop(rx);
        let m = metrics();
        let reply = admit(&stats_line(5), &tx, &m, &policy(Duration::from_millis(10)));
        assert_eq!(reply.id, 5);
        assert_eq!(error_kind_of(&reply), error_kind::SHUTTING_DOWN);
    }

    #[test]
    fn snapshot_merges_global_registry_and_names_instruments() {
        let m = metrics();
        m.served.add(3);
        m.queue_wait.record(120);
        m.service_time.record(450);
        Registry::global()
            .counter("obs.server_test.global_marker")
            .incr();
        let snap = m.snapshot(2);
        assert_eq!(snap.counters["server.served"], 3);
        assert_eq!(snap.gauges["server.queue_depth"], 2.0);
        assert_eq!(snap.histograms["server.queue_wait_us"].count, 1);
        assert_eq!(snap.histograms["server.service_time_us"].count, 1);
        assert!(
            snap.counters["obs.server_test.global_marker"] >= 1,
            "global registry instruments appear in the merged snapshot"
        );
    }

    #[test]
    fn rate_limiter_drains_its_burst_and_refills() {
        let limiter = RateLimiter::new(10.0); // burst = 2.5 tokens
        assert!(limiter.try_acquire().is_ok());
        assert!(limiter.try_acquire().is_ok());
        let wait = limiter
            .try_acquire()
            .expect_err("the burst is spent after two tokens");
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(100));
        std::thread::sleep(Duration::from_millis(150));
        assert!(limiter.try_acquire().is_ok(), "tokens refill over time");
    }

    #[test]
    fn rate_cap_sheds_eval_requests_but_exempts_control_plane() {
        let (tx, _rx) = channel::bounded::<Job>(1);
        let m = metrics();
        let mut p = policy(Duration::from_millis(10));
        p.rate = Some(Arc::new(RateLimiter::new(0.001))); // burst = 1 token
        let compare_line = encode(&RequestEnvelope {
            id: 11,
            request: Request::Compare {
                app: "lu".into(),
                mappings: vec![],
            },
        });
        // First eval spends the only token (then times out unanswered —
        // no worker drains the queue here).
        let first = admit(&compare_line, &tx, &m, &p);
        assert_eq!(error_kind_of(&first), error_kind::TIMEOUT);
        // Second eval is shed by the cap, with a time-to-next-token hint.
        let second = admit(&compare_line, &tx, &m, &p);
        assert_eq!(error_kind_of(&second), error_kind::OVERLOADED);
        assert_eq!(m.rate_limited.get(), 1);
        assert_eq!(m.overloaded.get(), 1);
        match &second.response {
            Response::Error { retry_after_ms, .. } => assert!(*retry_after_ms >= 1),
            other => panic!("expected an error reply, got {other:?}"),
        }
        // Control plane bypasses the cap: the stats request reaches the
        // (now full) queue and is shed there, not by the limiter.
        let stats = admit(&stats_line(12), &tx, &m, &p);
        assert_eq!(error_kind_of(&stats), error_kind::OVERLOADED);
        assert_eq!(m.rate_limited.get(), 1, "the cap did not fire again");
        assert_eq!(m.overloaded.get(), 2);
    }

    #[test]
    fn per_action_report_covers_every_action() {
        let m = metrics();
        m.by_action[Request::Stats.action_index()].incr();
        let report = m.per_action();
        assert_eq!(report.len(), ACTIONS.len());
        assert_eq!(report["stats"], 1);
        assert!(ACTIONS.iter().all(|a| report.contains_key(*a)));
    }
}
