//! The daemon: a TCP acceptor, per-connection reader threads, and a
//! fixed worker pool draining a bounded admission queue.
//!
//! Admission control: a connection thread parses one line, wraps it in a
//! job with a single-slot reply channel, and `try_send`s it into the
//! bounded queue. A full queue is answered immediately with a structured
//! `overloaded` error — the connection never blocks the queue — and an
//! admitted request that misses the per-request timeout gets a `timeout`
//! error (the worker's late reply is dropped with the job's channel).
//!
//! Shutdown: a `Shutdown` request (or [`ServerHandle::shutdown`]) flips
//! the flag and wakes the acceptor. Connection readers notice the flag
//! within one poll interval and drop their queue senders; workers drain
//! whatever was admitted and exit when the queue disconnects. Every
//! admitted request is answered.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cbes_cluster::NodeId;
use cbes_core::CbesService;
use cbes_sched::{SaConfig, SaScheduler, ScheduleRequest, Scheduler};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};

use crate::protocol::{
    encode, error_kind, Request, RequestEnvelope, Response, ResponseEnvelope, StatsReport,
};

/// How often blocked connection readers re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue capacity; beyond it requests get `overloaded`.
    pub queue_capacity: usize,
    /// Per-request deadline from admission to reply.
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 1024,
            request_timeout: Duration::from_secs(10),
        }
    }
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    timeouts: AtomicU64,
    connections: AtomicU64,
}

struct Job {
    envelope: RequestEnvelope,
    reply: Sender<ResponseEnvelope>,
}

/// The CBES daemon. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns the threads.
pub struct Server;

impl Server {
    /// Bind `config.addr` and serve `service` until shut down.
    pub fn start(service: Arc<CbesService>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let (job_tx, job_rx) = channel::bounded::<Job>(config.queue_capacity);

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let service = service.clone();
                let job_rx = job_rx.clone();
                let counters = counters.clone();
                let shutdown = shutdown.clone();
                let worker_count = config.workers.max(1);
                std::thread::spawn(move || {
                    worker_loop(&service, &job_rx, &counters, &shutdown, addr, worker_count)
                })
            })
            .collect();
        drop(job_rx);

        let acceptor = {
            let shutdown = shutdown.clone();
            let counters = counters.clone();
            let timeout = config.request_timeout;
            std::thread::spawn(move || {
                accept_loop(&listener, job_tx, &counters, &shutdown, timeout)
            })
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            counters,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// Running-server handle: address, shutdown trigger, thread ownership.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once shutdown has been triggered (by request or locally).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Trigger shutdown without waiting for the drain.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shutdown, self.addr);
    }

    /// Wait until the server has fully drained and every thread exited.
    /// Returns the final counter values.
    pub fn join(mut self) -> (u64, u64) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        (
            self.counters.served.load(Ordering::Relaxed),
            self.counters.errors.load(Ordering::Relaxed),
        )
    }

    /// Trigger shutdown and wait for the drain.
    pub fn shutdown_and_join(self) -> (u64, u64) {
        self.shutdown();
        self.join()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Un-joined handle going away: stop the threads, don't wait.
        trigger_shutdown(&self.shutdown, self.addr);
    }
}

fn trigger_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    if !shutdown.swap(true, Ordering::AcqRel) {
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(addr);
    }
}

fn accept_loop(
    listener: &TcpListener,
    job_tx: Sender<Job>,
    counters: &Arc<Counters>,
    shutdown: &Arc<AtomicBool>,
    timeout: Duration,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let job_tx = job_tx.clone();
                let counters = counters.clone();
                let shutdown = shutdown.clone();
                std::thread::spawn(move || {
                    handle_connection(stream, &job_tx, &counters, &shutdown, timeout)
                });
            }
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
    // Dropping the acceptor's sender lets workers disconnect once every
    // connection reader has exited too.
}

fn handle_connection(
    stream: TcpStream,
    job_tx: &Sender<Job>,
    counters: &Arc<Counters>,
    shutdown: &Arc<AtomicBool>,
    timeout: Duration,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();

    'conn: loop {
        line.clear();
        // Poll for one full line, re-checking the shutdown flag whenever
        // the read times out. read_line only returns Ok at a newline or
        // EOF, so partial reads accumulate in `line` across timeouts.
        loop {
            if shutdown.load(Ordering::Acquire) {
                break 'conn;
            }
            match reader.read_line(&mut line) {
                Ok(0) => {
                    if line.trim().is_empty() {
                        break 'conn; // clean EOF
                    }
                    break; // final line without trailing newline
                }
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break 'conn,
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply = admit(trimmed, job_tx, counters, timeout);
        let mut out = encode(&reply);
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
    }
}

/// Parse one line and push it through admission control, producing
/// exactly one reply.
fn admit(
    line: &str,
    job_tx: &Sender<Job>,
    counters: &Arc<Counters>,
    timeout: Duration,
) -> ResponseEnvelope {
    let envelope: RequestEnvelope = match serde_json::from_str(line) {
        Ok(env) => env,
        Err(e) => {
            counters.errors.fetch_add(1, Ordering::Relaxed);
            return ResponseEnvelope {
                id: 0,
                response: Response::error(error_kind::BAD_REQUEST, e.to_string()),
            };
        }
    };
    let id = envelope.id;
    let (reply_tx, reply_rx) = channel::bounded::<ResponseEnvelope>(1);
    match job_tx.try_send(Job {
        envelope,
        reply: reply_tx,
    }) {
        Ok(()) => match reply_rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(_) => {
                counters.timeouts.fetch_add(1, Ordering::Relaxed);
                counters.errors.fetch_add(1, Ordering::Relaxed);
                ResponseEnvelope {
                    id,
                    response: Response::error(
                        error_kind::TIMEOUT,
                        format!("no reply within {timeout:?}"),
                    ),
                }
            }
        },
        Err(TrySendError::Full(_)) => {
            counters.overloaded.fetch_add(1, Ordering::Relaxed);
            counters.errors.fetch_add(1, Ordering::Relaxed);
            ResponseEnvelope {
                id,
                response: Response::error(error_kind::OVERLOADED, "admission queue is full"),
            }
        }
        Err(TrySendError::Disconnected(_)) => {
            counters.errors.fetch_add(1, Ordering::Relaxed);
            ResponseEnvelope {
                id,
                response: Response::error(error_kind::SHUTTING_DOWN, "server is draining"),
            }
        }
    }
}

fn worker_loop(
    service: &Arc<CbesService>,
    job_rx: &Receiver<Job>,
    counters: &Arc<Counters>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
    worker_count: usize,
) {
    while let Ok(job) = job_rx.recv() {
        let id = job.envelope.id;
        let response = handle_request(
            service,
            job.envelope.request,
            counters,
            shutdown,
            addr,
            job_rx.len(),
            worker_count,
        );
        if matches!(response, Response::Error { .. }) {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        counters.served.fetch_add(1, Ordering::Relaxed);
        // The reader may have timed out and dropped the receiver; that
        // counts as its reply, so a failed send is fine here.
        let _ = job.reply.send(ResponseEnvelope { id, response });
    }
}

fn handle_request(
    service: &Arc<CbesService>,
    request: Request,
    counters: &Arc<Counters>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
    queue_depth: usize,
    worker_count: usize,
) -> Response {
    match request {
        Request::RegisterProfile { profile } => {
            let app = profile.name.clone();
            let procs = profile.num_procs();
            service.registry().insert(profile);
            Response::Registered { app, procs }
        }
        Request::Compare { app, mappings } => match service.compare_stamped(&app, &mappings) {
            Ok((epoch, predictions)) => Response::Predictions { epoch, predictions },
            Err(e) => Response::service_error(&e),
        },
        Request::BestOf { app, mappings } => match service.compare_stamped(&app, &mappings) {
            Ok((epoch, predictions)) => {
                let (index, prediction) = predictions
                    .into_iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.time.partial_cmp(&b.time).expect("times are finite"))
                    .expect("compare rejects empty requests");
                Response::Best {
                    epoch,
                    index,
                    prediction,
                }
            }
            Err(e) => Response::service_error(&e),
        },
        Request::Schedule {
            app,
            pool,
            iters,
            seed,
        } => {
            let profile = match service.registry().get(&app) {
                Some(p) => p,
                None => return Response::service_error(&cbes_core::ServiceError::UnknownApp(app)),
            };
            let pool: Vec<NodeId> = pool.into_iter().map(NodeId).collect();
            if let Some(bad) = pool.iter().find(|n| n.index() >= service.cluster().len()) {
                return Response::service_error(&cbes_core::ServiceError::BadNode(bad.0));
            }
            let (epoch, snapshot) = service.snapshot_stamped();
            let request = ScheduleRequest::new(&profile, &snapshot, &pool);
            let mut config = SaConfig::fast(seed);
            if iters > 0 {
                config.iters = iters;
            }
            match SaScheduler::new(config).schedule(&request) {
                Ok(result) => Response::Scheduled {
                    epoch,
                    mapping: result.mapping,
                    predicted_time: result.predicted_time,
                    evaluations: result.evaluations,
                },
                Err(e) => Response::error(error_kind::SCHED, e.to_string()),
            }
        }
        Request::ObserveLoad { load } => match service.observe_load(&load) {
            Ok(epoch) => Response::LoadObserved { epoch },
            Err(e) => Response::service_error(&e),
        },
        Request::Stats => Response::Stats {
            stats: StatsReport {
                served: counters.served.load(Ordering::Relaxed),
                errors: counters.errors.load(Ordering::Relaxed),
                overloaded: counters.overloaded.load(Ordering::Relaxed),
                timeouts: counters.timeouts.load(Ordering::Relaxed),
                connections: counters.connections.load(Ordering::Relaxed),
                queue_depth,
                workers: worker_count,
                epoch: service.epoch(),
                profiles: service.registry().len(),
                observations: service.observations(),
            },
        },
        Request::Shutdown => {
            trigger_shutdown(shutdown, addr);
            Response::ShuttingDown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> Arc<Counters> {
        Arc::new(Counters::default())
    }

    fn stats_line(id: u64) -> String {
        encode(&RequestEnvelope {
            id,
            request: Request::Stats,
        })
    }

    fn error_kind_of(envelope: &ResponseEnvelope) -> &str {
        match &envelope.response {
            Response::Error { kind, .. } => kind,
            other => panic!("expected an error reply, got {other:?}"),
        }
    }

    #[test]
    fn unparseable_line_is_rejected_with_id_zero() {
        let (tx, _rx) = channel::bounded::<Job>(1);
        let c = counters();
        let reply = admit("{not json", &tx, &c, Duration::from_millis(10));
        assert_eq!(reply.id, 0);
        assert_eq!(error_kind_of(&reply), error_kind::BAD_REQUEST);
        assert_eq!(c.errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_is_answered_with_overloaded() {
        let (tx, _rx) = channel::bounded::<Job>(1);
        let (dummy_tx, _dummy_rx) = channel::bounded(1);
        assert!(tx
            .try_send(Job {
                envelope: RequestEnvelope {
                    id: 1,
                    request: Request::Stats,
                },
                reply: dummy_tx,
            })
            .is_ok());
        let c = counters();
        let reply = admit(&stats_line(7), &tx, &c, Duration::from_millis(10));
        assert_eq!(reply.id, 7, "overload reply still echoes the id");
        assert_eq!(error_kind_of(&reply), error_kind::OVERLOADED);
        assert_eq!(c.overloaded.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn admitted_but_unanswered_request_times_out() {
        let (tx, rx) = channel::bounded::<Job>(1);
        let c = counters();
        // No worker drains `rx`, so the reply never comes.
        let reply = admit(&stats_line(3), &tx, &c, Duration::from_millis(20));
        assert_eq!(reply.id, 3);
        assert_eq!(error_kind_of(&reply), error_kind::TIMEOUT);
        assert_eq!(c.timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(rx.len(), 1, "the job itself was admitted");
    }

    #[test]
    fn disconnected_queue_means_shutting_down() {
        let (tx, rx) = channel::bounded::<Job>(1);
        drop(rx);
        let c = counters();
        let reply = admit(&stats_line(5), &tx, &c, Duration::from_millis(10));
        assert_eq!(reply.id, 5);
        assert_eq!(error_kind_of(&reply), error_kind::SHUTTING_DOWN);
    }
}
