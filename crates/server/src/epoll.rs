//! Readiness polling for the event-loop server: a thin `epoll` shim on
//! Linux plus a portable `poll(2)` fallback, both over raw syscall FFI
//! so the workspace stays dependency-free.
//!
//! Every `unsafe` block in the crate lives in this module, and each is
//! a single audited syscall: `epoll_create1`/`epoll_ctl`/`epoll_wait`/
//! `close` on the epoll path, `poll` on the fallback. Callers only see
//! the safe [`Poller`] surface — register file descriptors with a
//! `u64` token and an interest pair, then [`Poller::wait`] for
//! [`PollEvent`]s. Both backends are level-triggered, so a fd stays
//! ready until the caller drains it; the reactor relies on that to
//! avoid losing partial reads.
//!
//! Setting `CBES_FORCE_POLL=1` selects the fallback backend even on
//! Linux, which is how the test suite exercises both paths on one
//! platform.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

#[cfg(target_os = "linux")]
mod sys_epoll {
    //! Raw epoll ABI. The x86-64 kernel packs `epoll_event`; other
    //! architectures align it naturally.

    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(
            epfd: i32,
            events: *mut EpollEvent,
            maxevents: i32,
            timeout_ms: i32,
        ) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

mod sys_poll {
    //! Raw `poll(2)` ABI; `nfds_t` is `c_ulong`, i.e. `u64` on every
    //! 64-bit unix this workspace targets.

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    }
}

/// One readiness event. `token` is whatever the caller passed at
/// registration. Error and hangup conditions surface as `readable`
/// (and `writable`) so the owner's next read/write observes the actual
/// `io::Error` or EOF — the poller never swallows failure detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollEvent {
    /// Caller-chosen identity of the registered fd.
    pub token: u64,
    /// The fd can be read (or has hung up / errored).
    pub readable: bool,
    /// The fd can be written (or has hung up / errored).
    pub writable: bool,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
        buf: Vec<sys_epoll::EpollEvent>,
    },
    Poll {
        fds: Vec<sys_poll::PollFd>,
        tokens: Vec<u64>,
    },
}

/// A level-triggered readiness multiplexer over raw fds.
pub struct Poller {
    backend: Backend,
}

/// True when `CBES_FORCE_POLL=1` demands the portable backend.
fn force_poll() -> bool {
    std::env::var("CBES_FORCE_POLL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Millisecond timeout for the syscalls: `None` blocks forever,
/// sub-millisecond waits round up to 1 so a near deadline cannot spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

impl Poller {
    /// The platform's best backend: epoll on Linux, `poll(2)`
    /// elsewhere or when `CBES_FORCE_POLL=1`.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if !force_poll() {
                return Poller::epoll();
            }
        }
        Ok(Poller::poll_backend())
    }

    /// The portable `poll(2)` backend, unconditionally.
    pub fn poll_backend() -> Poller {
        Poller {
            backend: Backend::Poll {
                fds: Vec::new(),
                tokens: Vec::new(),
            },
        }
    }

    /// The epoll backend, unconditionally.
    #[cfg(target_os = "linux")]
    pub fn epoll() -> io::Result<Poller> {
        // SAFETY: no pointers cross the boundary; the returned fd is
        // owned by the Poller and closed on drop.
        let epfd = unsafe { sys_epoll::epoll_create1(sys_epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            backend: Backend::Epoll {
                epfd,
                buf: vec![sys_epoll::EpollEvent { events: 0, data: 0 }; 256],
            },
        })
    }

    /// Which backend is live — surfaced in logs and tests.
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    /// Start watching `fd` under `token` with the given interest.
    pub fn register(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => ctl(
                *epfd,
                sys_epoll::EPOLL_CTL_ADD,
                fd,
                epoll_mask(readable, writable),
                token,
            ),
            Backend::Poll { fds, tokens } => {
                if fds.iter().any(|f| f.fd == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd is already registered",
                    ));
                }
                fds.push(sys_poll::PollFd {
                    fd,
                    events: poll_mask(readable, writable),
                    revents: 0,
                });
                tokens.push(token);
                Ok(())
            }
        }
    }

    /// Re-arm `fd` with a new token/interest pair.
    pub fn modify(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => ctl(
                *epfd,
                sys_epoll::EPOLL_CTL_MOD,
                fd,
                epoll_mask(readable, writable),
                token,
            ),
            Backend::Poll { fds, tokens } => {
                let i = fds
                    .iter()
                    .position(|f| f.fd == fd)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
                if let (Some(f), Some(t)) = (fds.get_mut(i), tokens.get_mut(i)) {
                    f.events = poll_mask(readable, writable);
                    *t = token;
                }
                Ok(())
            }
        }
    }

    /// Stop watching `fd`. Safe to call right before closing it.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => ctl(*epfd, sys_epoll::EPOLL_CTL_DEL, fd, 0, 0),
            Backend::Poll { fds, tokens } => {
                let i = fds
                    .iter()
                    .position(|f| f.fd == fd)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
                fds.remove(i);
                tokens.remove(i);
                Ok(())
            }
        }
    }

    /// Block until readiness or `timeout`, filling `out` (cleared
    /// first) with one event per ready fd. `EINTR` retries the full
    /// timeout — the reactor re-derives its deadlines every pass, so a
    /// marginally longer wait is harmless.
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let ms = timeout_ms(timeout);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, buf } => loop {
                // SAFETY: `buf` is a live, correctly-typed array; the
                // kernel writes at most `buf.len()` entries.
                let n =
                    unsafe { sys_epoll::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for ev in buf.iter().take(n as usize) {
                    // Copy out of the (possibly packed) struct before use.
                    let events = ev.events;
                    let token = ev.data;
                    let fail = events & (sys_epoll::EPOLLERR | sys_epoll::EPOLLHUP) != 0;
                    out.push(PollEvent {
                        token,
                        readable: events & sys_epoll::EPOLLIN != 0 || fail,
                        writable: events & sys_epoll::EPOLLOUT != 0 || fail,
                    });
                }
                return Ok(());
            },
            Backend::Poll { fds, tokens } => loop {
                for f in fds.iter_mut() {
                    f.revents = 0;
                }
                // SAFETY: `fds` is a live, correctly-typed array of
                // exactly `fds.len()` entries.
                let n = unsafe { sys_poll::poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for (f, &token) in fds.iter().zip(tokens.iter()) {
                    if f.revents == 0 {
                        continue;
                    }
                    let fail = f.revents
                        & (sys_poll::POLLERR | sys_poll::POLLHUP | sys_poll::POLLNVAL)
                        != 0;
                    out.push(PollEvent {
                        token,
                        readable: f.revents & sys_poll::POLLIN != 0 || fail,
                        writable: f.revents & sys_poll::POLLOUT != 0 || fail,
                    });
                }
                return Ok(());
            },
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd, .. } = self.backend {
            // SAFETY: `epfd` came from epoll_create1 and is never used
            // again after this close.
            unsafe { sys_epoll::close(epfd) };
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend_name())
            .finish()
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(readable: bool, writable: bool) -> u32 {
    let mut m = 0;
    if readable {
        m |= sys_epoll::EPOLLIN;
    }
    if writable {
        m |= sys_epoll::EPOLLOUT;
    }
    m
}

fn poll_mask(readable: bool, writable: bool) -> i16 {
    let mut m = 0;
    if readable {
        m |= sys_poll::POLLIN;
    }
    if writable {
        m |= sys_poll::POLLOUT;
    }
    m
}

#[cfg(target_os = "linux")]
fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = sys_epoll::EpollEvent {
        events,
        data: token,
    };
    let ptr = if op == sys_epoll::EPOLL_CTL_DEL {
        std::ptr::null_mut()
    } else {
        &mut ev as *mut sys_epoll::EpollEvent
    };
    // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent for
    // the duration of the call; the kernel copies it synchronously.
    let rc = unsafe { sys_epoll::epoll_ctl(epfd, op, fd, ptr) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(l.local_addr().expect("addr")).expect("connect");
        let (b, _) = l.accept().expect("accept");
        (a, b)
    }

    fn readiness_round_trip(mut poller: Poller) {
        let (mut a, b) = pair();
        poller
            .register(b.as_raw_fd(), 7, true, false)
            .expect("register");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert!(events.is_empty(), "no data yet: {events:?}");

        a.write_all(b"x").expect("write");
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].writable);

        // Write interest on an idle socket fires immediately, and the
        // re-armed token replaces the old one.
        poller
            .modify(b.as_raw_fd(), 9, false, true)
            .expect("modify");
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 9 && e.writable),
            "{events:?}"
        );

        poller.deregister(b.as_raw_fd()).expect("deregister");
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert!(events.is_empty(), "{events:?}");
    }

    fn hangup_is_readable(mut poller: Poller) {
        let (a, b) = pair();
        poller
            .register(b.as_raw_fd(), 3, true, false)
            .expect("register");
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 3 && e.readable),
            "peer close must surface as readable: {events:?}"
        );
    }

    #[test]
    fn poll_backend_reports_readiness() {
        let p = Poller::poll_backend();
        assert_eq!(p.backend_name(), "poll");
        readiness_round_trip(p);
    }

    #[test]
    fn poll_backend_reports_hangup() {
        hangup_is_readable(Poller::poll_backend());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_readiness() {
        let p = Poller::epoll().expect("epoll_create1");
        assert_eq!(p.backend_name(), "epoll");
        readiness_round_trip(p);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_hangup() {
        hangup_is_readable(Poller::epoll().expect("epoll_create1"));
    }

    #[test]
    fn poll_backend_rejects_duplicate_and_unknown_fds() {
        let (_a, b) = pair();
        let mut p = Poller::poll_backend();
        p.register(b.as_raw_fd(), 1, true, false).expect("register");
        assert!(p.register(b.as_raw_fd(), 2, true, false).is_err());
        assert!(p.modify(999_999, 1, true, false).is_err());
        assert!(p.deregister(999_999).is_err());
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(200))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(40))), 40);
    }
}
