//! CBES serving layer: a concurrent TCP daemon answering
//! mapping-evaluation requests over newline-delimited JSON.

#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy, RetryingClient};
pub use protocol::{
    route_key_hash, InstanceInfo, MembershipReport, Request, RequestEnvelope, Response,
    ResponseEnvelope,
};
pub use server::{Server, ServerConfig, ServerHandle};
