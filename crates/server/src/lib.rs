// cbes-analyze: allow(forbid_unsafe, the epoll shim is the crate's single audited unsafe module; the root downgrades to deny(unsafe_code) so the module-level allow below is the only opt-in)
//! CBES serving layer: an event-driven TCP daemon answering
//! mapping-evaluation requests over newline-delimited JSON.

#![deny(unsafe_code)]

pub mod client;
#[allow(unsafe_code)]
pub mod epoll;
pub mod protocol;
pub(crate) mod reconfig;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy, RetryingClient};
pub use protocol::{
    route_key_hash, InstanceInfo, MembershipReport, Request, RequestEnvelope, Response,
    ResponseEnvelope,
};
pub use server::{Server, ServerConfig, ServerHandle};
