//! The daemon side of live reconfiguration: glue between the
//! crash-safe [`ArtifactStore`] (`cbes-reconfig`) and the serving
//! path.
//!
//! The store journals *what* the lifecycle state is; this runtime makes
//! the running daemon *agree* with it. Activation follows an overlay
//! model: the boot configuration (the cluster's own no-load latency
//! function, the `--max-rps` admission cap) is the base, and the
//! serving artifact overlays exactly one aspect of it — a calibrated
//! latency model or a cluster preset replaces the latency provider, a
//! serving-limits artifact retunes the admission cap. Activating an
//! artifact of one kind reverts the *other* aspect to boot, so the
//! live configuration is always `boot + the single journal-recorded
//! serving artifact` — exactly what [`restore`](ReconfigRuntime) and a
//! post-restart replay rebuild. Every `apply` and `rollback` publishes
//! through exactly one snapshot-epoch bump (`cbes-core`'s atomic `Arc`
//! swap), so in-flight requests finish on the configuration they were
//! admitted under and a restart that replays the journal re-activates
//! the recovered serving artifact before the first request is
//! answered.
//!
//! Worker threads handle admin verbs concurrently, so every transition
//! that must flip *both* the store and the serving path (`apply`,
//! `accept`, `rollback`, post-restart resume) runs under one runtime
//! `transition` lock — a journalled apply can never interleave with a
//! concurrent rollback's restore such that the serving path ends up on
//! an artifact the store records as rolled back.

use std::path::PathBuf;
use std::sync::Arc;

use cbes_cluster::{ClusterSpec, LatencyProvider};
use cbes_core::CbesService;
use cbes_netmodel::LatencyModel;
use cbes_obs::{names, Counter, Gauge, Registry};
use cbes_reconfig::{
    ArtifactKind, ArtifactStore, InstanceStatus, ReconfigError, ServingLimits, StatusReport,
};
use parking_lot::Mutex;

use crate::protocol::{error_kind, Response};
use crate::server::RateLimiter;

/// One soak in progress: the soaking version plus the shed-counter
/// baseline taken at apply time, so the monitor measures *regression
/// since the flip*, not ambient load.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SoakState {
    /// The soaking artifact version.
    pub version: u64,
    /// Cumulative shed count (`server.overloaded`) when the soak began.
    pub sheds_at_apply: u64,
}

/// Per-daemon live-reconfiguration state: the artifact store plus the
/// hooks that make an activation real (latency-provider swap on the
/// core service, admission-cap retune on the rate limiter).
pub(crate) struct ReconfigRuntime {
    store: ArtifactStore,
    service: Arc<CbesService>,
    limiter: Arc<RateLimiter>,
    /// The `--max-rps` the daemon booted with; rollback to version 0
    /// reinstates it.
    boot_max_rps: f64,
    /// Held across the journal transition *and* the serving-path flip
    /// of every state-changing verb, so store state and serving state
    /// move atomically with respect to each other. Ordered before the
    /// store's own journal lock and the `soak` lock.
    transition: Mutex<()>,
    soak: Mutex<Option<SoakState>>,
    staged: Arc<Counter>,
    applies: Arc<Counter>,
    accepts: Arc<Counter>,
    rollbacks: Arc<Counter>,
    auto_rollbacks: Arc<Counter>,
    active_version: Arc<Gauge>,
}

impl std::fmt::Debug for ReconfigRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReconfigRuntime")
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

fn reconfig_error(e: &ReconfigError) -> Response {
    let kind = match e {
        ReconfigError::InvalidPayload(_) | ReconfigError::Lifecycle(_) => error_kind::BAD_REQUEST,
        _ => error_kind::SERVICE,
    };
    Response::error(kind, e.to_string())
}

/// The reply for an artifact verb on a daemon started without
/// `--state-dir`.
pub(crate) fn not_reconfigurable() -> Response {
    Response::error(
        error_kind::BAD_REQUEST,
        "artifact lifecycle disabled: start the daemon with --state-dir",
    )
}

/// The `ArtifactStatus` reply for a daemon without a store: visible in
/// a tier-wide merge as `reconfigurable: false` rather than an error,
/// so a mixed tier still reports every instance.
pub(crate) fn unreconfigurable_status(addr: std::net::SocketAddr) -> Response {
    Response::ArtifactStatus {
        status: StatusReport {
            instances: vec![InstanceStatus {
                addr: addr.to_string(),
                reconfigurable: false,
                status: cbes_reconfig::LifecycleStatus::empty(),
            }],
        },
    }
}

impl ReconfigRuntime {
    /// Open (or recover) the store under `state_dir` and re-activate
    /// whatever artifact the journal says should be serving, so a
    /// restarted daemon answers its first request under the recovered
    /// configuration. A recovered mid-soak artifact resumes its soak
    /// with a fresh telemetry baseline.
    pub fn open(
        state_dir: PathBuf,
        service: Arc<CbesService>,
        limiter: Arc<RateLimiter>,
        boot_max_rps: f64,
        registry: &Registry,
    ) -> Result<ReconfigRuntime, ReconfigError> {
        let store = ArtifactStore::open(state_dir)?;
        let runtime = ReconfigRuntime {
            store,
            service,
            limiter,
            boot_max_rps,
            transition: Mutex::new(()),
            soak: Mutex::new(None),
            staged: registry.counter(names::RECONFIG_STAGED),
            applies: registry.counter(names::RECONFIG_APPLIES),
            accepts: registry.counter(names::RECONFIG_ACCEPTS),
            rollbacks: registry.counter(names::RECONFIG_ROLLBACKS),
            auto_rollbacks: registry.counter(names::RECONFIG_AUTO_ROLLBACKS),
            active_version: registry.gauge(names::RECONFIG_ACTIVE_VERSION),
        };
        runtime.resume()?;
        Ok(runtime)
    }

    /// Re-activate the recovered serving artifact after a restart.
    ///
    /// A recovered artifact that no longer activates (a tampered or
    /// truncated payload file, or a crash that journalled an apply the
    /// daemon then refused) must not turn into a daemon that refuses to
    /// boot: a soaking artifact is auto-rolled-back through the journal
    /// and the previous configuration reinstated; an *accepted* one has
    /// no rollback edge, so the daemon serves the boot configuration
    /// and leaves the evidence in the flight ring.
    fn resume(&self) -> Result<(), ReconfigError> {
        let _flip = self.transition.lock();
        if let Some(serving) = self.store.serving() {
            let payload = self.store.payload(serving.version)?;
            if let Err(detail) = self.activate(serving.kind, &payload) {
                if self.store.soaking().is_some() {
                    let rolled = self
                        .store
                        .rollback(&format!("activation failed on restart: {detail}"), true)?;
                    self.restore(rolled.previous_payload);
                    self.rollbacks.incr();
                    self.auto_rollbacks.incr();
                } else {
                    Registry::global().flight().record(
                        "reconfig",
                        format!(
                            "active artifact v{} failed to activate on restart: \
                             {detail}; serving the boot configuration",
                            serving.version
                        ),
                        0,
                    );
                    self.limiter.set_limits(self.boot_max_rps, 0);
                    self.service.activate_boot_provider();
                }
            }
        }
        if let Some(soak) = self.store.soaking() {
            *self.soak.lock() = Some(SoakState {
                version: soak.artifact.version,
                sheds_at_apply: 0,
            });
        }
        self.publish_active_version();
        Ok(())
    }

    fn publish_active_version(&self) {
        self.active_version
            .set(self.store.active().map_or(0, |a| a.version) as f64);
    }

    /// Make one artifact real on the serving path, with exactly one
    /// epoch bump. Exactly one overlay is live at a time, so the aspect
    /// the artifact does *not* carry reverts to boot — this keeps the
    /// in-memory configuration identical to what a journal replay
    /// (boot + the single serving artifact) would rebuild, so a later
    /// rollback or restart never silently changes the effective
    /// admission cap or latency provider. Payloads were validated at
    /// stage time, so a failure here means the artifact directory was
    /// tampered with.
    fn activate(&self, kind: ArtifactKind, payload: &str) -> Result<u64, String> {
        match kind {
            ArtifactKind::LatencyModel => {
                let model: LatencyModel =
                    serde_json::from_str(payload).map_err(|e| e.to_string())?;
                model.validate()?;
                self.limiter.set_limits(self.boot_max_rps, 0);
                Ok(self.service.activate_provider(Arc::new(model)))
            }
            ArtifactKind::ClusterPreset => {
                let spec: ClusterSpec = serde_json::from_str(payload).map_err(|e| e.to_string())?;
                let cluster = spec.build().map_err(|e| e.to_string())?;
                let provider: Arc<dyn LatencyProvider + Send + Sync> = Arc::new(cluster);
                self.limiter.set_limits(self.boot_max_rps, 0);
                Ok(self.service.activate_provider(provider))
            }
            ArtifactKind::ServingLimits => {
                let limits: ServingLimits =
                    serde_json::from_str(payload).map_err(|e| e.to_string())?;
                self.limiter
                    .set_limits(limits.max_rps, limits.shed_retry_after_ms);
                // The latency provider reverts to boot; the epoch bump
                // publishes that reversion atomically with the retune.
                Ok(self.service.activate_boot_provider())
            }
        }
    }

    /// Reinstate the pre-soak configuration: boot defaults, with the
    /// previously active artifact (if any) overlaid — published as one
    /// epoch bump. [`activate`](Self::activate) already reverts the
    /// aspect the artifact does not carry, so this is symmetric with
    /// the apply path.
    fn restore(&self, previous: Option<(ArtifactKind, String)>) -> u64 {
        match previous {
            None => {
                self.limiter.set_limits(self.boot_max_rps, 0);
                self.service.activate_boot_provider()
            }
            Some((kind, payload)) => self.activate(kind, &payload).unwrap_or_else(|_| {
                self.limiter.set_limits(self.boot_max_rps, 0);
                self.service.activate_boot_provider()
            }),
        }
    }

    /// `Stage`: validate and persist without activating.
    pub fn handle_stage(&self, kind: &str, payload: &str) -> Response {
        let Some(kind) = ArtifactKind::parse(kind) else {
            return Response::error(
                error_kind::BAD_REQUEST,
                format!("unknown artifact kind {kind:?} (latency_model | cluster_preset | serving_limits)"),
            );
        };
        let expected = Some(self.service.cluster().len());
        match self.store.stage(kind, payload, expected) {
            Ok(version) => {
                self.staged.incr();
                Response::ArtifactAck {
                    version,
                    state: "staged".to_string(),
                    epoch: self.service.epoch(),
                }
            }
            Err(e) => reconfig_error(&e),
        }
    }

    /// `Apply`: journal the activation, flip the serving path (one
    /// epoch bump), and open the soak window. The transition lock makes
    /// the journal commit and the flip atomic with respect to a
    /// concurrent `Rollback`/`Accept`.
    pub fn handle_apply(&self, sheds_now: u64) -> Response {
        let _flip = self.transition.lock();
        let applied = match self.store.apply() {
            Ok(a) => a,
            Err(e) => return reconfig_error(&e),
        };
        match self.activate(applied.artifact.kind, &applied.payload) {
            Ok(epoch) => {
                self.applies.incr();
                *self.soak.lock() = Some(SoakState {
                    version: applied.artifact.version,
                    sheds_at_apply: sheds_now,
                });
                Response::ArtifactAck {
                    version: applied.artifact.version,
                    state: "soaking".to_string(),
                    epoch,
                }
            }
            Err(detail) => {
                // The journal committed the apply but the serving path
                // refused the payload: roll back immediately so the
                // store and the daemon stay agreed. Nothing was
                // activated, so there is nothing to restore.
                match self
                    .store
                    .rollback(&format!("activation failed: {detail}"), true)
                {
                    Ok(_) => {
                        self.rollbacks.incr();
                        self.auto_rollbacks.incr();
                        Response::error(
                            error_kind::SERVICE,
                            format!("activation failed and was rolled back: {detail}"),
                        )
                    }
                    Err(rb) => {
                        // The compensating rollback could not be
                        // journalled (e.g. disk full): the store now
                        // durably records the artifact as soaking while
                        // nothing was activated. Tell the operator and
                        // leave the evidence in the flight ring —
                        // swallowing this would strand the divergence.
                        Registry::global().flight().record(
                            "reconfig",
                            format!(
                                "compensating rollback of v{} failed: {rb} \
                                 (activation failure: {detail})",
                                applied.artifact.version
                            ),
                            0,
                        );
                        Response::error(
                            error_kind::SERVICE,
                            format!(
                                "activation failed ({detail}) and the compensating \
                                 rollback also failed ({rb}); the store still records \
                                 v{} as soaking — roll back manually",
                                applied.artifact.version
                            ),
                        )
                    }
                }
            }
        }
    }

    /// `Accept`: promote the soaking artifact; no epoch bump (it is
    /// already serving).
    pub fn handle_accept(&self) -> Response {
        let _flip = self.transition.lock();
        match self.store.accept() {
            Ok(artifact) => {
                *self.soak.lock() = None;
                self.accepts.incr();
                self.publish_active_version();
                Response::ArtifactAck {
                    version: artifact.version,
                    state: "active".to_string(),
                    epoch: self.service.epoch(),
                }
            }
            Err(e) => reconfig_error(&e),
        }
    }

    /// `Rollback` (operator or soak monitor): journal it, reinstate
    /// the previous configuration with one epoch bump — both under the
    /// transition lock, so a concurrent `Apply` cannot activate a
    /// payload the store has just recorded as rolled back.
    pub fn handle_rollback(&self, reason: &str, auto: bool) -> Response {
        let _flip = self.transition.lock();
        let rolled = match self.store.rollback(reason, auto) {
            Ok(r) => r,
            Err(e) => return reconfig_error(&e),
        };
        let epoch = self.restore(rolled.previous_payload);
        *self.soak.lock() = None;
        self.rollbacks.incr();
        if auto {
            self.auto_rollbacks.incr();
        }
        self.publish_active_version();
        Response::ArtifactAck {
            version: rolled.artifact.version,
            state: "rolled_back".to_string(),
            epoch,
        }
    }

    /// `ArtifactStatus`: this daemon's single-instance lifecycle view.
    pub fn handle_status(&self, addr: std::net::SocketAddr) -> Response {
        Response::ArtifactStatus {
            status: StatusReport {
                instances: vec![InstanceStatus {
                    addr: addr.to_string(),
                    reconfigurable: true,
                    status: self.store.status(),
                }],
            },
        }
    }

    /// The soak in progress, if any — read by the once-per-second soak
    /// monitor sweep in the server.
    pub fn soak_state(&self) -> Option<SoakState> {
        *self.soak.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_core::ForecastKind;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cbes-runtime-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn runtime_at(dir: PathBuf) -> (ReconfigRuntime, Arc<CbesService>, Arc<RateLimiter>) {
        let service = Arc::new(CbesService::self_calibrated(
            Arc::new(two_switch_demo()),
            ForecastKind::LastValue,
        ));
        let limiter = Arc::new(RateLimiter::new(0.0));
        let registry = Registry::new();
        let rt = ReconfigRuntime::open(dir, service.clone(), limiter.clone(), 0.0, &registry)
            .expect("open runtime");
        (rt, service, limiter)
    }

    fn runtime(tag: &str) -> (ReconfigRuntime, Arc<CbesService>) {
        let (rt, service, _) = runtime_at(scratch(tag));
        (rt, service)
    }

    fn model_json(n: usize) -> String {
        let model =
            LatencyModel::from_table(n, vec![64, 4096], vec![1e-4; LatencyModel::pairs(n) * 2]);
        serde_json::to_string(&model).expect("model encodes")
    }

    fn limits(rps: f64) -> String {
        format!("{{\"max_rps\": {rps}, \"shed_retry_after_ms\": 5}}")
    }

    fn ack(resp: Response) -> (u64, String, u64) {
        match resp {
            Response::ArtifactAck {
                version,
                state,
                epoch,
            } => (version, state, epoch),
            other => panic!("expected ArtifactAck, got {other:?}"),
        }
    }

    #[test]
    fn apply_bumps_the_epoch_exactly_once_and_rollback_once_more() {
        let (rt, service) = runtime("epochs");
        let (v, state, _) = ack(rt.handle_stage("serving_limits", &limits(40.0)));
        assert_eq!((v, state.as_str()), (1, "staged"));
        let before = service.epoch();
        let (_, state, epoch) = ack(rt.handle_apply(0));
        assert_eq!(state, "soaking");
        assert_eq!(epoch, before + 1, "apply is one epoch bump");
        assert!(rt.soak_state().is_some());
        let (_, state, epoch2) = ack(rt.handle_rollback("operator", false));
        assert_eq!(state, "rolled_back");
        assert_eq!(epoch2, epoch + 1, "rollback is one epoch bump");
        assert!(rt.soak_state().is_none());
    }

    #[test]
    fn accept_promotes_without_an_epoch_bump() {
        let (rt, service) = runtime("accept");
        ack(rt.handle_stage("serving_limits", &limits(40.0)));
        let (_, _, apply_epoch) = ack(rt.handle_apply(0));
        let (v, state, epoch) = ack(rt.handle_accept());
        assert_eq!((v, state.as_str()), (1, "active"));
        assert_eq!(epoch, apply_epoch, "accept does not republish");
        assert_eq!(service.epoch(), apply_epoch);
    }

    #[test]
    fn activating_a_different_kind_resets_the_other_overlay_aspect() {
        let (rt, service, limiter) = runtime_at(scratch("overlay"));
        // Accept a serving-limits overlay: admission capped at 40 rps.
        ack(rt.handle_stage("serving_limits", &limits(40.0)));
        ack(rt.handle_apply(0));
        ack(rt.handle_accept());
        assert_eq!(limiter.rate_per_s(), 40.0);
        // Applying a latency model reverts admission to boot
        // (uncapped) — exactly what a restart's journal replay would
        // rebuild from boot + the single serving artifact.
        let n = service.cluster().len();
        ack(rt.handle_stage("latency_model", &model_json(n)));
        ack(rt.handle_apply(0));
        assert_eq!(
            limiter.rate_per_s(),
            0.0,
            "stale limits overlay survived a latency-model activation"
        );
        // Rolling the model back reinstates the accepted limits overlay.
        ack(rt.handle_rollback("operator", false));
        assert_eq!(limiter.rate_per_s(), 40.0);
    }

    #[test]
    fn resume_rolls_back_a_soaking_artifact_that_no_longer_activates() {
        let dir = scratch("resume-soak-fallback");
        {
            let (rt, _, _) = runtime_at(dir.clone());
            ack(rt.handle_stage("serving_limits", &limits(40.0)));
            ack(rt.handle_apply(0));
        }
        // Corrupt the soaking payload behind the store's back: the
        // restarted daemon must boot anyway, journalling the fallback.
        std::fs::write(dir.join("artifacts").join("v1.json"), "not json").expect("corrupt payload");
        let (rt, _, limiter) = runtime_at(dir.clone());
        assert!(rt.soak_state().is_none());
        assert_eq!(limiter.rate_per_s(), 0.0, "boot cap reinstated");
        match rt.handle_status("127.0.0.1:0".parse().expect("addr")) {
            Response::ArtifactStatus { status } => {
                let inst = &status.instances[0].status;
                assert!(inst.soaking.is_none());
                let rb = inst.last_rollback.as_ref().expect("journalled rollback");
                assert_eq!((rb.version, rb.auto), (1, true));
            }
            other => panic!("expected ArtifactStatus, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_serves_boot_when_the_accepted_artifact_no_longer_activates() {
        let dir = scratch("resume-active-fallback");
        {
            let (rt, _, _) = runtime_at(dir.clone());
            ack(rt.handle_stage("serving_limits", &limits(40.0)));
            ack(rt.handle_apply(0));
            ack(rt.handle_accept());
        }
        std::fs::write(dir.join("artifacts").join("v1.json"), "not json").expect("corrupt payload");
        // An accepted artifact has no rollback edge: the daemon still
        // boots, serving the boot configuration.
        let (rt, _, limiter) = runtime_at(dir.clone());
        assert_eq!(limiter.rate_per_s(), 0.0, "boot cap reinstated");
        match rt.handle_status("127.0.0.1:0".parse().expect("addr")) {
            Response::ArtifactStatus { status } => {
                let inst = &status.instances[0].status;
                assert_eq!(inst.active.as_ref().map(|a| a.version), Some(1));
                assert!(inst.last_rollback.is_none());
            }
            other => panic!("expected ArtifactStatus, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_kind_and_missing_store_paths_reply_with_errors() {
        let (rt, _) = runtime("errors");
        assert!(matches!(
            rt.handle_stage("firmware", "{}"),
            Response::Error { .. }
        ));
        assert!(matches!(rt.handle_apply(0), Response::Error { .. }));
        assert!(matches!(rt.handle_accept(), Response::Error { .. }));
        assert!(matches!(
            rt.handle_rollback("nothing soaking", false),
            Response::Error { .. }
        ));
        assert!(matches!(not_reconfigurable(), Response::Error { .. }));
    }
}
