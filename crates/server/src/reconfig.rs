//! The daemon side of live reconfiguration: glue between the
//! crash-safe [`ArtifactStore`] (`cbes-reconfig`) and the serving
//! path.
//!
//! The store journals *what* the lifecycle state is; this runtime makes
//! the running daemon *agree* with it. Activation follows an overlay
//! model: the boot configuration (the cluster's own no-load latency
//! function, the `--max-rps` admission cap) is the base, and the
//! serving artifact overlays exactly one aspect of it — a calibrated
//! latency model or a cluster preset replaces the latency provider, a
//! serving-limits artifact retunes the admission cap. Every `apply`
//! and `rollback` publishes through exactly one snapshot-epoch bump
//! (`cbes-core`'s atomic `Arc` swap), so in-flight requests finish on
//! the configuration they were admitted under and a restart that
//! replays the journal re-activates the recovered serving artifact
//! before the first request is answered.

use std::path::PathBuf;
use std::sync::Arc;

use cbes_cluster::{ClusterSpec, LatencyProvider};
use cbes_core::CbesService;
use cbes_netmodel::LatencyModel;
use cbes_obs::{names, Counter, Gauge, Registry};
use cbes_reconfig::{
    ArtifactKind, ArtifactStore, InstanceStatus, ReconfigError, ServingLimits, StatusReport,
};
use parking_lot::Mutex;

use crate::protocol::{error_kind, Response};
use crate::server::RateLimiter;

/// One soak in progress: the soaking version plus the shed-counter
/// baseline taken at apply time, so the monitor measures *regression
/// since the flip*, not ambient load.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SoakState {
    /// The soaking artifact version.
    pub version: u64,
    /// Cumulative shed count (`server.overloaded`) when the soak began.
    pub sheds_at_apply: u64,
}

/// Per-daemon live-reconfiguration state: the artifact store plus the
/// hooks that make an activation real (latency-provider swap on the
/// core service, admission-cap retune on the rate limiter).
pub(crate) struct ReconfigRuntime {
    store: ArtifactStore,
    service: Arc<CbesService>,
    limiter: Arc<RateLimiter>,
    /// The `--max-rps` the daemon booted with; rollback to version 0
    /// reinstates it.
    boot_max_rps: f64,
    soak: Mutex<Option<SoakState>>,
    staged: Arc<Counter>,
    applies: Arc<Counter>,
    accepts: Arc<Counter>,
    rollbacks: Arc<Counter>,
    auto_rollbacks: Arc<Counter>,
    active_version: Arc<Gauge>,
}

impl std::fmt::Debug for ReconfigRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReconfigRuntime")
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

fn reconfig_error(e: &ReconfigError) -> Response {
    let kind = match e {
        ReconfigError::InvalidPayload(_) | ReconfigError::Lifecycle(_) => error_kind::BAD_REQUEST,
        _ => error_kind::SERVICE,
    };
    Response::error(kind, e.to_string())
}

/// The reply for an artifact verb on a daemon started without
/// `--state-dir`.
pub(crate) fn not_reconfigurable() -> Response {
    Response::error(
        error_kind::BAD_REQUEST,
        "artifact lifecycle disabled: start the daemon with --state-dir",
    )
}

/// The `ArtifactStatus` reply for a daemon without a store: visible in
/// a tier-wide merge as `reconfigurable: false` rather than an error,
/// so a mixed tier still reports every instance.
pub(crate) fn unreconfigurable_status(addr: std::net::SocketAddr) -> Response {
    Response::ArtifactStatus {
        status: StatusReport {
            instances: vec![InstanceStatus {
                addr: addr.to_string(),
                reconfigurable: false,
                status: cbes_reconfig::LifecycleStatus::empty(),
            }],
        },
    }
}

impl ReconfigRuntime {
    /// Open (or recover) the store under `state_dir` and re-activate
    /// whatever artifact the journal says should be serving, so a
    /// restarted daemon answers its first request under the recovered
    /// configuration. A recovered mid-soak artifact resumes its soak
    /// with a fresh telemetry baseline.
    pub fn open(
        state_dir: PathBuf,
        service: Arc<CbesService>,
        limiter: Arc<RateLimiter>,
        boot_max_rps: f64,
        registry: &Registry,
    ) -> Result<ReconfigRuntime, ReconfigError> {
        let store = ArtifactStore::open(state_dir)?;
        let runtime = ReconfigRuntime {
            store,
            service,
            limiter,
            boot_max_rps,
            soak: Mutex::new(None),
            staged: registry.counter(names::RECONFIG_STAGED),
            applies: registry.counter(names::RECONFIG_APPLIES),
            accepts: registry.counter(names::RECONFIG_ACCEPTS),
            rollbacks: registry.counter(names::RECONFIG_ROLLBACKS),
            auto_rollbacks: registry.counter(names::RECONFIG_AUTO_ROLLBACKS),
            active_version: registry.gauge(names::RECONFIG_ACTIVE_VERSION),
        };
        runtime.resume()?;
        Ok(runtime)
    }

    /// Re-activate the recovered serving artifact after a restart.
    fn resume(&self) -> Result<(), ReconfigError> {
        if let Some(serving) = self.store.serving() {
            let payload = self.store.payload(serving.version)?;
            self.activate(serving.kind, &payload)
                .map_err(ReconfigError::InvalidPayload)?;
        }
        if let Some(soak) = self.store.soaking() {
            *self.soak.lock() = Some(SoakState {
                version: soak.artifact.version,
                sheds_at_apply: 0,
            });
        }
        self.publish_active_version();
        Ok(())
    }

    fn publish_active_version(&self) {
        self.active_version
            .set(self.store.active().map_or(0, |a| a.version) as f64);
    }

    /// Make one artifact real on the serving path, with exactly one
    /// epoch bump. Payloads were validated at stage time, so a failure
    /// here means the artifact directory was tampered with.
    fn activate(&self, kind: ArtifactKind, payload: &str) -> Result<u64, String> {
        match kind {
            ArtifactKind::LatencyModel => {
                let model: LatencyModel =
                    serde_json::from_str(payload).map_err(|e| e.to_string())?;
                model.validate()?;
                Ok(self.service.activate_provider(Arc::new(model)))
            }
            ArtifactKind::ClusterPreset => {
                let spec: ClusterSpec = serde_json::from_str(payload).map_err(|e| e.to_string())?;
                let cluster = spec.build().map_err(|e| e.to_string())?;
                let provider: Arc<dyn LatencyProvider + Send + Sync> = Arc::new(cluster);
                Ok(self.service.activate_provider(provider))
            }
            ArtifactKind::ServingLimits => {
                let limits: ServingLimits =
                    serde_json::from_str(payload).map_err(|e| e.to_string())?;
                self.limiter
                    .set_limits(limits.max_rps, limits.shed_retry_after_ms);
                Ok(self.service.bump_epoch())
            }
        }
    }

    /// Reinstate the pre-soak configuration: boot defaults, with the
    /// previously active artifact (if any) overlaid — published as one
    /// epoch bump.
    fn restore(&self, previous: Option<(ArtifactKind, String)>) -> u64 {
        match previous {
            None => {
                self.limiter.set_limits(self.boot_max_rps, 0);
                self.service.activate_boot_provider()
            }
            Some((ArtifactKind::ServingLimits, payload)) => {
                // The previous overlay retuned admission, so the
                // latency provider reverts to boot.
                if let Ok(limits) = serde_json::from_str::<ServingLimits>(&payload) {
                    self.limiter
                        .set_limits(limits.max_rps, limits.shed_retry_after_ms);
                } else {
                    self.limiter.set_limits(self.boot_max_rps, 0);
                }
                self.service.activate_boot_provider()
            }
            Some((kind, payload)) => {
                // The previous overlay replaced the latency provider,
                // so admission reverts to boot.
                self.limiter.set_limits(self.boot_max_rps, 0);
                self.activate(kind, &payload)
                    .unwrap_or_else(|_| self.service.activate_boot_provider())
            }
        }
    }

    /// `Stage`: validate and persist without activating.
    pub fn handle_stage(&self, kind: &str, payload: &str) -> Response {
        let Some(kind) = ArtifactKind::parse(kind) else {
            return Response::error(
                error_kind::BAD_REQUEST,
                format!("unknown artifact kind {kind:?} (latency_model | cluster_preset | serving_limits)"),
            );
        };
        let expected = Some(self.service.cluster().len());
        match self.store.stage(kind, payload, expected) {
            Ok(version) => {
                self.staged.incr();
                Response::ArtifactAck {
                    version,
                    state: "staged".to_string(),
                    epoch: self.service.epoch(),
                }
            }
            Err(e) => reconfig_error(&e),
        }
    }

    /// `Apply`: journal the activation, flip the serving path (one
    /// epoch bump), and open the soak window.
    pub fn handle_apply(&self, sheds_now: u64) -> Response {
        let applied = match self.store.apply() {
            Ok(a) => a,
            Err(e) => return reconfig_error(&e),
        };
        match self.activate(applied.artifact.kind, &applied.payload) {
            Ok(epoch) => {
                self.applies.incr();
                *self.soak.lock() = Some(SoakState {
                    version: applied.artifact.version,
                    sheds_at_apply: sheds_now,
                });
                Response::ArtifactAck {
                    version: applied.artifact.version,
                    state: "soaking".to_string(),
                    epoch,
                }
            }
            Err(detail) => {
                // The journal committed the apply but the serving path
                // refused the payload: roll back immediately so the
                // store and the daemon stay agreed. Nothing was
                // activated, so there is nothing to restore.
                let _ = self
                    .store
                    .rollback(&format!("activation failed: {detail}"), true);
                self.rollbacks.incr();
                self.auto_rollbacks.incr();
                Response::error(
                    error_kind::SERVICE,
                    format!("activation failed and was rolled back: {detail}"),
                )
            }
        }
    }

    /// `Accept`: promote the soaking artifact; no epoch bump (it is
    /// already serving).
    pub fn handle_accept(&self) -> Response {
        match self.store.accept() {
            Ok(artifact) => {
                *self.soak.lock() = None;
                self.accepts.incr();
                self.publish_active_version();
                Response::ArtifactAck {
                    version: artifact.version,
                    state: "active".to_string(),
                    epoch: self.service.epoch(),
                }
            }
            Err(e) => reconfig_error(&e),
        }
    }

    /// `Rollback` (operator or soak monitor): journal it, reinstate
    /// the previous configuration with one epoch bump.
    pub fn handle_rollback(&self, reason: &str, auto: bool) -> Response {
        let rolled = match self.store.rollback(reason, auto) {
            Ok(r) => r,
            Err(e) => return reconfig_error(&e),
        };
        let epoch = self.restore(rolled.previous_payload);
        *self.soak.lock() = None;
        self.rollbacks.incr();
        if auto {
            self.auto_rollbacks.incr();
        }
        self.publish_active_version();
        Response::ArtifactAck {
            version: rolled.artifact.version,
            state: "rolled_back".to_string(),
            epoch,
        }
    }

    /// `ArtifactStatus`: this daemon's single-instance lifecycle view.
    pub fn handle_status(&self, addr: std::net::SocketAddr) -> Response {
        Response::ArtifactStatus {
            status: StatusReport {
                instances: vec![InstanceStatus {
                    addr: addr.to_string(),
                    reconfigurable: true,
                    status: self.store.status(),
                }],
            },
        }
    }

    /// The soak in progress, if any — read by the once-per-second soak
    /// monitor sweep in the server.
    pub fn soak_state(&self) -> Option<SoakState> {
        *self.soak.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_core::ForecastKind;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cbes-runtime-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn runtime(tag: &str) -> (ReconfigRuntime, Arc<CbesService>) {
        let service = Arc::new(CbesService::self_calibrated(
            Arc::new(two_switch_demo()),
            ForecastKind::LastValue,
        ));
        let limiter = Arc::new(RateLimiter::new(0.0));
        let registry = Registry::new();
        let rt = ReconfigRuntime::open(scratch(tag), service.clone(), limiter, 0.0, &registry)
            .expect("open runtime");
        (rt, service)
    }

    fn limits(rps: f64) -> String {
        format!("{{\"max_rps\": {rps}, \"shed_retry_after_ms\": 5}}")
    }

    fn ack(resp: Response) -> (u64, String, u64) {
        match resp {
            Response::ArtifactAck {
                version,
                state,
                epoch,
            } => (version, state, epoch),
            other => panic!("expected ArtifactAck, got {other:?}"),
        }
    }

    #[test]
    fn apply_bumps_the_epoch_exactly_once_and_rollback_once_more() {
        let (rt, service) = runtime("epochs");
        let (v, state, _) = ack(rt.handle_stage("serving_limits", &limits(40.0)));
        assert_eq!((v, state.as_str()), (1, "staged"));
        let before = service.epoch();
        let (_, state, epoch) = ack(rt.handle_apply(0));
        assert_eq!(state, "soaking");
        assert_eq!(epoch, before + 1, "apply is one epoch bump");
        assert!(rt.soak_state().is_some());
        let (_, state, epoch2) = ack(rt.handle_rollback("operator", false));
        assert_eq!(state, "rolled_back");
        assert_eq!(epoch2, epoch + 1, "rollback is one epoch bump");
        assert!(rt.soak_state().is_none());
    }

    #[test]
    fn accept_promotes_without_an_epoch_bump() {
        let (rt, service) = runtime("accept");
        ack(rt.handle_stage("serving_limits", &limits(40.0)));
        let (_, _, apply_epoch) = ack(rt.handle_apply(0));
        let (v, state, epoch) = ack(rt.handle_accept());
        assert_eq!((v, state.as_str()), (1, "active"));
        assert_eq!(epoch, apply_epoch, "accept does not republish");
        assert_eq!(service.epoch(), apply_epoch);
    }

    #[test]
    fn unknown_kind_and_missing_store_paths_reply_with_errors() {
        let (rt, _) = runtime("errors");
        assert!(matches!(
            rt.handle_stage("firmware", "{}"),
            Response::Error { .. }
        ));
        assert!(matches!(rt.handle_apply(0), Response::Error { .. }));
        assert!(matches!(rt.handle_accept(), Response::Error { .. }));
        assert!(matches!(
            rt.handle_rollback("nothing soaking", false),
            Response::Error { .. }
        ));
        assert!(matches!(not_reconfigurable(), Response::Error { .. }));
    }
}
