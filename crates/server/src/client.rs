//! Blocking client for the CBES daemon: one request, one reply, over
//! newline-delimited JSON.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cbes_cluster::load::LoadState;
use cbes_core::eval::Prediction;
use cbes_core::mapping::Mapping;
use cbes_obs::MetricsSnapshot;
use cbes_trace::AppProfile;

use crate::protocol::{encode, Request, RequestEnvelope, Response, ResponseEnvelope, StatsReport};

/// A client-side failure: transport, protocol, or a server error reply.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// The server sent something that is not a valid reply, or a reply
    /// of an unexpected shape for the request.
    Protocol(String),
    /// The server answered with [`Response::Error`].
    Server {
        /// Machine-readable error class (see [`crate::protocol::error_kind`]).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a CBES daemon. Requests are issued one at a
/// time; ids are assigned internally and checked against replies.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a running daemon. No I/O deadline is set: a reply
    /// blocks indefinitely. Prefer [`Client::connect_timeout`] for
    /// anything interactive.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connect with a dial deadline and apply the same bound to every
    /// subsequent read and write, so a dead or wedged server surfaces as
    /// an I/O error instead of hanging the caller forever.
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let mut last_err = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => {
                    let mut client = Client::from_stream(stream)?;
                    client.set_io_timeout(Some(timeout))?;
                    return Ok(client);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ClientError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            )
        })))
    }

    fn from_stream(stream: TcpStream) -> Result<Client, ClientError> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            next_id: 1,
        })
    }

    /// Bound every subsequent read and write on the connection; `None`
    /// removes the bound. A request that trips the deadline fails with
    /// [`ClientError::Io`] and the connection should be discarded (a
    /// late reply would desynchronise the stream).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Send one request and wait for its reply envelope. Error replies
    /// are returned as envelopes, not `Err` — use the typed helpers for
    /// automatic error conversion.
    pub fn request(&mut self, request: Request) -> Result<ResponseEnvelope, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = encode(&RequestEnvelope { id, request });
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;

        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let envelope: ResponseEnvelope = serde_json::from_str(reply.trim())
            .map_err(|e| ClientError::Protocol(format!("bad reply: {e}")))?;
        if envelope.id != id && envelope.id != 0 {
            return Err(ClientError::Protocol(format!(
                "reply id {} does not match request id {id}",
                envelope.id
            )));
        }
        Ok(envelope)
    }

    /// Send a request and surface error replies as [`ClientError::Server`].
    fn expect(&mut self, request: Request) -> Result<Response, ClientError> {
        match self.request(request)?.response {
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            other => Ok(other),
        }
    }

    /// Register (or replace) an application profile.
    pub fn register_profile(&mut self, profile: AppProfile) -> Result<(), ClientError> {
        match self.expect(Request::RegisterProfile { profile })? {
            Response::Registered { .. } => Ok(()),
            other => Err(unexpected("Registered", &other)),
        }
    }

    /// Predict execution times for candidate mappings; returns the
    /// snapshot epoch and one prediction per mapping, in request order.
    pub fn compare(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, Vec<Prediction>), ClientError> {
        let request = Request::Compare {
            app: app.to_string(),
            mappings: mappings.to_vec(),
        };
        match self.expect(request)? {
            Response::Predictions { epoch, predictions } => Ok((epoch, predictions)),
            other => Err(unexpected("Predictions", &other)),
        }
    }

    /// The index and prediction of the fastest candidate mapping.
    pub fn best_of(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, usize, Prediction), ClientError> {
        let request = Request::BestOf {
            app: app.to_string(),
            mappings: mappings.to_vec(),
        };
        match self.expect(request)? {
            Response::Best {
                epoch,
                index,
                prediction,
            } => Ok((epoch, index, prediction)),
            other => Err(unexpected("Best", &other)),
        }
    }

    /// Run the server-side scheduler over a node pool; returns the epoch,
    /// the chosen mapping, and its predicted time.
    pub fn schedule(
        &mut self,
        app: &str,
        pool: &[u32],
        iters: u32,
        seed: u64,
    ) -> Result<(u64, Mapping, f64), ClientError> {
        let request = Request::Schedule {
            app: app.to_string(),
            pool: pool.to_vec(),
            iters,
            seed,
        };
        match self.expect(request)? {
            Response::Scheduled {
                epoch,
                mapping,
                predicted_time,
                ..
            } => Ok((epoch, mapping, predicted_time)),
            other => Err(unexpected("Scheduled", &other)),
        }
    }

    /// Feed one monitoring sweep; returns the new snapshot epoch.
    pub fn observe_load(&mut self, load: &LoadState) -> Result<u64, ClientError> {
        let request = Request::ObserveLoad { load: load.clone() };
        match self.expect(request)? {
            Response::LoadObserved { epoch } => Ok(epoch),
            other => Err(unexpected("LoadObserved", &other)),
        }
    }

    /// Read the server's counters.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.expect(Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Read the full metrics snapshot (counters, gauges, histograms).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.expect(Request::Metrics)? {
            Response::Metrics { metrics } => Ok(metrics),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Ask the server to drain and exit. The acknowledgement arrives
    /// before the drain completes.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.expect(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted} reply, got {got:?}"))
}
